//! Rank (order-statistic) filters: minimum, median and maximum.
//!
//! The window slides over every pixel with border replication; for each
//! position the selected order statistic of the `window x window`
//! neighbourhood replaces the centre pixel. Channels are filtered
//! independently.
//!
//! Min/max filters are separable and run as two flat passes: a per-line
//! horizontal sweep, then a vertical sweep that folds whole interleaved
//! rows elementwise ([`crate::simd::fold_min`]/[`fold_max`] — stride-1 and
//! autovectorizable, instead of the cache-hostile per-column walk). Narrow
//! windows (the paper's filtering detector uses 2×2) use direct clamped
//! folds; windows wider than [`WEDGE_THRESHOLD`] switch to the amortised
//! O(1)-per-sample monotonic wedge. Extremum folds use [`f64::min`] /
//! [`f64::max`] semantics throughout, exactly matching the naive
//! double-loop reference — including on NaN-poisoned inputs, where a NaN
//! sample is simply ignored (never a panic).
//!
//! [`fold_max`]: crate::simd::fold_max

use crate::simd::{fold_max, fold_min};
use crate::{Image, ImagingError};
use std::collections::VecDeque;

/// Window side above which the separable passes switch from direct clamped
/// folds (O(window) per sample, branch-free and vector-friendly) to the
/// monotonic-wedge sweep (amortised O(1) per sample, pointer-chasing).
const WEDGE_THRESHOLD: usize = 16;

/// Which order statistic a [`rank_filter`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankKind {
    /// Smallest value in the window (erosion).
    Minimum,
    /// Middle value in the window.
    Median,
    /// Largest value in the window (dilation).
    Maximum,
}

impl RankKind {
    /// Short lowercase name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            RankKind::Minimum => "minimum",
            RankKind::Median => "median",
            RankKind::Maximum => "maximum",
        }
    }
}

/// Applies a square rank filter of side `window` (must be >= 1).
///
/// The window is anchored so that for odd sizes it is centred on the pixel;
/// for even sizes (e.g. the paper's 2x2 minimum filter) the window covers
/// the pixel and its right/bottom neighbours, matching
/// `scipy.ndimage.minimum_filter` with `origin = 0` semantics shifted to the
/// top-left, which is what the reference implementation uses.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `window == 0`.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::{Image, filter::{rank_filter, RankKind}};
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let img = Image::from_fn_gray(3, 3, |x, y| (y * 3 + x) as f64);
/// let eroded = rank_filter(&img, 3, RankKind::Minimum)?;
/// assert_eq!(eroded.get(1, 1, 0), 0.0);
/// # Ok(())
/// # }
/// ```
pub fn rank_filter(img: &Image, window: usize, kind: RankKind) -> Result<Image, ImagingError> {
    if window == 0 {
        return Err(ImagingError::InvalidParameter {
            message: "rank filter window must be >= 1".into(),
        });
    }
    // Min/max over a square window are separable: run the O(N) monotonic
    // deque pass along rows, then along columns.
    match kind {
        RankKind::Minimum | RankKind::Maximum => return Ok(separable_extremum(img, window, kind)),
        RankKind::Median => {}
    }
    // Window offsets: odd windows are centred, even windows extend right/down.
    let lo = -((window as isize - 1) / 2);
    let hi = window as isize / 2;
    let mut out = img.clone();
    let mut buf: Vec<f64> = Vec::with_capacity(window * window);
    for c in 0..img.channel_count() {
        for y in 0..img.height() {
            for x in 0..img.width() {
                buf.clear();
                for dy in lo..=hi {
                    for dx in lo..=hi {
                        buf.push(img.get_clamped(x as isize + dx, y as isize + dy, c));
                    }
                }
                let v = match kind {
                    RankKind::Minimum => buf.iter().copied().fold(f64::INFINITY, f64::min),
                    RankKind::Maximum => buf.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    RankKind::Median => {
                        // total_cmp sorts NaN to the end instead of panicking;
                        // poisoned inputs are quarantined upstream, but a rank
                        // filter must never abort the process on one.
                        buf.sort_by(f64::total_cmp);
                        let n = buf.len();
                        if n % 2 == 1 {
                            buf[n / 2]
                        } else {
                            0.5 * (buf[n / 2 - 1] + buf[n / 2])
                        }
                    }
                };
                out.set(x, y, c, v);
            }
        }
    }
    Ok(out)
}

/// Sliding-window extremum of one scan line using a monotonic deque
/// (amortised O(1) per sample). `lo..=hi` are the window offsets relative
/// to each output position; out-of-range taps replicate the border, which
/// for an extremum is equivalent to clamping the window to the line. The
/// deque and the output slice are caller-owned so a whole image reuses one
/// allocation. Comparisons use `<=`/`>=`, so NaN samples never win a slot —
/// the same "NaN acts as missing" semantics as the [`f64::min`] fold path.
fn sliding_extremum_into(
    line: &[f64],
    lo: isize,
    hi: isize,
    take_min: bool,
    deque: &mut VecDeque<isize>,
    out: &mut [f64],
) {
    let n = line.len() as isize;
    let better = |a: f64, b: f64| if take_min { a <= b } else { a >= b };
    deque.clear();
    let mut next = 0isize; // next index to push into the deque
    for (i, slot) in out.iter_mut().enumerate() {
        let (start, end) = ((i as isize + lo).max(0), (i as isize + hi).min(n - 1));
        while next <= end {
            while let Some(&back) = deque.back() {
                if better(line[next as usize], line[back as usize]) {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back(next);
            next += 1;
        }
        while let Some(&front) = deque.front() {
            if front < start {
                deque.pop_front();
            } else {
                break;
            }
        }
        *slot = line[*deque.front().expect("window always contains >= 1 sample") as usize];
    }
}

/// Extremum of one scan line by direct clamped folds: each output is the
/// [`f64::min`]/[`f64::max`] fold of `line[start..=end]` where the window is
/// clamped to the line. O(window) per output, but branch-predictable and
/// stride-1 — faster than the wedge for the narrow windows the detectors use.
fn line_extremum_fold(line: &[f64], out: &mut [f64], lo: isize, hi: isize, take_min: bool) {
    let n = line.len() as isize;
    let init = if take_min { f64::INFINITY } else { f64::NEG_INFINITY };
    for (x, slot) in out.iter_mut().enumerate() {
        let start = (x as isize + lo).max(0) as usize;
        let end = (x as isize + hi).min(n - 1) as usize;
        let mut acc = init;
        for &v in &line[start..=end] {
            acc = if take_min { acc.min(v) } else { acc.max(v) };
        }
        *slot = acc;
    }
}

/// Separable min/max filter: per plane, a horizontal pass over stride-1
/// rows into a flat intermediate, then a vertical pass that folds whole
/// rows elementwise.
fn separable_extremum(img: &Image, window: usize, kind: RankKind) -> Image {
    let lo = -((window as isize - 1) / 2);
    let hi = window as isize / 2;
    let take_min = kind == RankKind::Minimum;
    let (w, h, _) = img.shape();

    let mut mid = vec![0.0; w * h];
    let mut out_planes = Vec::with_capacity(img.channel_count());
    let mut deque = VecDeque::new();
    for src in img.planes() {
        // Horizontal pass: every plane row is already a stride-1 line.
        if window <= WEDGE_THRESHOLD {
            for (src_row, mid_row) in src.chunks_exact(w).zip(mid.chunks_exact_mut(w)) {
                line_extremum_fold(src_row, mid_row, lo, hi, take_min);
            }
        } else {
            for (src_row, mid_row) in src.chunks_exact(w).zip(mid.chunks_exact_mut(w)) {
                sliding_extremum_into(src_row, lo, hi, take_min, &mut deque, mid_row);
            }
        }

        // Vertical pass. Narrow windows fold the clamped row range
        // elementwise; wide windows fall back to the per-column wedge.
        let mut out = vec![0.0; w * h];
        if window <= WEDGE_THRESHOLD {
            let init = if take_min { f64::INFINITY } else { f64::NEG_INFINITY };
            for y in 0..h {
                let start = (y as isize + lo).max(0) as usize;
                let end = (y as isize + hi).min(h as isize - 1) as usize;
                let out_row = &mut out[y * w..(y + 1) * w];
                out_row.fill(init);
                for sy in start..=end {
                    let mid_row = &mid[sy * w..(sy + 1) * w];
                    if take_min {
                        fold_min(out_row, mid_row);
                    } else {
                        fold_max(out_row, mid_row);
                    }
                }
            }
        } else {
            let mut col = vec![0.0; h];
            let mut col_out = vec![0.0; h];
            for x in 0..w {
                for (y, v) in col.iter_mut().enumerate() {
                    *v = mid[y * w + x];
                }
                sliding_extremum_into(&col, lo, hi, take_min, &mut deque, &mut col_out);
                for (y, &v) in col_out.iter().enumerate() {
                    out[y * w + x] = v;
                }
            }
        }
        out_planes.push(out);
    }
    Image::from_planes(w, h, img.channels(), out_planes)
        .expect("output planes match the input shape")
}

/// Minimum filter (erosion) over a `window x window` neighbourhood — the
/// filter used by the paper's filtering-detection method (2x2 by default in
/// the framework configuration).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `window == 0`.
pub fn minimum_filter(img: &Image, window: usize) -> Result<Image, ImagingError> {
    rank_filter(img, window, RankKind::Minimum)
}

/// Median filter over a `window x window` neighbourhood.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `window == 0`.
pub fn median_filter(img: &Image, window: usize) -> Result<Image, ImagingError> {
    rank_filter(img, window, RankKind::Median)
}

/// Maximum filter (dilation) over a `window x window` neighbourhood.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `window == 0`.
pub fn maximum_filter(img: &Image, window: usize) -> Result<Image, ImagingError> {
    rank_filter(img, window, RankKind::Maximum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    fn ramp3() -> Image {
        Image::from_fn_gray(3, 3, |x, y| (y * 3 + x) as f64)
    }

    #[test]
    fn window_zero_is_rejected() {
        assert!(rank_filter(&ramp3(), 0, RankKind::Minimum).is_err());
    }

    #[test]
    fn window_one_is_identity() {
        let img = ramp3();
        for kind in [RankKind::Minimum, RankKind::Median, RankKind::Maximum] {
            assert_eq!(rank_filter(&img, 1, kind).unwrap(), img, "{kind:?}");
        }
    }

    #[test]
    fn min_filter_erodes_bright_speck() {
        let mut img = Image::filled(5, 5, Channels::Gray, 10.0);
        img.set(2, 2, 0, 200.0);
        let out = minimum_filter(&img, 3).unwrap();
        for &v in out.planes().iter().flatten() {
            assert_eq!(v, 10.0);
        }
    }

    #[test]
    fn max_filter_dilates_bright_speck() {
        let mut img = Image::filled(5, 5, Channels::Gray, 10.0);
        img.set(2, 2, 0, 200.0);
        let out = maximum_filter(&img, 3).unwrap();
        assert_eq!(out.get(1, 1, 0), 200.0);
        assert_eq!(out.get(3, 3, 0), 200.0);
        assert_eq!(out.get(0, 0, 0), 10.0);
    }

    #[test]
    fn median_filter_removes_isolated_outlier() {
        let mut img = Image::filled(5, 5, Channels::Gray, 50.0);
        img.set(2, 2, 0, 255.0);
        let out = median_filter(&img, 3).unwrap();
        assert_eq!(out.get(2, 2, 0), 50.0);
    }

    #[test]
    fn median_of_even_window_averages_middle_pair() {
        // 2x2 window over a constant-with-one-outlier image: windows holding
        // the outlier see [10, 10, 10, 99] -> median (10 + 10) / 2 = 10.
        let mut img = Image::filled(3, 3, Channels::Gray, 10.0);
        img.set(1, 1, 0, 99.0);
        let out = median_filter(&img, 2).unwrap();
        assert_eq!(out.get(1, 1, 0), 10.0);
        assert_eq!(out.get(0, 0, 0), 10.0);
    }

    #[test]
    fn two_by_two_window_extends_right_and_down() {
        // Pixel (0, 0) of a 2x2 min filter sees {(0,0), (1,0), (0,1), (1,1)}.
        let img = ramp3();
        let out = minimum_filter(&img, 2).unwrap();
        assert_eq!(out.get(0, 0, 0), 0.0);
        // Pixel (1, 1) sees {4, 5, 7, 8} -> 4.
        assert_eq!(out.get(1, 1, 0), 4.0);
        // Border pixel (2, 2) clamps to itself: sees {8} repeated -> 8.
        assert_eq!(out.get(2, 2, 0), 8.0);
    }

    #[test]
    fn min_filter_is_idempotent_on_flat_regions() {
        let img = Image::filled(4, 4, Channels::Gray, 33.0);
        let once = minimum_filter(&img, 3).unwrap();
        let twice = minimum_filter(&once, 3).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn min_never_exceeds_input_and_max_never_undershoots() {
        let img = Image::from_fn_gray(6, 6, |x, y| ((x * 31 + y * 17) % 97) as f64);
        let mn = minimum_filter(&img, 3).unwrap();
        let mx = maximum_filter(&img, 3).unwrap();
        for ((&a, &lo), &hi) in img
            .planes()
            .iter()
            .flatten()
            .zip(mn.planes().iter().flatten())
            .zip(mx.planes().iter().flatten())
        {
            assert!(lo <= a && a <= hi);
        }
    }

    #[test]
    fn rgb_channels_filtered_independently() {
        let img = Image::from_fn_rgb(4, 4, |x, y| [x as f64, y as f64, 100.0]);
        let out = minimum_filter(&img, 2).unwrap();
        // Blue is constant and must stay constant.
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(out.get(x, y, 2), 100.0);
            }
        }
        // Red min over {x, x+1} = x.
        assert_eq!(out.get(1, 0, 0), 1.0);
    }

    /// Naive reference implementation for the separable fast path.
    fn naive_extremum(img: &Image, window: usize, kind: RankKind) -> Image {
        let lo = -((window as isize - 1) / 2);
        let hi = window as isize / 2;
        let mut out = img.clone();
        for c in 0..img.channel_count() {
            for y in 0..img.height() {
                for x in 0..img.width() {
                    let mut acc =
                        if kind == RankKind::Minimum { f64::INFINITY } else { f64::NEG_INFINITY };
                    for dy in lo..=hi {
                        for dx in lo..=hi {
                            let v = img.get_clamped(x as isize + dx, y as isize + dy, c);
                            acc = if kind == RankKind::Minimum { acc.min(v) } else { acc.max(v) };
                        }
                    }
                    out.set(x, y, c, acc);
                }
            }
        }
        out
    }

    #[test]
    fn fast_extremum_matches_naive_reference() {
        let img = Image::from_fn_gray(13, 9, |x, y| ((x * 31 + y * 17 + x * y) % 101) as f64);
        for window in [1usize, 2, 3, 4, 5] {
            for kind in [RankKind::Minimum, RankKind::Maximum] {
                let fast = rank_filter(&img, window, kind).unwrap();
                let naive = naive_extremum(&img, window, kind);
                assert!(
                    fast.approx_eq(&naive, 0.0),
                    "window {window} {kind:?} diverged from the reference"
                );
            }
        }
    }

    #[test]
    fn fast_extremum_matches_naive_on_rgb() {
        let img = Image::from_fn_rgb(7, 6, |x, y| {
            [((x * 3 + y) % 13) as f64, ((x + y * 5) % 17) as f64, ((x * y) % 7) as f64]
        });
        for kind in [RankKind::Minimum, RankKind::Maximum] {
            let fast = rank_filter(&img, 3, kind).unwrap();
            let naive = naive_extremum(&img, 3, kind);
            assert!(fast.approx_eq(&naive, 0.0), "{kind:?}");
        }
    }

    #[test]
    fn wide_window_wedge_path_matches_naive_reference() {
        // window > WEDGE_THRESHOLD exercises the monotonic-wedge passes,
        // with the window wider than the image (all-clamped borders).
        let img = Image::from_fn_gray(13, 9, |x, y| ((x * 29 + y * 23 + x * y) % 89) as f64);
        let window = WEDGE_THRESHOLD + 2;
        for kind in [RankKind::Minimum, RankKind::Maximum] {
            let fast = rank_filter(&img, window, kind).unwrap();
            let naive = naive_extremum(&img, window, kind);
            assert!(fast.approx_eq(&naive, 0.0), "wedge path {kind:?} diverged");
        }
    }

    #[test]
    fn nan_samples_never_panic_and_act_as_missing() {
        let mut img = Image::from_fn_gray(6, 5, |x, y| (x + y * 6) as f64);
        img.set(2, 2, 0, f64::NAN);
        for kind in [RankKind::Minimum, RankKind::Median, RankKind::Maximum] {
            let out = rank_filter(&img, 3, kind).unwrap();
            assert_eq!(out.size(), img.size(), "{kind:?}");
        }
        // Extremum folds skip the NaN: the 3x3 min at (2, 2) is the smallest
        // finite neighbour, exactly as f64::min over the window computes it.
        let mn = minimum_filter(&img, 3).unwrap();
        assert_eq!(mn.get(2, 2, 0), 7.0);
    }

    #[test]
    fn rank_kind_names() {
        assert_eq!(RankKind::Minimum.name(), "minimum");
        assert_eq!(RankKind::Median.name(), "median");
        assert_eq!(RankKind::Maximum.name(), "maximum");
    }
}
