//! Separable convolution with border replication.
//!
//! Two implementations are kept deliberately:
//!
//! * [`convolve_separable`] — the scalar reference: per-pixel clamped reads,
//!   easy to audit, used by tests as ground truth.
//! * [`convolve_separable_with_scratch`] / [`convolve_planes_with_scratch`]
//!   — the production path: flat, contiguous, row-major passes over
//!   `&[f64]` buffers with the per-pixel bounds checks hoisted out of the
//!   inner loops, **bit-identical** to the reference (each output sample
//!   accumulates the same taps in the same ascending order starting from
//!   `0.0`, with border clamping applied to exactly the same reads).
//!
//! The interior of the horizontal pass and the whole vertical pass run
//! tap-outer: for each tap, one stride-1 SAXPY over the row
//! ([`crate::simd::axpy`]), which the autovectorizer turns into packed
//! mul/add at the SSE2 baseline and the `simd` feature widens to AVX.

use crate::simd::{weighted_sum_rows, WEIGHTED_SUM_MAX_ROWS};
use crate::{Image, ImagingError};

/// A 1-D convolution kernel with an explicit anchor (centre) position.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::filter::Kernel1D;
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let box3 = Kernel1D::centered(vec![1.0 / 3.0; 3])?;
/// assert_eq!(box3.len(), 3);
/// assert_eq!(box3.anchor(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel1D {
    weights: Vec<f64>,
    anchor: usize,
}

impl Kernel1D {
    /// Creates a kernel with an explicit anchor index.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] if `weights` is empty or
    /// `anchor` is out of range.
    pub fn new(weights: Vec<f64>, anchor: usize) -> Result<Self, ImagingError> {
        if weights.is_empty() {
            return Err(ImagingError::InvalidParameter {
                message: "kernel must be non-empty".into(),
            });
        }
        if anchor >= weights.len() {
            return Err(ImagingError::InvalidParameter {
                message: format!(
                    "anchor {anchor} out of range for kernel of length {}",
                    weights.len()
                ),
            });
        }
        Ok(Self { weights, anchor })
    }

    /// Creates a kernel anchored at its centre (requires odd length).
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] for empty or even-length
    /// kernels.
    pub fn centered(weights: Vec<f64>) -> Result<Self, ImagingError> {
        if weights.len().is_multiple_of(2) {
            return Err(ImagingError::InvalidParameter {
                message: format!("centered kernel needs odd length, got {}", weights.len()),
            });
        }
        let anchor = weights.len() / 2;
        Self::new(weights, anchor)
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the kernel has zero taps (never true for constructed kernels).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Anchor (the tap aligned with the output pixel).
    pub const fn anchor(&self) -> usize {
        self.anchor
    }

    /// Borrows the weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sum of the weights (1.0 for smoothing kernels).
    pub fn sum(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// Convolves an image with `horizontal` along x and `vertical` along y,
/// replicating border pixels. Channels are processed independently.
///
/// # Errors
///
/// This function itself cannot fail once the kernels exist; the `Result` is
/// reserved for future border modes. (It currently always returns `Ok`.)
pub fn convolve_separable(
    img: &Image,
    horizontal: &Kernel1D,
    vertical: &Kernel1D,
) -> Result<Image, ImagingError> {
    let mut mid = img.clone();
    // Horizontal pass.
    for c in 0..img.channel_count() {
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut acc = 0.0;
                for (k, &w) in horizontal.weights().iter().enumerate() {
                    let sx = x as isize + k as isize - horizontal.anchor() as isize;
                    acc += w * img.get_clamped(sx, y as isize, c);
                }
                mid.set(x, y, c, acc);
            }
        }
    }
    // Vertical pass.
    let mut out = img.clone();
    for c in 0..img.channel_count() {
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut acc = 0.0;
                for (k, &w) in vertical.weights().iter().enumerate() {
                    let sy = y as isize + k as isize - vertical.anchor() as isize;
                    acc += w * mid.get_clamped(x as isize, sy, c);
                }
                out.set(x, y, c, acc);
            }
        }
    }
    Ok(out)
}

/// Reusable buffers for [`convolve_separable_with_scratch`] and
/// [`convolve_planes_with_scratch`].
///
/// Holding one of these across calls avoids the intermediate-image
/// allocation of every convolution; buffers grow to the largest image seen.
#[derive(Debug, Default)]
pub struct ConvScratch {
    /// Ring of horizontally convolved rows feeding the vertical pass. Sized
    /// to the next power of two above the vertical kernel length, so the
    /// intermediate stays L1-resident instead of a full image plane.
    ring: Vec<f64>,
    /// Staging row for [`PlaneSource::Product`] planes (one image row).
    row: Vec<f64>,
}

impl ConvScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One input plane of a fused multi-plane convolution.
///
/// A plane is a contiguous row-major `width * height` buffer — exactly
/// what [`Image::plane`] lends. The SSIM pipeline blurs five maps per
/// image pair — `a`, `b`, `a·a`, `b·b` and `a·b`. Materialising the three
/// product planes costs three full-size allocations and passes over memory
/// per score; [`PlaneSource::Product`] instead forms each product row on
/// the fly in a single staging row while the horizontal sweep consumes it.
/// Because border handling clamps the *index* before reading, the product
/// of clamped reads equals the clamped read of the product — the result is
/// bit-identical to convolving a materialised product plane.
#[derive(Debug, Clone, Copy)]
pub enum PlaneSource<'a> {
    /// A plane's own samples.
    Plane(&'a [f64]),
    /// The elementwise product of two equally long planes.
    Product(&'a [f64], &'a [f64]),
}

impl PlaneSource<'_> {
    fn len(&self) -> Result<usize, ImagingError> {
        match self {
            PlaneSource::Plane(p) => Ok(p.len()),
            PlaneSource::Product(a, b) => {
                if a.len() != b.len() {
                    return Err(ImagingError::BufferSizeMismatch {
                        expected: a.len(),
                        actual: b.len(),
                    });
                }
                Ok(a.len())
            }
        }
    }
}

/// Convolves one flat stride-1 plane row with `taps`/`anchor`, writing
/// into `mid_row`. `int_lo..int_hi` is the pixel range where every tap
/// lands in bounds; border pixels use the clamped reads of the reference
/// implementation, interior pixels run tap-outer stride-1 SAXPY. Both
/// accumulate each output over ascending taps from 0.0, so the float sums
/// are bit-identical to the reference's sample-outer loop.
fn hconv_row(
    src_row: &[f64],
    mid_row: &mut [f64],
    taps: &[f64],
    anchor: usize,
    w: usize,
    int_lo: usize,
    int_hi: usize,
) {
    let border = |x: usize, mid_row: &mut [f64]| {
        let mut acc = 0.0;
        for (k, &wgt) in taps.iter().enumerate() {
            let sx = (x as isize + k as isize - anchor as isize).clamp(0, w as isize - 1) as usize;
            acc += wgt * src_row[sx];
        }
        mid_row[x] = acc;
    };
    for x in 0..int_lo {
        border(x, mid_row);
    }
    if int_hi > int_lo {
        let dst = &mut mid_row[int_lo..int_hi];
        let len = dst.len();
        // All taps of one group fuse into a single register-accumulating
        // sweep; wider kernels chain groups with `accumulate = true`
        // (per-element add order stays ascending — bit-identical).
        let mut srcs: [&[f64]; WEIGHTED_SUM_MAX_ROWS] = [&[]; WEIGHTED_SUM_MAX_ROWS];
        for (k0, group) in
            (0..taps.len()).step_by(WEIGHTED_SUM_MAX_ROWS).zip(taps.chunks(WEIGHTED_SUM_MAX_ROWS))
        {
            for (s, k) in srcs.iter_mut().zip(k0..k0 + group.len()) {
                let src_lo = int_lo + k - anchor;
                *s = &src_row[src_lo..src_lo + len];
            }
            weighted_sum_rows(dst, &srcs[..group.len()], group, k0 > 0);
        }
    }
    for x in int_hi..w {
        border(x, mid_row);
    }
}

/// Fused separable convolution of several equally shaped `width * height`
/// planes in one call: each `planes[i]` is blurred into `outputs[i]`
/// (resized to `width * height`, row-major — the layout of
/// [`Image::plane`]).
///
/// Results are **bit-identical** to calling [`convolve_separable`] on each
/// plane (with products materialised via `zip_map`); what the fusion buys
/// is memory: the horizontal intermediate is a ring of `O(kernel)` rows
/// streamed just ahead of the vertical window — L1-resident instead of a
/// full image plane — plus one staging row and caller-reused output buffers
/// instead of five intermediate images per SSIM score. The vertical pass
/// reduces each output row as one register-accumulating weighted sum of the
/// (clamped) ring rows of all taps, grouped by [`WEIGHTED_SUM_MAX_ROWS`].
///
/// # Errors
///
/// Returns [`ImagingError::BufferSizeMismatch`] if any plane's length
/// differs from `width * height` (including the two factors of a
/// [`PlaneSource::Product`]) and [`ImagingError::InvalidParameter`] if
/// `planes` and `outputs` have different lengths.
pub fn convolve_planes_with_scratch(
    planes: &[PlaneSource<'_>],
    width: usize,
    height: usize,
    horizontal: &Kernel1D,
    vertical: &Kernel1D,
    scratch: &mut ConvScratch,
    outputs: &mut [&mut Vec<f64>],
) -> Result<(), ImagingError> {
    if planes.len() != outputs.len() {
        return Err(ImagingError::InvalidParameter {
            message: format!("{} planes but {} outputs", planes.len(), outputs.len()),
        });
    }
    if planes.is_empty() {
        return Ok(());
    }
    let (w, h) = (width, height);
    for plane in planes {
        let len = plane.len()?;
        if len != w * h {
            return Err(ImagingError::BufferSizeMismatch { expected: w * h, actual: len });
        }
    }
    let samples = w * h;
    let row_len = w;

    // Interior pixel range of the horizontal pass: every tap in bounds
    // means x - anchor >= 0 and x + (len - 1 - anchor) <= w - 1, i.e.
    // x in [anchor, w + anchor - len].
    let taps_h = horizontal.weights();
    let anchor_h = horizontal.anchor();
    let int_lo = anchor_h.min(w);
    let int_hi = (w + anchor_h + 1).saturating_sub(taps_h.len()).clamp(int_lo, w);

    let taps_v = vertical.weights();
    let anchor_v = vertical.anchor();
    // Ring capacity: power of two covering the vertical window, so slot
    // lookup is `sy % ring_cap` and a row is only overwritten once every
    // output that reads it has been produced.
    let ring_cap = taps_v.len().next_power_of_two();

    let ConvScratch { ring, row } = scratch;
    ring.resize(ring_cap * row_len, 0.0);
    row.resize(row_len, 0.0);

    for (plane, out) in planes.iter().zip(outputs.iter_mut()) {
        out.resize(samples, 0.0);
        // First source row not yet h-convolved into the ring.
        let mut next_mid = 0usize;
        for y in 0..h {
            // Highest source row the vertical window of `y` touches.
            let hi = (y + taps_v.len() - 1).saturating_sub(anchor_v).min(h - 1);
            while next_mid <= hi {
                let slot = next_mid % ring_cap;
                let mid_row = &mut ring[slot * row_len..(slot + 1) * row_len];
                let src_row: &[f64] = match plane {
                    PlaneSource::Plane(p) => &p[next_mid * row_len..(next_mid + 1) * row_len],
                    PlaneSource::Product(a, b) => {
                        let a_row = &a[next_mid * row_len..(next_mid + 1) * row_len];
                        let b_row = &b[next_mid * row_len..(next_mid + 1) * row_len];
                        for ((r, &av), &bv) in row.iter_mut().zip(a_row).zip(b_row) {
                            *r = av * bv;
                        }
                        row
                    }
                };
                hconv_row(src_row, mid_row, taps_h, anchor_h, w, int_lo, int_hi);
                next_mid += 1;
            }
            let out_row = &mut out[y * row_len..(y + 1) * row_len];
            let mut srcs: [&[f64]; WEIGHTED_SUM_MAX_ROWS] = [&[]; WEIGHTED_SUM_MAX_ROWS];
            for (k0, group) in (0..taps_v.len())
                .step_by(WEIGHTED_SUM_MAX_ROWS)
                .zip(taps_v.chunks(WEIGHTED_SUM_MAX_ROWS))
            {
                for (s, k) in srcs.iter_mut().zip(k0..k0 + group.len()) {
                    let sy = (y as isize + k as isize - anchor_v as isize).clamp(0, h as isize - 1)
                        as usize;
                    let slot = sy % ring_cap;
                    *s = &ring[slot * row_len..(slot + 1) * row_len];
                }
                weighted_sum_rows(out_row, &srcs[..group.len()], group, k0 > 0);
            }
        }
    }
    Ok(())
}

/// [`convolve_separable`] with reusable scratch buffers and a fast interior
/// path.
///
/// The result is **bit-identical** to [`convolve_separable`]: every output
/// sample is accumulated over the same taps in the same order, with border
/// clamping applied to exactly the same reads — only the per-tap bounds
/// checks and the two intermediate image allocations are gone. The unit and
/// property tests assert exact (`==`) equality against the reference
/// implementation.
///
/// # Errors
///
/// Like [`convolve_separable`], currently always returns `Ok`.
pub fn convolve_separable_with_scratch(
    img: &Image,
    horizontal: &Kernel1D,
    vertical: &Kernel1D,
    scratch: &mut ConvScratch,
) -> Result<Image, ImagingError> {
    let sources: Vec<PlaneSource<'_>> =
        img.planes().iter().map(|p| PlaneSource::Plane(p)).collect();
    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); img.channel_count()];
    let mut out_refs: Vec<&mut Vec<f64>> = outs.iter_mut().collect();
    convolve_planes_with_scratch(
        &sources,
        img.width(),
        img.height(),
        horizontal,
        vertical,
        scratch,
        &mut out_refs,
    )?;
    Image::from_planes(img.width(), img.height(), img.channels(), outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    #[test]
    fn kernel_validation() {
        assert!(Kernel1D::new(vec![], 0).is_err());
        assert!(Kernel1D::new(vec![1.0], 1).is_err());
        assert!(Kernel1D::new(vec![1.0], 0).is_ok());
        assert!(Kernel1D::centered(vec![1.0, 1.0]).is_err());
        assert!(Kernel1D::centered(vec![0.25, 0.5, 0.25]).is_ok());
    }

    #[test]
    fn identity_kernel_is_identity() {
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(5, 4, |x, y| (x * y) as f64);
        let out = convolve_separable(&img, &id, &id).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn box_blur_averages_neighbours() {
        let b = Kernel1D::centered(vec![1.0 / 3.0; 3]).unwrap();
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(5, 1, |x, _| (x as f64) * 3.0);
        let out = convolve_separable(&img, &b, &id).unwrap();
        // Interior: mean of {3(x-1), 3x, 3(x+1)} = 3x.
        assert!((out.get(2, 0, 0) - 6.0).abs() < 1e-12);
        // Border replicates: mean of {0, 0, 3} = 1.
        assert!((out.get(0, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_preserves_constant_images() {
        let b = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        let img = Image::filled(6, 6, Channels::Rgb, 200.0);
        let out = convolve_separable(&img, &b, &b).unwrap();
        assert!(out.approx_eq(&img, 1e-12));
    }

    #[test]
    fn shifted_anchor_translates_image() {
        // Kernel [1, 0] anchored at 1 reads the pixel to the left.
        let shift = Kernel1D::new(vec![1.0, 0.0], 1).unwrap();
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(4, 1, |x, _| x as f64);
        let out = convolve_separable(&img, &shift, &id).unwrap();
        assert_eq!(out.plane(0), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn kernel_accessors() {
        let k = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        assert_eq!(k.len(), 3);
        assert!(!k.is_empty());
        assert_eq!(k.anchor(), 1);
        assert!((k.sum() - 1.0).abs() < 1e-12);
        assert_eq!(k.weights().len(), 3);
    }

    #[test]
    fn scratch_path_is_bit_identical_to_reference() {
        let mut scratch = ConvScratch::new();
        let images = [
            Image::from_fn_gray(13, 9, |x, y| ((x * 31 + y * 17) % 64) as f64 - 12.5),
            Image::from_fn_rgb(7, 11, |x, y| {
                let v = (x * 5 + y * 3) as f64;
                [v, v * 0.5 - 7.0, 255.0 - v]
            }),
            Image::from_fn_gray(2, 2, |x, y| (x + 2 * y) as f64),
            Image::from_fn_gray(1, 6, |_, y| y as f64 * 1.7),
        ];
        let kernels = [
            Kernel1D::centered(vec![1.0]).unwrap(),
            Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap(),
            Kernel1D::centered(vec![0.09, 0.11, 0.2, 0.2, 0.2, 0.11, 0.09]).unwrap(),
            Kernel1D::new(vec![1.0, 0.0], 1).unwrap(),
            Kernel1D::new(vec![0.3, 0.3, 0.4], 0).unwrap(),
            Kernel1D::centered(vec![1.0 / 11.0; 11]).unwrap(),
        ];
        for img in &images {
            for kh in &kernels {
                for kv in &kernels {
                    let reference = convolve_separable(img, kh, kv).unwrap();
                    let fast = convolve_separable_with_scratch(img, kh, kv, &mut scratch).unwrap();
                    assert_eq!(
                        reference,
                        fast,
                        "{}x{} kernels {}/{}",
                        img.width(),
                        img.height(),
                        kh.len(),
                        kv.len()
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_sizes_is_safe() {
        let mut scratch = ConvScratch::new();
        let k = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        for side in [9usize, 3, 17, 5] {
            let img = Image::from_fn_gray(side, side, |x, y| (x * y) as f64);
            let reference = convolve_separable(&img, &k, &k).unwrap();
            let fast = convolve_separable_with_scratch(&img, &k, &k, &mut scratch).unwrap();
            assert_eq!(reference, fast, "side {side}");
        }
    }

    #[test]
    fn fused_planes_are_bit_identical_to_staged_reference() {
        let mut scratch = ConvScratch::new();
        let a = Image::from_fn_rgb(13, 9, |x, y| {
            let v = ((x * 31 + y * 17) % 64) as f64 - 12.5;
            [v, v * 0.5 - 7.0, 255.0 - v]
        });
        let b = a.map(|v| (v * 0.9 + 4.0).min(255.0));
        for kh in [
            Kernel1D::centered(vec![1.0 / 11.0; 11]).unwrap(),
            Kernel1D::new(vec![0.3, 0.3, 0.4], 0).unwrap(),
        ] {
            let kv = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
            let mut sources = Vec::new();
            for c in 0..3 {
                sources.push(PlaneSource::Plane(a.plane(c)));
                sources.push(PlaneSource::Product(a.plane(c), a.plane(c)));
                sources.push(PlaneSource::Product(a.plane(c), b.plane(c)));
            }
            let mut outs: Vec<Vec<f64>> = vec![Vec::new(); 9];
            let mut out_refs: Vec<&mut Vec<f64>> = outs.iter_mut().collect();
            convolve_planes_with_scratch(
                &sources,
                a.width(),
                a.height(),
                &kh,
                &kv,
                &mut scratch,
                &mut out_refs,
            )
            .unwrap();
            let staged = |img: &Image| convolve_separable(img, &kh, &kv).unwrap();
            let aa = a.zip_map(&a, |x, y| x * y).unwrap();
            let ab = a.zip_map(&b, |x, y| x * y).unwrap();
            for c in 0..3 {
                assert_eq!(outs[3 * c], staged(&a).plane(c), "plane {c}");
                assert_eq!(outs[3 * c + 1], staged(&aa).plane(c), "a*a plane {c}");
                assert_eq!(outs[3 * c + 2], staged(&ab).plane(c), "a*b plane {c}");
            }
        }
    }

    #[test]
    fn fused_planes_reject_shape_mismatch_and_arity_mismatch() {
        let mut scratch = ConvScratch::new();
        let k = Kernel1D::centered(vec![1.0]).unwrap();
        let a = Image::zeros(4, 4, Channels::Gray);
        let b = Image::zeros(4, 5, Channels::Gray);
        let mut out = Vec::new();
        assert!(convolve_planes_with_scratch(
            &[PlaneSource::Product(a.plane(0), b.plane(0))],
            4,
            4,
            &k,
            &k,
            &mut scratch,
            &mut [&mut out],
        )
        .is_err());
        assert!(convolve_planes_with_scratch(
            &[PlaneSource::Plane(a.plane(0)), PlaneSource::Plane(b.plane(0))],
            4,
            4,
            &k,
            &k,
            &mut scratch,
            &mut [&mut out],
        )
        .is_err());
        assert!(convolve_planes_with_scratch(
            &[PlaneSource::Plane(a.plane(0))],
            4,
            4,
            &k,
            &k,
            &mut scratch,
            &mut [],
        )
        .is_err());
        // Empty call is a no-op.
        assert!(convolve_planes_with_scratch(&[], 4, 4, &k, &k, &mut scratch, &mut []).is_ok());
    }

    #[test]
    fn kernel_wider_than_image_stays_bit_identical() {
        // radius >= width/2: the interior range is empty, every pixel is a
        // border pixel.
        let mut scratch = ConvScratch::new();
        let img = Image::from_fn_gray(3, 5, |x, y| (x * 7 + y * 3) as f64);
        let k = Kernel1D::centered(vec![1.0 / 9.0; 9]).unwrap();
        let reference = convolve_separable(&img, &k, &k).unwrap();
        let fast = convolve_separable_with_scratch(&img, &k, &k, &mut scratch).unwrap();
        assert_eq!(reference, fast);
    }

    #[test]
    fn separable_convolution_is_commutative_in_axes() {
        let kx = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        let ky = Kernel1D::centered(vec![1.0 / 3.0; 3]).unwrap();
        let img = Image::from_fn_gray(7, 7, |x, y| ((x * 13 + y * 7) % 31) as f64);
        let a = convolve_separable(&img, &kx, &ky).unwrap();
        // Convolving with (id, ky) then (kx, id) must match.
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let tmp = convolve_separable(&img, &id, &ky).unwrap();
        let b = convolve_separable(&tmp, &kx, &id).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
    }
}
