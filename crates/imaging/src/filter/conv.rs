//! Separable convolution with border replication.

use crate::{Image, ImagingError};

/// A 1-D convolution kernel with an explicit anchor (centre) position.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::filter::Kernel1D;
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let box3 = Kernel1D::centered(vec![1.0 / 3.0; 3])?;
/// assert_eq!(box3.len(), 3);
/// assert_eq!(box3.anchor(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel1D {
    weights: Vec<f64>,
    anchor: usize,
}

impl Kernel1D {
    /// Creates a kernel with an explicit anchor index.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] if `weights` is empty or
    /// `anchor` is out of range.
    pub fn new(weights: Vec<f64>, anchor: usize) -> Result<Self, ImagingError> {
        if weights.is_empty() {
            return Err(ImagingError::InvalidParameter {
                message: "kernel must be non-empty".into(),
            });
        }
        if anchor >= weights.len() {
            return Err(ImagingError::InvalidParameter {
                message: format!(
                    "anchor {anchor} out of range for kernel of length {}",
                    weights.len()
                ),
            });
        }
        Ok(Self { weights, anchor })
    }

    /// Creates a kernel anchored at its centre (requires odd length).
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] for empty or even-length
    /// kernels.
    pub fn centered(weights: Vec<f64>) -> Result<Self, ImagingError> {
        if weights.len().is_multiple_of(2) {
            return Err(ImagingError::InvalidParameter {
                message: format!("centered kernel needs odd length, got {}", weights.len()),
            });
        }
        let anchor = weights.len() / 2;
        Self::new(weights, anchor)
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the kernel has zero taps (never true for constructed kernels).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Anchor (the tap aligned with the output pixel).
    pub const fn anchor(&self) -> usize {
        self.anchor
    }

    /// Borrows the weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sum of the weights (1.0 for smoothing kernels).
    pub fn sum(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// Convolves an image with `horizontal` along x and `vertical` along y,
/// replicating border pixels. Channels are processed independently.
///
/// # Errors
///
/// This function itself cannot fail once the kernels exist; the `Result` is
/// reserved for future border modes. (It currently always returns `Ok`.)
pub fn convolve_separable(
    img: &Image,
    horizontal: &Kernel1D,
    vertical: &Kernel1D,
) -> Result<Image, ImagingError> {
    let mut mid = img.clone();
    // Horizontal pass.
    for c in 0..img.channel_count() {
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut acc = 0.0;
                for (k, &w) in horizontal.weights().iter().enumerate() {
                    let sx = x as isize + k as isize - horizontal.anchor() as isize;
                    acc += w * img.get_clamped(sx, y as isize, c);
                }
                mid.set(x, y, c, acc);
            }
        }
    }
    // Vertical pass.
    let mut out = img.clone();
    for c in 0..img.channel_count() {
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut acc = 0.0;
                for (k, &w) in vertical.weights().iter().enumerate() {
                    let sy = y as isize + k as isize - vertical.anchor() as isize;
                    acc += w * mid.get_clamped(x as isize, sy, c);
                }
                out.set(x, y, c, acc);
            }
        }
    }
    Ok(out)
}

/// Reusable buffers for [`convolve_separable_with_scratch`].
///
/// Holding one of these across calls avoids the intermediate-image
/// allocation of every convolution; buffers grow to the largest image seen.
#[derive(Debug, Default)]
pub struct ConvScratch {
    mid: Vec<f64>,
}

impl ConvScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`convolve_separable`] with reusable scratch buffers and a fast interior
/// path.
///
/// The result is **bit-identical** to [`convolve_separable`]: every output
/// sample is accumulated over the same taps in the same order, with border
/// clamping applied to exactly the same reads — only the per-tap bounds
/// checks and the two intermediate image allocations are gone. The unit and
/// property tests assert exact (`==`) equality against the reference
/// implementation.
///
/// # Errors
///
/// Like [`convolve_separable`], currently always returns `Ok`.
pub fn convolve_separable_with_scratch(
    img: &Image,
    horizontal: &Kernel1D,
    vertical: &Kernel1D,
    scratch: &mut ConvScratch,
) -> Result<Image, ImagingError> {
    let (w, h, ch) = (img.width(), img.height(), img.channel_count());
    let src = img.as_slice();
    let samples = w * h * ch;
    scratch.mid.clear();
    scratch.mid.resize(samples, 0.0);
    let mid = &mut scratch.mid;

    // Horizontal pass. A pixel is "interior" when every tap lands in
    // bounds: x - anchor >= 0 and x + (len - 1 - anchor) <= w - 1, i.e.
    // x in [anchor, w + anchor - len]. Border pixels fall back to the
    // clamped reads of the reference implementation.
    let taps_h = horizontal.weights();
    let anchor_h = horizontal.anchor();
    let int_lo = anchor_h.min(w);
    let int_hi = (w + anchor_h + 1).saturating_sub(taps_h.len()).clamp(int_lo, w);
    for y in 0..h {
        for c in 0..ch {
            let row = y * w * ch + c;
            for x in 0..int_lo {
                let mut acc = 0.0;
                for (k, &wgt) in taps_h.iter().enumerate() {
                    let sx = x as isize + k as isize - anchor_h as isize;
                    acc += wgt * img.get_clamped(sx, y as isize, c);
                }
                mid[row + x * ch] = acc;
            }
            for x in int_lo..int_hi {
                let base = row + (x - anchor_h) * ch;
                let mut acc = 0.0;
                for (k, &wgt) in taps_h.iter().enumerate() {
                    acc += wgt * src[base + k * ch];
                }
                mid[row + x * ch] = acc;
            }
            for x in int_hi..w {
                let mut acc = 0.0;
                for (k, &wgt) in taps_h.iter().enumerate() {
                    let sx = x as isize + k as isize - anchor_h as isize;
                    acc += wgt * img.get_clamped(sx, y as isize, c);
                }
                mid[row + x * ch] = acc;
            }
        }
    }

    // Vertical pass, tap-outer over whole rows: each output sample still
    // accumulates its taps in ascending-k order (starting from 0.0), so the
    // per-sample float sums match the reference pass exactly, while only
    // the h * len row lookups need clamping.
    let taps_v = vertical.weights();
    let anchor_v = vertical.anchor();
    let row_len = w * ch;
    let mut out = vec![0.0; samples];
    for y in 0..h {
        let out_row = &mut out[y * row_len..(y + 1) * row_len];
        for (k, &wgt) in taps_v.iter().enumerate() {
            let sy =
                (y as isize + k as isize - anchor_v as isize).clamp(0, h as isize - 1) as usize;
            let mid_row = &mid[sy * row_len..(sy + 1) * row_len];
            for (o, &m) in out_row.iter_mut().zip(mid_row.iter()) {
                *o += wgt * m;
            }
        }
    }
    Image::from_vec(w, h, img.channels(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    #[test]
    fn kernel_validation() {
        assert!(Kernel1D::new(vec![], 0).is_err());
        assert!(Kernel1D::new(vec![1.0], 1).is_err());
        assert!(Kernel1D::new(vec![1.0], 0).is_ok());
        assert!(Kernel1D::centered(vec![1.0, 1.0]).is_err());
        assert!(Kernel1D::centered(vec![0.25, 0.5, 0.25]).is_ok());
    }

    #[test]
    fn identity_kernel_is_identity() {
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(5, 4, |x, y| (x * y) as f64);
        let out = convolve_separable(&img, &id, &id).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn box_blur_averages_neighbours() {
        let b = Kernel1D::centered(vec![1.0 / 3.0; 3]).unwrap();
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(5, 1, |x, _| (x as f64) * 3.0);
        let out = convolve_separable(&img, &b, &id).unwrap();
        // Interior: mean of {3(x-1), 3x, 3(x+1)} = 3x.
        assert!((out.get(2, 0, 0) - 6.0).abs() < 1e-12);
        // Border replicates: mean of {0, 0, 3} = 1.
        assert!((out.get(0, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_preserves_constant_images() {
        let b = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        let img = Image::filled(6, 6, Channels::Rgb, 200.0);
        let out = convolve_separable(&img, &b, &b).unwrap();
        assert!(out.approx_eq(&img, 1e-12));
    }

    #[test]
    fn shifted_anchor_translates_image() {
        // Kernel [1, 0] anchored at 1 reads the pixel to the left.
        let shift = Kernel1D::new(vec![1.0, 0.0], 1).unwrap();
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(4, 1, |x, _| x as f64);
        let out = convolve_separable(&img, &shift, &id).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn kernel_accessors() {
        let k = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        assert_eq!(k.len(), 3);
        assert!(!k.is_empty());
        assert_eq!(k.anchor(), 1);
        assert!((k.sum() - 1.0).abs() < 1e-12);
        assert_eq!(k.weights().len(), 3);
    }

    #[test]
    fn scratch_path_is_bit_identical_to_reference() {
        let mut scratch = ConvScratch::new();
        let images = [
            Image::from_fn_gray(13, 9, |x, y| ((x * 31 + y * 17) % 64) as f64 - 12.5),
            Image::from_fn_rgb(7, 11, |x, y| {
                let v = (x * 5 + y * 3) as f64;
                [v, v * 0.5 - 7.0, 255.0 - v]
            }),
            Image::from_fn_gray(2, 2, |x, y| (x + 2 * y) as f64),
            Image::from_fn_gray(1, 6, |_, y| y as f64 * 1.7),
        ];
        let kernels = [
            Kernel1D::centered(vec![1.0]).unwrap(),
            Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap(),
            Kernel1D::centered(vec![0.09, 0.11, 0.2, 0.2, 0.2, 0.11, 0.09]).unwrap(),
            Kernel1D::new(vec![1.0, 0.0], 1).unwrap(),
            Kernel1D::new(vec![0.3, 0.3, 0.4], 0).unwrap(),
            Kernel1D::centered(vec![1.0 / 11.0; 11]).unwrap(),
        ];
        for img in &images {
            for kh in &kernels {
                for kv in &kernels {
                    let reference = convolve_separable(img, kh, kv).unwrap();
                    let fast = convolve_separable_with_scratch(img, kh, kv, &mut scratch).unwrap();
                    assert_eq!(
                        reference.as_slice(),
                        fast.as_slice(),
                        "{}x{} kernels {}/{}",
                        img.width(),
                        img.height(),
                        kh.len(),
                        kv.len()
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_sizes_is_safe() {
        let mut scratch = ConvScratch::new();
        let k = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        for side in [9usize, 3, 17, 5] {
            let img = Image::from_fn_gray(side, side, |x, y| (x * y) as f64);
            let reference = convolve_separable(&img, &k, &k).unwrap();
            let fast = convolve_separable_with_scratch(&img, &k, &k, &mut scratch).unwrap();
            assert_eq!(reference.as_slice(), fast.as_slice(), "side {side}");
        }
    }

    #[test]
    fn separable_convolution_is_commutative_in_axes() {
        let kx = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        let ky = Kernel1D::centered(vec![1.0 / 3.0; 3]).unwrap();
        let img = Image::from_fn_gray(7, 7, |x, y| ((x * 13 + y * 7) % 31) as f64);
        let a = convolve_separable(&img, &kx, &ky).unwrap();
        // Convolving with (id, ky) then (kx, id) must match.
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let tmp = convolve_separable(&img, &id, &ky).unwrap();
        let b = convolve_separable(&tmp, &kx, &id).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
    }
}
