//! Separable convolution with border replication.

use crate::{Image, ImagingError};

/// A 1-D convolution kernel with an explicit anchor (centre) position.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::filter::Kernel1D;
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let box3 = Kernel1D::centered(vec![1.0 / 3.0; 3])?;
/// assert_eq!(box3.len(), 3);
/// assert_eq!(box3.anchor(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel1D {
    weights: Vec<f64>,
    anchor: usize,
}

impl Kernel1D {
    /// Creates a kernel with an explicit anchor index.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] if `weights` is empty or
    /// `anchor` is out of range.
    pub fn new(weights: Vec<f64>, anchor: usize) -> Result<Self, ImagingError> {
        if weights.is_empty() {
            return Err(ImagingError::InvalidParameter { message: "kernel must be non-empty".into() });
        }
        if anchor >= weights.len() {
            return Err(ImagingError::InvalidParameter {
                message: format!("anchor {anchor} out of range for kernel of length {}", weights.len()),
            });
        }
        Ok(Self { weights, anchor })
    }

    /// Creates a kernel anchored at its centre (requires odd length).
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] for empty or even-length
    /// kernels.
    pub fn centered(weights: Vec<f64>) -> Result<Self, ImagingError> {
        if weights.len() % 2 == 0 {
            return Err(ImagingError::InvalidParameter {
                message: format!("centered kernel needs odd length, got {}", weights.len()),
            });
        }
        let anchor = weights.len() / 2;
        Self::new(weights, anchor)
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the kernel has zero taps (never true for constructed kernels).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Anchor (the tap aligned with the output pixel).
    pub const fn anchor(&self) -> usize {
        self.anchor
    }

    /// Borrows the weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sum of the weights (1.0 for smoothing kernels).
    pub fn sum(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// Convolves an image with `horizontal` along x and `vertical` along y,
/// replicating border pixels. Channels are processed independently.
///
/// # Errors
///
/// This function itself cannot fail once the kernels exist; the `Result` is
/// reserved for future border modes. (It currently always returns `Ok`.)
pub fn convolve_separable(
    img: &Image,
    horizontal: &Kernel1D,
    vertical: &Kernel1D,
) -> Result<Image, ImagingError> {
    let mut mid = img.clone();
    // Horizontal pass.
    for c in 0..img.channel_count() {
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut acc = 0.0;
                for (k, &w) in horizontal.weights().iter().enumerate() {
                    let sx = x as isize + k as isize - horizontal.anchor() as isize;
                    acc += w * img.get_clamped(sx, y as isize, c);
                }
                mid.set(x, y, c, acc);
            }
        }
    }
    // Vertical pass.
    let mut out = img.clone();
    for c in 0..img.channel_count() {
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut acc = 0.0;
                for (k, &w) in vertical.weights().iter().enumerate() {
                    let sy = y as isize + k as isize - vertical.anchor() as isize;
                    acc += w * mid.get_clamped(x as isize, sy, c);
                }
                out.set(x, y, c, acc);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    #[test]
    fn kernel_validation() {
        assert!(Kernel1D::new(vec![], 0).is_err());
        assert!(Kernel1D::new(vec![1.0], 1).is_err());
        assert!(Kernel1D::new(vec![1.0], 0).is_ok());
        assert!(Kernel1D::centered(vec![1.0, 1.0]).is_err());
        assert!(Kernel1D::centered(vec![0.25, 0.5, 0.25]).is_ok());
    }

    #[test]
    fn identity_kernel_is_identity() {
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(5, 4, |x, y| (x * y) as f64);
        let out = convolve_separable(&img, &id, &id).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn box_blur_averages_neighbours() {
        let b = Kernel1D::centered(vec![1.0 / 3.0; 3]).unwrap();
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(5, 1, |x, _| (x as f64) * 3.0);
        let out = convolve_separable(&img, &b, &id).unwrap();
        // Interior: mean of {3(x-1), 3x, 3(x+1)} = 3x.
        assert!((out.get(2, 0, 0) - 6.0).abs() < 1e-12);
        // Border replicates: mean of {0, 0, 3} = 1.
        assert!((out.get(0, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_preserves_constant_images() {
        let b = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        let img = Image::filled(6, 6, Channels::Rgb, 200.0);
        let out = convolve_separable(&img, &b, &b).unwrap();
        assert!(out.approx_eq(&img, 1e-12));
    }

    #[test]
    fn shifted_anchor_translates_image() {
        // Kernel [1, 0] anchored at 1 reads the pixel to the left.
        let shift = Kernel1D::new(vec![1.0, 0.0], 1).unwrap();
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let img = Image::from_fn_gray(4, 1, |x, _| x as f64);
        let out = convolve_separable(&img, &shift, &id).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn kernel_accessors() {
        let k = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        assert_eq!(k.len(), 3);
        assert!(!k.is_empty());
        assert_eq!(k.anchor(), 1);
        assert!((k.sum() - 1.0).abs() < 1e-12);
        assert_eq!(k.weights().len(), 3);
    }

    #[test]
    fn separable_convolution_is_commutative_in_axes() {
        let kx = Kernel1D::centered(vec![0.25, 0.5, 0.25]).unwrap();
        let ky = Kernel1D::centered(vec![1.0 / 3.0; 3]).unwrap();
        let img = Image::from_fn_gray(7, 7, |x, y| ((x * 13 + y * 7) % 31) as f64);
        let a = convolve_separable(&img, &kx, &ky).unwrap();
        // Convolving with (id, ky) then (kx, id) must match.
        let id = Kernel1D::centered(vec![1.0]).unwrap();
        let tmp = convolve_separable(&img, &id, &ky).unwrap();
        let b = convolve_separable(&tmp, &kx, &id).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
    }
}
