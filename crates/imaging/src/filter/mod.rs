//! Spatial filtering.
//!
//! * rank filters ([`minimum_filter`] / [`median_filter`] /
//!   [`maximum_filter`]) — the *minimum filter* is the workhorse of the
//!   paper's filtering-detection method: the embedded target pixels are
//!   local outliers that survive (or dominate) rank filtering, so
//!   comparing the filtered image to the input exposes them.
//! * [`convolve_separable`] — separable convolution with border
//!   replication.
//! * [`IntegralImage`] / [`box_mean`] — summed-area tables with O(1) box
//!   statistics.
//! * [`gaussian_blur`] — Gaussian blur built on the separable convolution,
//!   used by SSIM and the synthetic dataset generator.

mod conv;
mod gaussian;
mod integral;
mod rank;

pub use conv::{
    convolve_planes_with_scratch, convolve_separable, convolve_separable_with_scratch, ConvScratch,
    Kernel1D, PlaneSource,
};
pub use gaussian::{gaussian_blur, gaussian_kernel};
pub use integral::{box_mean, IntegralImage};
pub use rank::{maximum_filter, median_filter, minimum_filter, rank_filter, RankKind};
