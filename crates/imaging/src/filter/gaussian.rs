//! Gaussian blur built on separable convolution.

use crate::filter::{convolve_separable_with_scratch, ConvScratch, Kernel1D};
use crate::{Image, ImagingError};

thread_local! {
    /// Reused convolution buffers — `gaussian_blur` sits inside dataset
    /// generation and anti-aliased resize loops, so the intermediate must
    /// not be reallocated per call.
    static BLUR_SCRATCH: std::cell::RefCell<ConvScratch> =
        std::cell::RefCell::new(ConvScratch::new());
}

/// Builds a normalised 1-D Gaussian kernel of standard deviation `sigma`.
///
/// The radius defaults to `ceil(3 sigma)` (covering > 99.7% of the mass)
/// unless an explicit `radius` is given.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `sigma` is not a positive
/// finite number.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::filter::gaussian_kernel;
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let k = gaussian_kernel(1.5, None)?;
/// assert_eq!(k.len(), 2 * 5 + 1); // radius ceil(4.5) = 5
/// assert!((k.sum() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn gaussian_kernel(sigma: f64, radius: Option<usize>) -> Result<Kernel1D, ImagingError> {
    if !(sigma > 0.0 && sigma.is_finite()) {
        return Err(ImagingError::InvalidParameter {
            message: format!("gaussian sigma must be positive and finite, got {sigma}"),
        });
    }
    let r = radius.unwrap_or_else(|| (3.0 * sigma).ceil() as usize);
    let r = r.max(1);
    let mut weights: Vec<f64> = (-(r as isize)..=(r as isize))
        .map(|i| {
            let x = i as f64;
            (-x * x / (2.0 * sigma * sigma)).exp()
        })
        .collect();
    let sum: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= sum;
    }
    Kernel1D::centered(weights)
}

/// Blurs an image with an isotropic Gaussian of standard deviation `sigma`.
///
/// Runs on the flat scratch-reusing convolution (bit-identical to
/// [`crate::filter::convolve_separable`] with the same kernel).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `sigma` is not a positive
/// finite number.
pub fn gaussian_blur(img: &Image, sigma: f64) -> Result<Image, ImagingError> {
    let k = gaussian_kernel(sigma, None)?;
    BLUR_SCRATCH
        .with(|scratch| convolve_separable_with_scratch(img, &k, &k, &mut scratch.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    #[test]
    fn rejects_bad_sigma() {
        assert!(gaussian_kernel(0.0, None).is_err());
        assert!(gaussian_kernel(-1.0, None).is_err());
        assert!(gaussian_kernel(f64::NAN, None).is_err());
        assert!(gaussian_kernel(f64::INFINITY, None).is_err());
    }

    #[test]
    fn kernel_is_normalised_and_symmetric() {
        let k = gaussian_kernel(2.0, None).unwrap();
        assert!((k.sum() - 1.0).abs() < 1e-12);
        let w = k.weights();
        for i in 0..w.len() / 2 {
            assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_radius_controls_length() {
        let k = gaussian_kernel(1.0, Some(2)).unwrap();
        assert_eq!(k.len(), 5);
    }

    #[test]
    fn peak_is_at_center() {
        let k = gaussian_kernel(1.0, None).unwrap();
        let w = k.weights();
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(w[k.anchor()], max);
    }

    #[test]
    fn blur_preserves_mean_of_constant_image() {
        let img = Image::filled(8, 8, Channels::Gray, 123.0);
        let out = gaussian_blur(&img, 1.5).unwrap();
        assert!(out.approx_eq(&img, 1e-9));
    }

    #[test]
    fn blur_reduces_variance() {
        let img = Image::from_fn_gray(16, 16, |x, y| if (x + y) % 2 == 0 { 0.0 } else { 255.0 });
        let out = gaussian_blur(&img, 1.0).unwrap();
        let var = |im: &Image| {
            let m = im.mean_sample();
            im.plane(0).iter().map(|v| (v - m) * (v - m)).sum::<f64>() / im.plane_len() as f64
        };
        assert!(var(&out) < var(&img) * 0.2, "variance not reduced enough");
    }
}
