use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImagingError {
    /// An image dimension was zero or otherwise unusable.
    InvalidDimensions {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// The sample buffer length does not match `width * height * channels`.
    BufferSizeMismatch {
        /// Expected number of samples.
        expected: usize,
        /// Actual number of samples supplied.
        actual: usize,
    },
    /// Two images that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand image as `(width, height, channels)`.
        left: (usize, usize, usize),
        /// Shape of the right-hand image as `(width, height, channels)`.
        right: (usize, usize, usize),
    },
    /// An operation required a specific channel layout.
    ChannelMismatch {
        /// What the operation expected, e.g. `"grayscale"`.
        expected: &'static str,
    },
    /// A filter or kernel parameter was invalid (zero-sized window, even
    /// window where odd is required, …).
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        message: String,
    },
    /// A codec failed to parse its input.
    Decode {
        /// Human-readable description of the parse failure.
        message: String,
    },
    /// The input is a recognised format (or feature of one) that this
    /// crate deliberately does not decode — e.g. 16-bit PNG, progressive
    /// JPEG, or bytes whose magic matches no codec at all. Distinct from
    /// [`ImagingError::Decode`] so callers can surface "we don't speak
    /// this" (HTTP 422 `unsupported-format`) separately from "this file
    /// is broken".
    Unsupported {
        /// Human-readable description of the unsupported input.
        message: String,
    },
    /// An underlying I/O operation failed.
    Io(std::io::Error),
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            Self::BufferSizeMismatch { expected, actual } => {
                write!(f, "sample buffer holds {actual} values but {expected} were expected")
            }
            Self::ShapeMismatch { left, right } => write!(
                f,
                "image shapes differ: {}x{}x{} vs {}x{}x{}",
                left.0, left.1, left.2, right.0, right.1, right.2
            ),
            Self::ChannelMismatch { expected } => {
                write!(f, "operation requires a {expected} image")
            }
            Self::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            Self::Decode { message } => write!(f, "decode error: {message}"),
            Self::Unsupported { message } => write!(f, "unsupported format: {message}"),
            Self::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ImagingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImagingError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<ImagingError> = vec![
            ImagingError::InvalidDimensions { width: 0, height: 3 },
            ImagingError::BufferSizeMismatch { expected: 4, actual: 2 },
            ImagingError::ShapeMismatch { left: (1, 2, 1), right: (2, 1, 3) },
            ImagingError::ChannelMismatch { expected: "grayscale" },
            ImagingError::InvalidParameter { message: "window size 0".into() },
            ImagingError::Decode { message: "bad magic".into() },
            ImagingError::Unsupported { message: "16-bit png".into() },
            ImagingError::Io(std::io::Error::new(std::io::ErrorKind::Other, "boom")),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn io_error_source_is_preserved() {
        let err = ImagingError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn non_io_variants_have_no_source() {
        let err = ImagingError::ChannelMismatch { expected: "grayscale" };
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImagingError>();
    }
}
