use crate::{ImagingError, Rect, Size};
use std::borrow::Cow;

/// Channel layout of an [`Image`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channels {
    /// Single luminance channel.
    Gray,
    /// Red, green, blue — three separate planes.
    Rgb,
}

impl Channels {
    /// Number of samples per pixel (= number of planes).
    pub const fn count(&self) -> usize {
        match self {
            Channels::Gray => 1,
            Channels::Rgb => 3,
        }
    }
}

/// An owned raster image with `f64` samples in **planar** storage: one
/// contiguous row-major `width * height` buffer per channel.
///
/// Samples follow the 8-bit convention: the nominal range is `[0, 255]`,
/// although intermediate computations (attack crafting, filtering) may
/// temporarily step outside it; [`Image::clamped`] restores the invariant.
///
/// Every kernel in the workspace (scaler, separable convolution, rank
/// filters, FFT) walks stride-1 sample rows, so planes are the native
/// layout; the interleaved wire order of the 8-bit codecs only exists at
/// the codec boundary ([`Image::from_u8`] / [`Image::to_u8_vec`] and the
/// explicit [`Image::from_interleaved`] / [`Image::to_interleaved`]
/// converters).
///
/// # Example
///
/// ```
/// use decamouflage_imaging::{Channels, Image};
///
/// let mut img = Image::zeros(4, 3, Channels::Gray);
/// img.set(1, 2, 0, 128.0);
/// assert_eq!(img.get(1, 2, 0), 128.0);
/// assert_eq!(img.plane(0)[2 * 4 + 1], 128.0);
/// assert_eq!(img.size().area(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    channels: Channels,
    planes: Vec<Vec<f64>>,
}

impl Image {
    /// Creates an image filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero; use [`Image::try_new`] for a
    /// fallible variant.
    pub fn zeros(width: usize, height: usize, channels: Channels) -> Self {
        Self::try_new(width, height, channels).expect("image dimensions must be non-zero")
    }

    /// Creates an image filled with zeros, or an error for empty dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] if either dimension is 0.
    pub fn try_new(width: usize, height: usize, channels: Channels) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 {
            return Err(ImagingError::InvalidDimensions { width, height });
        }
        let planes = (0..channels.count()).map(|_| vec![0.0; width * height]).collect();
        Ok(Self { width, height, channels, planes })
    }

    /// Creates an image filled with a constant value.
    pub fn filled(width: usize, height: usize, channels: Channels, value: f64) -> Self {
        let mut img = Self::zeros(width, height, channels);
        for plane in img.planes.iter_mut() {
            plane.fill(value);
        }
        img
    }

    /// Wraps per-channel plane buffers (row-major, `width * height` each).
    ///
    /// This is the zero-copy constructor: the vectors become the image's
    /// planes, so pooled buffers keep their allocations.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] for empty dimensions,
    /// [`ImagingError::ChannelMismatch`] if the number of planes does not
    /// match `channels`, and [`ImagingError::BufferSizeMismatch`] if any
    /// plane's length differs from `width * height`.
    pub fn from_planes(
        width: usize,
        height: usize,
        channels: Channels,
        planes: Vec<Vec<f64>>,
    ) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 {
            return Err(ImagingError::InvalidDimensions { width, height });
        }
        if planes.len() != channels.count() {
            return Err(ImagingError::ChannelMismatch { expected: "one plane per channel" });
        }
        let expected = width * height;
        for plane in planes.iter() {
            if plane.len() != expected {
                return Err(ImagingError::BufferSizeMismatch { expected, actual: plane.len() });
            }
        }
        Ok(Self { width, height, channels, planes })
    }

    /// Wraps a single plane as a grayscale image (zero-copy).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Image::from_planes`].
    pub fn from_gray_plane(
        width: usize,
        height: usize,
        plane: Vec<f64>,
    ) -> Result<Self, ImagingError> {
        Self::from_planes(width, height, Channels::Gray, vec![plane])
    }

    /// Converts a row-major channel-interleaved sample buffer (the 8-bit
    /// codec wire order: `r0 g0 b0 r1 g1 b1 …`) into planes. Grayscale
    /// input is zero-copy.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] for empty dimensions and
    /// [`ImagingError::BufferSizeMismatch`] if `data.len()` differs from
    /// `width * height * channels.count()`.
    pub fn from_interleaved(
        width: usize,
        height: usize,
        channels: Channels,
        data: Vec<f64>,
    ) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 {
            return Err(ImagingError::InvalidDimensions { width, height });
        }
        let expected = width * height * channels.count();
        if data.len() != expected {
            return Err(ImagingError::BufferSizeMismatch { expected, actual: data.len() });
        }
        match channels {
            Channels::Gray => Self::from_gray_plane(width, height, data),
            Channels::Rgb => {
                let n = width * height;
                let mut planes =
                    vec![Vec::with_capacity(n), Vec::with_capacity(n), Vec::with_capacity(n)];
                for px in data.chunks_exact(3) {
                    planes[0].push(px[0]);
                    planes[1].push(px[1]);
                    planes[2].push(px[2]);
                }
                Self::from_planes(width, height, channels, planes)
            }
        }
    }

    /// Gathers the planes back into a row-major channel-interleaved buffer
    /// (the inverse of [`Image::from_interleaved`]).
    pub fn to_interleaved(&self) -> Vec<f64> {
        match self.channels {
            Channels::Gray => self.planes[0].clone(),
            Channels::Rgb => {
                let (r, g, b) = (&self.planes[0], &self.planes[1], &self.planes[2]);
                let mut out = Vec::with_capacity(r.len() * 3);
                for i in 0..r.len() {
                    out.push(r[i]);
                    out.push(g[i]);
                    out.push(b[i]);
                }
                out
            }
        }
    }

    /// Builds a grayscale image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn_gray(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut img = Self::zeros(width, height, Channels::Gray);
        for y in 0..height {
            for x in 0..width {
                let v = f(x, y);
                img.planes[0][y * width + x] = v;
            }
        }
        img
    }

    /// Builds an RGB image by evaluating `f(x, y) -> [r, g, b]` at every pixel.
    pub fn from_fn_rgb(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [f64; 3],
    ) -> Self {
        let mut img = Self::zeros(width, height, Channels::Rgb);
        for y in 0..height {
            for x in 0..width {
                let [r, g, b] = f(x, y);
                let i = y * width + x;
                img.planes[0][i] = r;
                img.planes[1][i] = g;
                img.planes[2][i] = b;
            }
        }
        img
    }

    /// Converts an 8-bit channel-interleaved sample buffer into an image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Image::from_interleaved`].
    pub fn from_u8(
        width: usize,
        height: usize,
        channels: Channels,
        data: &[u8],
    ) -> Result<Self, ImagingError> {
        Self::from_interleaved(
            width,
            height,
            channels,
            data.iter().map(|&b| f64::from(b)).collect(),
        )
    }

    /// Width in pixels.
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Channel layout.
    pub const fn channels(&self) -> Channels {
        self.channels
    }

    /// Number of samples per pixel (1 or 3).
    pub const fn channel_count(&self) -> usize {
        self.channels.count()
    }

    /// Size in pixels.
    pub const fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// Shape as `(width, height, channels)`.
    pub const fn shape(&self) -> (usize, usize, usize) {
        (self.width, self.height, self.channels.count())
    }

    /// Number of samples in one plane (`width * height`).
    pub const fn plane_len(&self) -> usize {
        self.width * self.height
    }

    /// Borrows channel `c` as a contiguous row-major plane.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for the channel layout.
    #[inline]
    pub fn plane(&self, c: usize) -> &[f64] {
        &self.planes[c]
    }

    /// Mutably borrows channel `c` as a contiguous row-major plane.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for the channel layout.
    #[inline]
    pub fn plane_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.planes[c]
    }

    /// Borrows all planes in channel order.
    #[inline]
    pub fn planes(&self) -> &[Vec<f64>] {
        &self.planes
    }

    /// Consumes the image and returns its plane buffers (for recycling
    /// into a pool).
    pub fn into_planes(self) -> Vec<Vec<f64>> {
        self.planes
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Sample at `(x, y)` in channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates or channel are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize, c: usize) -> f64 {
        self.planes[c][self.index(x, y)]
    }

    /// Writes a sample at `(x, y)` in channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates or channel are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: usize, value: f64) {
        let i = self.index(x, y);
        self.planes[c][i] = value;
    }

    /// Sample at `(x, y)` with coordinates clamped into bounds (border
    /// replication). Useful for filters near the edges.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize, c: usize) -> f64 {
        let xi = x.clamp(0, self.width as isize - 1) as usize;
        let yi = y.clamp(0, self.height as isize - 1) as usize;
        self.get(xi, yi, c)
    }

    /// Extracts one channel as a grayscale image (copying the plane).
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] if `c` is out of range.
    pub fn channel_image(&self, c: usize) -> Result<Image, ImagingError> {
        if c >= self.channel_count() {
            return Err(ImagingError::InvalidParameter {
                message: format!("channel {c} out of range for {:?}", self.channels),
            });
        }
        Self::from_gray_plane(self.width, self.height, self.planes[c].clone())
    }

    /// The luminance plane, borrow-free where possible: a `Gray` image
    /// lends its only plane; an RGB image runs one fused ITU-R BT.601
    /// pass (`0.299 r + 0.587 g + 0.114 b`).
    pub fn luma(&self) -> Cow<'_, [f64]> {
        match self.channels {
            Channels::Gray => Cow::Borrowed(self.planes[0].as_slice()),
            Channels::Rgb => {
                let (r, g, b) = (&self.planes[0], &self.planes[1], &self.planes[2]);
                let mut out = Vec::with_capacity(r.len());
                for i in 0..r.len() {
                    out.push(0.299 * r[i] + 0.587 * g[i] + 0.114 * b[i]);
                }
                Cow::Owned(out)
            }
        }
    }

    /// Converts to grayscale using the ITU-R BT.601 luma weights. A grayscale
    /// input is returned unchanged (cloned); prefer [`Image::luma`] when a
    /// borrowed plane suffices.
    pub fn to_gray(&self) -> Image {
        match self.channels {
            Channels::Gray => self.clone(),
            Channels::Rgb => {
                Self::from_gray_plane(self.width, self.height, self.luma().into_owned())
                    .expect("luma plane has matching length")
            }
        }
    }

    /// Expands a grayscale image to RGB by replicating the channel. An RGB
    /// input is returned unchanged (cloned).
    pub fn to_rgb(&self) -> Image {
        match self.channels {
            Channels::Rgb => self.clone(),
            Channels::Gray => {
                let p = &self.planes[0];
                Self::from_planes(
                    self.width,
                    self.height,
                    Channels::Rgb,
                    vec![p.clone(), p.clone(), p.clone()],
                )
                .expect("replicated planes have matching length")
            }
        }
    }

    /// Returns a copy with every sample transformed by `f`.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Image {
        let mut out = self.clone();
        for plane in out.planes.iter_mut() {
            for v in plane.iter_mut() {
                *v = f(*v);
            }
        }
        out
    }

    /// Combines two images of identical shape sample-by-sample.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::ShapeMismatch`] when the shapes differ.
    pub fn zip_map(
        &self,
        other: &Image,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Image, ImagingError> {
        if self.shape() != other.shape() {
            return Err(ImagingError::ShapeMismatch { left: self.shape(), right: other.shape() });
        }
        let mut out = self.clone();
        for (plane, oplane) in out.planes.iter_mut().zip(other.planes.iter()) {
            for (v, &o) in plane.iter_mut().zip(oplane.iter()) {
                *v = f(*v, o);
            }
        }
        Ok(out)
    }

    /// Returns a copy with all samples clamped to `[0, 255]`.
    pub fn clamped(&self) -> Image {
        self.map(|v| v.clamp(0.0, 255.0))
    }

    /// Returns a copy with all samples rounded to the nearest integer and
    /// clamped to `[0, 255]`, i.e. quantised to the 8-bit grid.
    pub fn quantized(&self) -> Image {
        self.map(|v| v.round().clamp(0.0, 255.0))
    }

    /// Converts the image to an 8-bit channel-interleaved buffer (round +
    /// clamp) — the codec wire order.
    pub fn to_u8_vec(&self) -> Vec<u8> {
        let quantize = |v: f64| v.round().clamp(0.0, 255.0) as u8;
        match self.channels {
            Channels::Gray => self.planes[0].iter().map(|&v| quantize(v)).collect(),
            Channels::Rgb => {
                let (r, g, b) = (&self.planes[0], &self.planes[1], &self.planes[2]);
                let mut out = Vec::with_capacity(r.len() * 3);
                for i in 0..r.len() {
                    out.push(quantize(r[i]));
                    out.push(quantize(g[i]));
                    out.push(quantize(b[i]));
                }
                out
            }
        }
    }

    /// Crops a rectangular region.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] when the rectangle does not
    /// fit inside the image.
    pub fn crop(&self, rect: Rect) -> Result<Image, ImagingError> {
        if rect.area() == 0 || rect.right() > self.width || rect.bottom() > self.height {
            return Err(ImagingError::InvalidParameter {
                message: format!("crop {rect} outside image {}", self.size()),
            });
        }
        let mut out = Image::zeros(rect.width, rect.height, self.channels);
        for (src, dst) in self.planes.iter().zip(out.planes.iter_mut()) {
            for y in 0..rect.height {
                let src_row = (rect.y + y) * self.width + rect.x;
                dst[y * rect.width..(y + 1) * rect.width]
                    .copy_from_slice(&src[src_row..src_row + rect.width]);
            }
        }
        Ok(out)
    }

    /// Smallest sample value in the image.
    pub fn min_sample(&self) -> f64 {
        self.planes.iter().flat_map(|p| p.iter().copied()).fold(f64::INFINITY, f64::min)
    }

    /// Largest sample value in the image.
    pub fn max_sample(&self) -> f64 {
        self.planes.iter().flat_map(|p| p.iter().copied()).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of all samples. The accumulation runs pixel-major across
    /// channels (`r0 + g0 + b0 + r1 + …`), matching the historical
    /// interleaved order bit-for-bit.
    pub fn mean_sample(&self) -> f64 {
        let n = self.plane_len();
        let sum = match self.channels {
            Channels::Gray => self.planes[0].iter().sum::<f64>(),
            Channels::Rgb => {
                let (r, g, b) = (&self.planes[0], &self.planes[1], &self.planes[2]);
                let mut acc = 0.0;
                for i in 0..n {
                    acc += r[i];
                    acc += g[i];
                    acc += b[i];
                }
                acc
            }
        };
        sum / (n * self.channel_count()) as f64
    }

    /// Whether every sample of `self` is within `tol` of the corresponding
    /// sample of `other`. Images of different shapes are never approximately
    /// equal.
    pub fn approx_eq(&self, other: &Image, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .planes
                .iter()
                .zip(other.planes.iter())
                .all(|(a, b)| a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_accessors() {
        let img = Image::zeros(5, 4, Channels::Rgb);
        assert_eq!(img.width(), 5);
        assert_eq!(img.height(), 4);
        assert_eq!(img.channel_count(), 3);
        assert_eq!(img.planes().len(), 3);
        assert_eq!(img.plane(0).len(), 20);
        assert_eq!(img.plane_len(), 20);
        assert_eq!(img.shape(), (5, 4, 3));
    }

    #[test]
    fn try_new_rejects_empty() {
        assert!(Image::try_new(0, 4, Channels::Gray).is_err());
        assert!(Image::try_new(4, 0, Channels::Gray).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zeros_panics_on_empty() {
        let _ = Image::zeros(0, 1, Channels::Gray);
    }

    #[test]
    fn from_planes_checks_shape() {
        assert!(Image::from_gray_plane(2, 2, vec![0.0; 4]).is_ok());
        assert!(matches!(
            Image::from_gray_plane(2, 2, vec![0.0; 5]),
            Err(ImagingError::BufferSizeMismatch { expected: 4, actual: 5 })
        ));
        assert!(Image::from_planes(2, 2, Channels::Rgb, vec![vec![0.0; 4]; 3]).is_ok());
        assert!(matches!(
            Image::from_planes(2, 2, Channels::Rgb, vec![vec![0.0; 4]; 2]),
            Err(ImagingError::ChannelMismatch { .. })
        ));
    }

    #[test]
    fn interleaved_roundtrip_is_exact() {
        let data: Vec<f64> = (0..24).map(|i| i as f64 * 0.5 - 3.0).collect();
        let img = Image::from_interleaved(4, 2, Channels::Rgb, data.clone()).unwrap();
        assert_eq!(img.to_interleaved(), data);
        assert_eq!(img.plane(0), &[0.0, 1.5, 3.0, 4.5, 6.0, 7.5, 9.0, 10.5].map(|v| v - 3.0));
        let gray: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let gimg = Image::from_interleaved(3, 2, Channels::Gray, gray.clone()).unwrap();
        assert_eq!(gimg.to_interleaved(), gray);
        assert_eq!(gimg.plane(0), gray.as_slice());
    }

    #[test]
    fn from_interleaved_checks_length() {
        assert!(Image::from_interleaved(2, 2, Channels::Gray, vec![0.0; 4]).is_ok());
        assert!(matches!(
            Image::from_interleaved(2, 2, Channels::Gray, vec![0.0; 5]),
            Err(ImagingError::BufferSizeMismatch { expected: 4, actual: 5 })
        ));
        assert!(Image::from_interleaved(2, 2, Channels::Rgb, vec![0.0; 12]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::zeros(3, 3, Channels::Rgb);
        img.set(2, 1, 2, 42.5);
        assert_eq!(img.get(2, 1, 2), 42.5);
        assert_eq!(img.get(2, 1, 0), 0.0);
        assert_eq!(img.plane(2)[1 * 3 + 2], 42.5);
    }

    #[test]
    fn from_fn_gray_plane_is_row_major() {
        let img = Image::from_fn_gray(3, 2, |x, y| (10 * y + x) as f64);
        assert_eq!(img.plane(0), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_fn_rgb_fills_separate_planes() {
        let img = Image::from_fn_rgb(2, 1, |x, _| [x as f64, 10.0, 20.0]);
        assert_eq!(img.plane(0), &[0.0, 1.0]);
        assert_eq!(img.plane(1), &[10.0, 10.0]);
        assert_eq!(img.plane(2), &[20.0, 20.0]);
        assert_eq!(img.to_interleaved(), vec![0.0, 10.0, 20.0, 1.0, 10.0, 20.0]);
    }

    #[test]
    fn get_clamped_replicates_border() {
        let img = Image::from_fn_gray(2, 2, |x, y| (y * 2 + x) as f64);
        assert_eq!(img.get_clamped(-5, 0, 0), 0.0);
        assert_eq!(img.get_clamped(7, 1, 0), 3.0);
        assert_eq!(img.get_clamped(0, -1, 0), 0.0);
        assert_eq!(img.get_clamped(1, 9, 0), 3.0);
    }

    #[test]
    fn channel_image_and_planes_roundtrip() {
        let img =
            Image::from_fn_rgb(3, 2, |x, y| [(x + y) as f64, (x * y) as f64, (x + 2 * y) as f64]);
        let planes: Vec<Vec<f64>> = (0..3).map(|c| img.plane(c).to_vec()).collect();
        let back = Image::from_planes(3, 2, Channels::Rgb, planes).unwrap();
        assert_eq!(back, img);
        let red = img.channel_image(0).unwrap();
        assert_eq!(red.channels(), Channels::Gray);
        assert_eq!(red.plane(0), img.plane(0));
    }

    #[test]
    fn channel_image_rejects_bad_channel() {
        let img = Image::zeros(2, 2, Channels::Gray);
        assert!(img.channel_image(1).is_err());
    }

    #[test]
    fn to_gray_uses_bt601_weights() {
        let img = Image::from_fn_rgb(1, 1, |_, _| [255.0, 0.0, 0.0]);
        let gray = img.to_gray();
        assert!((gray.get(0, 0, 0) - 0.299 * 255.0).abs() < 1e-9);
    }

    #[test]
    fn to_gray_of_gray_is_identity() {
        let img = Image::from_fn_gray(2, 2, |x, _| x as f64);
        assert_eq!(img.to_gray(), img);
    }

    #[test]
    fn luma_borrows_gray_and_computes_rgb() {
        let gray = Image::from_fn_gray(3, 2, |x, y| (x + y) as f64);
        match gray.luma() {
            Cow::Borrowed(p) => assert_eq!(p, gray.plane(0)),
            Cow::Owned(_) => panic!("gray luma must borrow, not copy"),
        }
        let rgb = Image::from_fn_rgb(2, 2, |x, y| [x as f64, y as f64, (x * y) as f64]);
        let luma = rgb.luma();
        assert!(matches!(luma, Cow::Owned(_)));
        assert_eq!(luma.as_ref(), rgb.to_gray().plane(0));
    }

    #[test]
    fn to_rgb_replicates_channel() {
        let img = Image::from_fn_gray(1, 1, |_, _| 7.0);
        let rgb = img.to_rgb();
        assert_eq!(rgb.to_interleaved(), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Image::from_fn_gray(2, 2, |x, y| (x + y) as f64);
        let doubled = a.map(|v| v * 2.0);
        assert_eq!(doubled.get(1, 1, 0), 4.0);
        let sum = a.zip_map(&doubled, |u, v| u + v).unwrap();
        assert_eq!(sum.get(1, 1, 0), 6.0);
    }

    #[test]
    fn zip_map_rejects_shape_mismatch() {
        let a = Image::zeros(2, 2, Channels::Gray);
        let b = Image::zeros(3, 2, Channels::Gray);
        assert!(a.zip_map(&b, |u, _| u).is_err());
        let c = Image::zeros(2, 2, Channels::Rgb);
        assert!(a.zip_map(&c, |u, _| u).is_err());
    }

    #[test]
    fn clamp_and_quantize() {
        let img = Image::from_gray_plane(2, 1, vec![-4.0, 260.7]).unwrap();
        assert_eq!(img.clamped().plane(0), &[0.0, 255.0]);
        let q = Image::from_gray_plane(2, 1, vec![10.4, 10.6]).unwrap().quantized();
        assert_eq!(q.plane(0), &[10.0, 11.0]);
    }

    #[test]
    fn u8_roundtrip() {
        let bytes: Vec<u8> = (0..12).collect();
        let img = Image::from_u8(2, 2, Channels::Rgb, &bytes).unwrap();
        assert_eq!(img.to_u8_vec(), bytes);
    }

    #[test]
    fn crop_extracts_region() {
        let img = Image::from_fn_gray(4, 4, |x, y| (y * 4 + x) as f64);
        let c = img.crop(Rect::new(1, 2, 2, 2)).unwrap();
        assert_eq!(c.plane(0), &[9.0, 10.0, 13.0, 14.0]);
        assert!(img.crop(Rect::new(3, 3, 2, 2)).is_err());
        assert!(img.crop(Rect::new(0, 0, 0, 2)).is_err());
    }

    #[test]
    fn crop_rgb_keeps_planes_aligned() {
        let img = Image::from_fn_rgb(4, 3, |x, y| [x as f64, y as f64, (x + y) as f64]);
        let c = img.crop(Rect::new(1, 1, 2, 2)).unwrap();
        assert_eq!(c.plane(0), &[1.0, 2.0, 1.0, 2.0]);
        assert_eq!(c.plane(1), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.plane(2), &[2.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn sample_statistics() {
        let img = Image::from_gray_plane(3, 1, vec![1.0, 5.0, 3.0]).unwrap();
        assert_eq!(img.min_sample(), 1.0);
        assert_eq!(img.max_sample(), 5.0);
        assert_eq!(img.mean_sample(), 3.0);
        let rgb = Image::from_fn_rgb(2, 1, |x, _| [x as f64, 10.0, 20.0]);
        assert_eq!(rgb.min_sample(), 0.0);
        assert_eq!(rgb.max_sample(), 20.0);
        assert_eq!(rgb.mean_sample(), (0.0 + 10.0 + 20.0 + 1.0 + 10.0 + 20.0) / 6.0);
    }

    #[test]
    fn approx_eq_tolerance_and_shape() {
        let a = Image::filled(2, 2, Channels::Gray, 1.0);
        let b = Image::filled(2, 2, Channels::Gray, 1.05);
        assert!(a.approx_eq(&b, 0.1));
        assert!(!a.approx_eq(&b, 0.01));
        let c = Image::filled(2, 3, Channels::Gray, 1.0);
        assert!(!a.approx_eq(&c, 10.0));
    }

    #[test]
    fn into_planes_returns_buffers() {
        let img = Image::filled(2, 1, Channels::Gray, 9.0);
        assert_eq!(img.into_planes(), vec![vec![9.0, 9.0]]);
        let rgb = Image::filled(2, 1, Channels::Rgb, 3.0);
        let planes = rgb.into_planes();
        assert_eq!(planes.len(), 3);
        assert!(planes.iter().all(|p| p == &vec![3.0, 3.0]));
    }
}
