use crate::{ImagingError, Rect, Size};

/// Channel layout of an [`Image`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channels {
    /// Single luminance channel.
    Gray,
    /// Interleaved red, green, blue.
    Rgb,
}

impl Channels {
    /// Number of samples per pixel.
    pub const fn count(&self) -> usize {
        match self {
            Channels::Gray => 1,
            Channels::Rgb => 3,
        }
    }
}

/// An owned raster image with `f64` samples.
///
/// Samples follow the 8-bit convention: the nominal range is `[0, 255]`,
/// although intermediate computations (attack crafting, filtering) may
/// temporarily step outside it; [`Image::clamped`] restores the invariant.
/// Data is stored row-major with interleaved channels.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::{Channels, Image};
///
/// let mut img = Image::zeros(4, 3, Channels::Gray);
/// img.set(1, 2, 0, 128.0);
/// assert_eq!(img.get(1, 2, 0), 128.0);
/// assert_eq!(img.size().area(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    channels: Channels,
    data: Vec<f64>,
}

impl Image {
    /// Creates an image filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero; use [`Image::try_new`] for a
    /// fallible variant.
    pub fn zeros(width: usize, height: usize, channels: Channels) -> Self {
        Self::try_new(width, height, channels).expect("image dimensions must be non-zero")
    }

    /// Creates an image filled with zeros, or an error for empty dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] if either dimension is 0.
    pub fn try_new(width: usize, height: usize, channels: Channels) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 {
            return Err(ImagingError::InvalidDimensions { width, height });
        }
        Ok(Self { width, height, channels, data: vec![0.0; width * height * channels.count()] })
    }

    /// Creates an image filled with a constant value.
    pub fn filled(width: usize, height: usize, channels: Channels, value: f64) -> Self {
        let mut img = Self::zeros(width, height, channels);
        img.data.fill(value);
        img
    }

    /// Wraps an existing sample buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] for empty dimensions and
    /// [`ImagingError::BufferSizeMismatch`] if `data.len()` differs from
    /// `width * height * channels.count()`.
    pub fn from_vec(
        width: usize,
        height: usize,
        channels: Channels,
        data: Vec<f64>,
    ) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 {
            return Err(ImagingError::InvalidDimensions { width, height });
        }
        let expected = width * height * channels.count();
        if data.len() != expected {
            return Err(ImagingError::BufferSizeMismatch { expected, actual: data.len() });
        }
        Ok(Self { width, height, channels, data })
    }

    /// Builds a grayscale image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn_gray(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut img = Self::zeros(width, height, Channels::Gray);
        for y in 0..height {
            for x in 0..width {
                let v = f(x, y);
                img.data[y * width + x] = v;
            }
        }
        img
    }

    /// Builds an RGB image by evaluating `f(x, y) -> [r, g, b]` at every pixel.
    pub fn from_fn_rgb(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [f64; 3],
    ) -> Self {
        let mut img = Self::zeros(width, height, Channels::Rgb);
        for y in 0..height {
            for x in 0..width {
                let [r, g, b] = f(x, y);
                let base = (y * width + x) * 3;
                img.data[base] = r;
                img.data[base + 1] = g;
                img.data[base + 2] = b;
            }
        }
        img
    }

    /// Converts an 8-bit sample buffer into an image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Image::from_vec`].
    pub fn from_u8(
        width: usize,
        height: usize,
        channels: Channels,
        data: &[u8],
    ) -> Result<Self, ImagingError> {
        Self::from_vec(width, height, channels, data.iter().map(|&b| f64::from(b)).collect())
    }

    /// Width in pixels.
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Channel layout.
    pub const fn channels(&self) -> Channels {
        self.channels
    }

    /// Number of samples per pixel (1 or 3).
    pub const fn channel_count(&self) -> usize {
        self.channels.count()
    }

    /// Size in pixels.
    pub const fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// Shape as `(width, height, channels)`.
    pub const fn shape(&self) -> (usize, usize, usize) {
        (self.width, self.height, self.channels.count())
    }

    /// Borrows the raw sample buffer (row-major, interleaved).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the raw sample buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the image and returns the sample buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    #[inline]
    fn index(&self, x: usize, y: usize, c: usize) -> usize {
        debug_assert!(x < self.width && y < self.height && c < self.channel_count());
        (y * self.width + x) * self.channel_count() + c
    }

    /// Sample at `(x, y)` in channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates or channel are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize, c: usize) -> f64 {
        self.data[self.index(x, y, c)]
    }

    /// Writes a sample at `(x, y)` in channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates or channel are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: usize, value: f64) {
        let i = self.index(x, y, c);
        self.data[i] = value;
    }

    /// Sample at `(x, y)` with coordinates clamped into bounds (border
    /// replication). Useful for filters near the edges.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize, c: usize) -> f64 {
        let xi = x.clamp(0, self.width as isize - 1) as usize;
        let yi = y.clamp(0, self.height as isize - 1) as usize;
        self.get(xi, yi, c)
    }

    /// Extracts one channel as a grayscale image.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] if `c` is out of range.
    pub fn plane(&self, c: usize) -> Result<Image, ImagingError> {
        if c >= self.channel_count() {
            return Err(ImagingError::InvalidParameter {
                message: format!("channel {c} out of range for {:?}", self.channels),
            });
        }
        let mut out = Image::zeros(self.width, self.height, Channels::Gray);
        for y in 0..self.height {
            for x in 0..self.width {
                out.set(x, y, 0, self.get(x, y, c));
            }
        }
        Ok(out)
    }

    /// Reassembles an RGB image from three grayscale planes.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::ShapeMismatch`] if the planes disagree in
    /// shape and [`ImagingError::ChannelMismatch`] if any plane is not
    /// grayscale.
    pub fn from_planes(planes: &[Image; 3]) -> Result<Image, ImagingError> {
        for p in planes.iter() {
            if p.channels != Channels::Gray {
                return Err(ImagingError::ChannelMismatch { expected: "grayscale" });
            }
            if p.shape() != planes[0].shape() {
                return Err(ImagingError::ShapeMismatch {
                    left: planes[0].shape(),
                    right: p.shape(),
                });
            }
        }
        let (w, h) = (planes[0].width, planes[0].height);
        let mut out = Image::zeros(w, h, Channels::Rgb);
        for y in 0..h {
            for x in 0..w {
                for (c, plane) in planes.iter().enumerate() {
                    out.set(x, y, c, plane.get(x, y, 0));
                }
            }
        }
        Ok(out)
    }

    /// Converts to grayscale using the ITU-R BT.601 luma weights. A grayscale
    /// input is returned unchanged (cloned).
    pub fn to_gray(&self) -> Image {
        match self.channels {
            Channels::Gray => self.clone(),
            Channels::Rgb => Image::from_fn_gray(self.width, self.height, |x, y| {
                0.299 * self.get(x, y, 0) + 0.587 * self.get(x, y, 1) + 0.114 * self.get(x, y, 2)
            }),
        }
    }

    /// Expands a grayscale image to RGB by replicating the channel. An RGB
    /// input is returned unchanged (cloned).
    pub fn to_rgb(&self) -> Image {
        match self.channels {
            Channels::Rgb => self.clone(),
            Channels::Gray => Image::from_fn_rgb(self.width, self.height, |x, y| {
                let v = self.get(x, y, 0);
                [v, v, v]
            }),
        }
    }

    /// Returns a copy with every sample transformed by `f`.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Image {
        let mut out = self.clone();
        for v in out.data.iter_mut() {
            *v = f(*v);
        }
        out
    }

    /// Combines two images of identical shape sample-by-sample.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::ShapeMismatch`] when the shapes differ.
    pub fn zip_map(
        &self,
        other: &Image,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Image, ImagingError> {
        if self.shape() != other.shape() {
            return Err(ImagingError::ShapeMismatch { left: self.shape(), right: other.shape() });
        }
        let mut out = self.clone();
        for (v, &o) in out.data.iter_mut().zip(other.data.iter()) {
            *v = f(*v, o);
        }
        Ok(out)
    }

    /// Returns a copy with all samples clamped to `[0, 255]`.
    pub fn clamped(&self) -> Image {
        self.map(|v| v.clamp(0.0, 255.0))
    }

    /// Returns a copy with all samples rounded to the nearest integer and
    /// clamped to `[0, 255]`, i.e. quantised to the 8-bit grid.
    pub fn quantized(&self) -> Image {
        self.map(|v| v.round().clamp(0.0, 255.0))
    }

    /// Converts the image to an 8-bit buffer (round + clamp).
    pub fn to_u8_vec(&self) -> Vec<u8> {
        self.data.iter().map(|&v| v.round().clamp(0.0, 255.0) as u8).collect()
    }

    /// Crops a rectangular region.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidParameter`] when the rectangle does not
    /// fit inside the image.
    pub fn crop(&self, rect: Rect) -> Result<Image, ImagingError> {
        if rect.area() == 0 || rect.right() > self.width || rect.bottom() > self.height {
            return Err(ImagingError::InvalidParameter {
                message: format!("crop {rect} outside image {}", self.size()),
            });
        }
        let mut out = Image::zeros(rect.width, rect.height, self.channels);
        for y in 0..rect.height {
            for x in 0..rect.width {
                for c in 0..self.channel_count() {
                    out.set(x, y, c, self.get(rect.x + x, rect.y + y, c));
                }
            }
        }
        Ok(out)
    }

    /// Smallest sample value in the image.
    pub fn min_sample(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample value in the image.
    pub fn max_sample(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of all samples.
    pub fn mean_sample(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Whether every sample of `self` is within `tol` of the corresponding
    /// sample of `other`. Images of different shapes are never approximately
    /// equal.
    pub fn approx_eq(&self, other: &Image, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(other.data.iter()).all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_accessors() {
        let img = Image::zeros(5, 4, Channels::Rgb);
        assert_eq!(img.width(), 5);
        assert_eq!(img.height(), 4);
        assert_eq!(img.channel_count(), 3);
        assert_eq!(img.as_slice().len(), 60);
        assert_eq!(img.shape(), (5, 4, 3));
    }

    #[test]
    fn try_new_rejects_empty() {
        assert!(Image::try_new(0, 4, Channels::Gray).is_err());
        assert!(Image::try_new(4, 0, Channels::Gray).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zeros_panics_on_empty() {
        let _ = Image::zeros(0, 1, Channels::Gray);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Image::from_vec(2, 2, Channels::Gray, vec![0.0; 4]).is_ok());
        assert!(matches!(
            Image::from_vec(2, 2, Channels::Gray, vec![0.0; 5]),
            Err(ImagingError::BufferSizeMismatch { expected: 4, actual: 5 })
        ));
        assert!(Image::from_vec(2, 2, Channels::Rgb, vec![0.0; 12]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::zeros(3, 3, Channels::Rgb);
        img.set(2, 1, 2, 42.5);
        assert_eq!(img.get(2, 1, 2), 42.5);
        assert_eq!(img.get(2, 1, 0), 0.0);
    }

    #[test]
    fn from_fn_gray_layout_is_row_major() {
        let img = Image::from_fn_gray(3, 2, |x, y| (10 * y + x) as f64);
        assert_eq!(img.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_fn_rgb_interleaves() {
        let img = Image::from_fn_rgb(2, 1, |x, _| [x as f64, 10.0, 20.0]);
        assert_eq!(img.as_slice(), &[0.0, 10.0, 20.0, 1.0, 10.0, 20.0]);
    }

    #[test]
    fn get_clamped_replicates_border() {
        let img = Image::from_fn_gray(2, 2, |x, y| (y * 2 + x) as f64);
        assert_eq!(img.get_clamped(-5, 0, 0), 0.0);
        assert_eq!(img.get_clamped(7, 1, 0), 3.0);
        assert_eq!(img.get_clamped(0, -1, 0), 0.0);
        assert_eq!(img.get_clamped(1, 9, 0), 3.0);
    }

    #[test]
    fn plane_and_from_planes_roundtrip() {
        let img =
            Image::from_fn_rgb(3, 2, |x, y| [(x + y) as f64, (x * y) as f64, (x + 2 * y) as f64]);
        let planes = [img.plane(0).unwrap(), img.plane(1).unwrap(), img.plane(2).unwrap()];
        let back = Image::from_planes(&planes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn plane_rejects_bad_channel() {
        let img = Image::zeros(2, 2, Channels::Gray);
        assert!(img.plane(1).is_err());
    }

    #[test]
    fn from_planes_rejects_rgb_plane() {
        let g = Image::zeros(2, 2, Channels::Gray);
        let rgb = Image::zeros(2, 2, Channels::Rgb);
        assert!(Image::from_planes(&[g.clone(), rgb, g]).is_err());
    }

    #[test]
    fn to_gray_uses_bt601_weights() {
        let img = Image::from_fn_rgb(1, 1, |_, _| [255.0, 0.0, 0.0]);
        let gray = img.to_gray();
        assert!((gray.get(0, 0, 0) - 0.299 * 255.0).abs() < 1e-9);
    }

    #[test]
    fn to_gray_of_gray_is_identity() {
        let img = Image::from_fn_gray(2, 2, |x, _| x as f64);
        assert_eq!(img.to_gray(), img);
    }

    #[test]
    fn to_rgb_replicates_channel() {
        let img = Image::from_fn_gray(1, 1, |_, _| 7.0);
        let rgb = img.to_rgb();
        assert_eq!(rgb.as_slice(), &[7.0, 7.0, 7.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Image::from_fn_gray(2, 2, |x, y| (x + y) as f64);
        let doubled = a.map(|v| v * 2.0);
        assert_eq!(doubled.get(1, 1, 0), 4.0);
        let sum = a.zip_map(&doubled, |u, v| u + v).unwrap();
        assert_eq!(sum.get(1, 1, 0), 6.0);
    }

    #[test]
    fn zip_map_rejects_shape_mismatch() {
        let a = Image::zeros(2, 2, Channels::Gray);
        let b = Image::zeros(3, 2, Channels::Gray);
        assert!(a.zip_map(&b, |u, _| u).is_err());
        let c = Image::zeros(2, 2, Channels::Rgb);
        assert!(a.zip_map(&c, |u, _| u).is_err());
    }

    #[test]
    fn clamp_and_quantize() {
        let img = Image::from_vec(2, 1, Channels::Gray, vec![-4.0, 260.7]).unwrap();
        assert_eq!(img.clamped().as_slice(), &[0.0, 255.0]);
        let q = Image::from_vec(2, 1, Channels::Gray, vec![10.4, 10.6]).unwrap().quantized();
        assert_eq!(q.as_slice(), &[10.0, 11.0]);
    }

    #[test]
    fn u8_roundtrip() {
        let bytes: Vec<u8> = (0..12).collect();
        let img = Image::from_u8(2, 2, Channels::Rgb, &bytes).unwrap();
        assert_eq!(img.to_u8_vec(), bytes);
    }

    #[test]
    fn crop_extracts_region() {
        let img = Image::from_fn_gray(4, 4, |x, y| (y * 4 + x) as f64);
        let c = img.crop(Rect::new(1, 2, 2, 2)).unwrap();
        assert_eq!(c.as_slice(), &[9.0, 10.0, 13.0, 14.0]);
        assert!(img.crop(Rect::new(3, 3, 2, 2)).is_err());
        assert!(img.crop(Rect::new(0, 0, 0, 2)).is_err());
    }

    #[test]
    fn sample_statistics() {
        let img = Image::from_vec(3, 1, Channels::Gray, vec![1.0, 5.0, 3.0]).unwrap();
        assert_eq!(img.min_sample(), 1.0);
        assert_eq!(img.max_sample(), 5.0);
        assert_eq!(img.mean_sample(), 3.0);
    }

    #[test]
    fn approx_eq_tolerance_and_shape() {
        let a = Image::filled(2, 2, Channels::Gray, 1.0);
        let b = Image::filled(2, 2, Channels::Gray, 1.05);
        assert!(a.approx_eq(&b, 0.1));
        assert!(!a.approx_eq(&b, 0.01));
        let c = Image::filled(2, 3, Channels::Gray, 1.0);
        assert!(!a.approx_eq(&c, 10.0));
    }

    #[test]
    fn into_vec_returns_samples() {
        let img = Image::filled(2, 1, Channels::Gray, 9.0);
        assert_eq!(img.into_vec(), vec![9.0, 9.0]);
    }
}
