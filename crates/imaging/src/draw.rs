//! Simple shape rasterisation used by the synthetic dataset generator.
//!
//! All drawing is destructive (in place), channel-aware and silently clips
//! to the image bounds, which is the behaviour the generator needs when it
//! scatters random shapes near the borders.

use crate::{Image, Rect};

/// Per-channel fill colour; grayscale images use only the first component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Color(pub [f64; 3]);

impl Color {
    /// A gray level replicated over all channels.
    pub const fn gray(v: f64) -> Self {
        Self([v, v, v])
    }

    /// An RGB colour.
    pub const fn rgb(r: f64, g: f64, b: f64) -> Self {
        Self([r, g, b])
    }

    /// Component for channel `c`.
    pub fn channel(&self, c: usize) -> f64 {
        self.0[c.min(2)]
    }
}

fn paint(img: &mut Image, x: usize, y: usize, color: Color, alpha: f64) {
    for c in 0..img.channel_count() {
        let old = img.get(x, y, c);
        img.set(x, y, c, old * (1.0 - alpha) + color.channel(c) * alpha);
    }
}

/// Fills an axis-aligned rectangle, blended with opacity `alpha` in `[0, 1]`
/// (1 = opaque). The rectangle is clipped to the image.
pub fn fill_rect(img: &mut Image, rect: Rect, color: Color, alpha: f64) {
    let Some(r) = rect.clamp_to(img.size()) else { return };
    let a = alpha.clamp(0.0, 1.0);
    for y in r.y..r.bottom() {
        for x in r.x..r.right() {
            paint(img, x, y, color, a);
        }
    }
}

/// Fills a disc of radius `radius` centred at `(cx, cy)` (which may lie
/// outside the image), blended with opacity `alpha`.
pub fn fill_circle(img: &mut Image, cx: f64, cy: f64, radius: f64, color: Color, alpha: f64) {
    if radius <= 0.0 {
        return;
    }
    let a = alpha.clamp(0.0, 1.0);
    let x0 = ((cx - radius).floor().max(0.0)) as usize;
    let y0 = ((cy - radius).floor().max(0.0)) as usize;
    let x1 = ((cx + radius).ceil().min(img.width() as f64 - 1.0)).max(0.0) as usize;
    let y1 = ((cy + radius).ceil().min(img.height() as f64 - 1.0)).max(0.0) as usize;
    let r2 = radius * radius;
    for y in y0..=y1.min(img.height().saturating_sub(1)) {
        for x in x0..=x1.min(img.width().saturating_sub(1)) {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            if dx * dx + dy * dy <= r2 {
                paint(img, x, y, color, a);
            }
        }
    }
}

/// Draws a 1-pixel-wide line from `(x0, y0)` to `(x1, y1)` using Bresenham's
/// algorithm, blended with opacity `alpha`. Endpoints may lie outside the
/// image; out-of-bounds pixels are skipped.
pub fn draw_line(
    img: &mut Image,
    (x0, y0): (isize, isize),
    (x1, y1): (isize, isize),
    color: Color,
    alpha: f64,
) {
    let a = alpha.clamp(0.0, 1.0);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        if x >= 0 && y >= 0 && (x as usize) < img.width() && (y as usize) < img.height() {
            paint(img, x as usize, y as usize, color, a);
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Fills the whole image with a linear gradient between `from` and `to`
/// along the direction `(dir_x, dir_y)` (need not be normalised).
pub fn fill_linear_gradient(img: &mut Image, from: Color, to: Color, dir_x: f64, dir_y: f64) {
    let norm = (dir_x * dir_x + dir_y * dir_y).sqrt();
    if norm == 0.0 {
        fill_rect(img, Rect::new(0, 0, img.width(), img.height()), from, 1.0);
        return;
    }
    let (nx, ny) = (dir_x / norm, dir_y / norm);
    // Project all corners to find the projection range.
    let w = img.width() as f64 - 1.0;
    let h = img.height() as f64 - 1.0;
    let projections = [0.0, w * nx, h * ny, w * nx + h * ny];
    let lo = projections.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = projections.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let t = ((x as f64 * nx + y as f64 * ny) - lo) / span;
            for c in 0..img.channel_count() {
                let v = from.channel(c) * (1.0 - t) + to.channel(c) * t;
                img.set(x, y, c, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    #[test]
    fn color_helpers() {
        assert_eq!(Color::gray(5.0).channel(2), 5.0);
        let c = Color::rgb(1.0, 2.0, 3.0);
        assert_eq!(c.channel(0), 1.0);
        assert_eq!(c.channel(9), 3.0); // clamped channel index
    }

    #[test]
    fn fill_rect_opaque() {
        let mut img = Image::zeros(4, 4, Channels::Gray);
        fill_rect(&mut img, Rect::new(1, 1, 2, 2), Color::gray(100.0), 1.0);
        assert_eq!(img.get(1, 1, 0), 100.0);
        assert_eq!(img.get(2, 2, 0), 100.0);
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert_eq!(img.get(3, 3, 0), 0.0);
    }

    #[test]
    fn fill_rect_clips_to_image() {
        let mut img = Image::zeros(3, 3, Channels::Gray);
        fill_rect(&mut img, Rect::new(2, 2, 10, 10), Color::gray(9.0), 1.0);
        assert_eq!(img.get(2, 2, 0), 9.0);
        // Entirely outside: no panic, no change.
        fill_rect(&mut img, Rect::new(5, 5, 2, 2), Color::gray(1.0), 1.0);
    }

    #[test]
    fn fill_rect_alpha_blends() {
        let mut img = Image::filled(2, 2, Channels::Gray, 100.0);
        fill_rect(&mut img, Rect::new(0, 0, 2, 2), Color::gray(200.0), 0.5);
        assert_eq!(img.get(0, 0, 0), 150.0);
    }

    #[test]
    fn circle_covers_center_not_corners() {
        let mut img = Image::zeros(9, 9, Channels::Gray);
        fill_circle(&mut img, 4.0, 4.0, 3.0, Color::gray(255.0), 1.0);
        assert_eq!(img.get(4, 4, 0), 255.0);
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert_eq!(img.get(4, 1, 0), 255.0); // on the radius
    }

    #[test]
    fn circle_with_nonpositive_radius_is_noop() {
        let mut img = Image::zeros(3, 3, Channels::Gray);
        fill_circle(&mut img, 1.0, 1.0, 0.0, Color::gray(9.0), 1.0);
        assert_eq!(img.max_sample(), 0.0);
    }

    #[test]
    fn circle_partially_outside_is_clipped() {
        let mut img = Image::zeros(4, 4, Channels::Gray);
        fill_circle(&mut img, -1.0, -1.0, 2.5, Color::gray(50.0), 1.0);
        assert_eq!(img.get(0, 0, 0), 50.0);
        assert_eq!(img.get(3, 3, 0), 0.0);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut img = Image::zeros(5, 5, Channels::Gray);
        draw_line(&mut img, (0, 0), (4, 4), Color::gray(255.0), 1.0);
        for i in 0..5 {
            assert_eq!(img.get(i, i, 0), 255.0);
        }
    }

    #[test]
    fn line_clips_out_of_bounds() {
        let mut img = Image::zeros(3, 3, Channels::Gray);
        draw_line(&mut img, (-2, 1), (5, 1), Color::gray(10.0), 1.0);
        for x in 0..3 {
            assert_eq!(img.get(x, 1, 0), 10.0);
        }
    }

    #[test]
    fn gradient_endpoints() {
        let mut img = Image::zeros(8, 1, Channels::Gray);
        fill_linear_gradient(&mut img, Color::gray(0.0), Color::gray(255.0), 1.0, 0.0);
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert_eq!(img.get(7, 0, 0), 255.0);
        assert!(img.get(3, 0, 0) > img.get(2, 0, 0));
    }

    #[test]
    fn gradient_zero_direction_fills_from_color() {
        let mut img = Image::zeros(3, 3, Channels::Gray);
        fill_linear_gradient(&mut img, Color::gray(42.0), Color::gray(255.0), 0.0, 0.0);
        assert_eq!(img.get(1, 1, 0), 42.0);
    }

    #[test]
    fn gradient_on_rgb_interpolates_channels() {
        let mut img = Image::zeros(5, 1, Channels::Rgb);
        fill_linear_gradient(
            &mut img,
            Color::rgb(0.0, 100.0, 200.0),
            Color::rgb(100.0, 0.0, 200.0),
            1.0,
            0.0,
        );
        assert_eq!(img.get(0, 0, 1), 100.0);
        assert_eq!(img.get(4, 0, 1), 0.0);
        assert_eq!(img.get(2, 0, 2), 200.0);
    }
}
