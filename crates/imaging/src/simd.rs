//! Vectorized slice primitives shared by the hot kernels.
//!
//! The convolution, resampling and rank-filter inner loops all reduce to a
//! handful of flat, stride-1 slice operations. Centralising them here gives
//! the autovectorizer one obvious target and provides the optional explicit
//! `core::arch` path behind the `simd` cargo feature.
//!
//! # Bit-identity contract
//!
//! Every operation in this module produces **bit-identical** results with
//! the feature on or off. The AVX path performs the same scalar operation
//! sequence per lane — separate multiply and add instructions, never FMA
//! (a fused multiply-add rounds once instead of twice and would change the
//! low bits) — so each output element sees exactly the arithmetic of the
//! scalar loop. The `simd` feature is therefore a pure throughput knob:
//! scores, artifacts and benches do not move by a ULP when toggling it.
//!
//! One asterisk: the contract is exact for every non-`NaN` output, and
//! `NaN`-for-`NaN` otherwise — `NaN` *payload bits* are not pinned. IEEE 754
//! leaves payload propagation implementation-defined and LLVM freely
//! commutes `fadd`/`fmul` operands, so when two different `NaN`s meet (e.g.
//! an input `NaN` added to the fresh quiet `NaN` from `0.0 × ∞`), which
//! payload survives depends on instruction scheduling — two compilations of
//! the *same scalar loop* can already disagree. The engine never hits this:
//! input validation quarantines non-finite pixels and all kernel weights
//! are finite, so scored outputs carry no `NaN`s at all.
//!
//! # Runtime dispatch
//!
//! With `--features simd` on x86-64, [`axpy`] and [`fold_min`]/[`fold_max`]
//! check [`std::arch::is_x86_feature_detected!`] (a cached atomic load) and
//! fall back to the scalar loop on CPUs without AVX. Off x86-64, or without
//! the feature, only the scalar loops are compiled.

/// `dst[i] += w * src[i]` over two equal-length slices.
///
/// This is the SAXPY step of every tap-outer convolution and resampling
/// pass. The scalar loop is written so LLVM unrolls and vectorizes it at
/// the SSE2 baseline; the `simd` feature adds a 4-lane AVX path.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn axpy(dst: &mut [f64], src: &[f64], w: f64) {
    assert_eq!(dst.len(), src.len(), "axpy slice length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just verified at runtime.
        unsafe { avx::axpy(dst, src, w) };
        return;
    }
    axpy_scalar(dst, src, w);
}

#[inline]
fn axpy_scalar(dst: &mut [f64], src: &[f64], w: f64) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += w * s;
    }
}

/// `dst[i] = dst[i].min(src[i])` over two equal-length slices.
///
/// Used by the row-fold vertical pass of the separable extremum filter.
/// [`f64::min`] semantics: a `NaN` lane yields the other operand, so
/// `NaN`-poisoned inputs propagate exactly as in the naive reference
/// (up to payload bits when both operands are `NaN` — see module docs).
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn fold_min(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "fold_min slice length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just verified at runtime.
        unsafe { avx::fold_min(dst, src) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = d.min(s);
    }
}

/// `dst[i] = dst[i].max(src[i])` over two equal-length slices.
///
/// Counterpart of [`fold_min`] for dilation.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn fold_max(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "fold_max slice length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just verified at runtime.
        unsafe { avx::fold_max(dst, src) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = d.max(s);
    }
}

/// Maximum number of source rows one [`weighted_sum_rows`] call accepts.
///
/// Callers with more taps than this split them into groups and chain calls
/// with `accumulate = true`; the per-element add order stays ascending
/// across the groups, so the grouping never changes a result bit.
pub const WEIGHTED_SUM_MAX_ROWS: usize = 16;

/// `dst[i] = Σ_k weights[k] * srcs[k][i]`, or `dst[i] += …` when
/// `accumulate` is true — the fused form of one `fill(0.0)` plus one
/// [`axpy`] per tap.
///
/// Each element accumulates over ascending `k` starting from `0.0` (or the
/// existing `dst` value), exactly like the chain of `axpy` calls it
/// replaces, so results are bit-identical; the win is one call and one
/// store per element instead of `k` of each. The AVX path keeps the
/// accumulator in a register with separate mul and add per tap (no FMA).
///
/// # Panics
///
/// Panics if any source length differs from `dst` or if more than
/// [`WEIGHTED_SUM_MAX_ROWS`] rows are passed.
#[inline]
pub fn weighted_sum_rows(dst: &mut [f64], srcs: &[&[f64]], weights: &[f64], accumulate: bool) {
    assert!(srcs.len() <= WEIGHTED_SUM_MAX_ROWS, "weighted_sum_rows row cap exceeded");
    assert_eq!(srcs.len(), weights.len(), "weighted_sum_rows row/weight length mismatch");
    for s in srcs {
        assert_eq!(dst.len(), s.len(), "weighted_sum_rows slice length mismatch");
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just verified at runtime; lengths were
        // just checked.
        unsafe { avx::weighted_sum_rows(dst, srcs, weights, accumulate) };
        return;
    }
    if !accumulate {
        dst.fill(0.0);
    }
    for (s, &w) in srcs.iter().zip(weights) {
        axpy_scalar(dst, s, w);
    }
}

/// Fuses the per-pixel SSIM formula over five flat single-channel blurred
/// planes:
///
/// ```text
/// va  = a_sq[i] - µa²          vb = b_sq[i] - µb²        cov = ab[i] - µa·µb
/// dst[i] = ((2·µa·µb + c1)(2·cov + c2)) / ((µa² + µb² + c1)(va + vb + c2))
/// ```
///
/// Every lane replays the exact scalar operation sequence of the historical
/// per-pixel loop — left-associated adds, `(2.0 * µa) * µb` grouping, a
/// single IEEE division (`vdivpd` is correctly rounded per lane), then the
/// loop's `0.0 + q` accumulator seed and `/ 1.0` channel average — so the
/// output is bit-identical with the `simd` feature on or off, including
/// signed zeros and `NaN` propagation.
///
/// # Panics
///
/// Panics if any plane length differs from `dst`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn ssim_combine(
    dst: &mut [f64],
    mu_a: &[f64],
    mu_b: &[f64],
    a_sq: &[f64],
    b_sq: &[f64],
    ab: &[f64],
    c1: f64,
    c2: f64,
) {
    for p in [&mu_a, &mu_b, &a_sq, &b_sq, &ab] {
        assert_eq!(dst.len(), p.len(), "ssim_combine slice length mismatch");
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(unsafe_code)]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just verified at runtime; lengths were
        // just checked.
        unsafe { avx::ssim_combine(dst, mu_a, mu_b, a_sq, b_sq, ab, c1, c2) };
        return;
    }
    ssim_combine_scalar(dst, mu_a, mu_b, a_sq, b_sq, ab, c1, c2);
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn ssim_combine_scalar(
    dst: &mut [f64],
    mu_a: &[f64],
    mu_b: &[f64],
    a_sq: &[f64],
    b_sq: &[f64],
    ab: &[f64],
    c1: f64,
    c2: f64,
) {
    for (i, d) in dst.iter_mut().enumerate() {
        let ma = mu_a[i];
        let mb = mu_b[i];
        let va = a_sq[i] - ma * ma;
        let vb = b_sq[i] - mb * mb;
        let cov = ab[i] - ma * mb;
        let numerator = (2.0 * ma * mb + c1) * (2.0 * cov + c2);
        let denominator = (ma * ma + mb * mb + c1) * (va + vb + c2);
        // The historical loop seeds `acc = 0.0`, adds the quotient and
        // divides by the channel count (1): keep both steps so even a
        // `-0.0` quotient lands identically.
        let mut acc = 0.0;
        acc += numerator / denominator;
        *d = acc / 1.0;
    }
}

/// Whether the explicit vector path is compiled in *and* usable on this
/// CPU. Purely informational (reports, benches); the dispatch above never
/// needs to be queried externally.
pub fn explicit_simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx {
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_blendv_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_max_pd,
        _mm256_min_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd,
        _CMP_UNORD_Q,
    };

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX and every source length
    /// equals `dst.len()`.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn weighted_sum_rows(
        dst: &mut [f64],
        srcs: &[&[f64]],
        weights: &[f64],
        accumulate: bool,
    ) {
        let n = dst.len();
        let mut wv = [_mm256_setzero_pd(); super::WEIGHTED_SUM_MAX_ROWS];
        for (v, &w) in wv.iter_mut().zip(weights) {
            *v = _mm256_set1_pd(w);
        }
        let mut i = 0;
        // 16-element blocks: four independent accumulator chains overlap
        // the add latency of the tap loop. Each *element* still sums its
        // taps in ascending order (mul then add, never fmadd), so results
        // are bit-identical to the scalar chain; only elements of
        // different chains proceed in parallel.
        while i + 16 <= n {
            let p = dst.as_ptr().add(i);
            let (mut a0, mut a1, mut a2, mut a3) = if accumulate {
                (
                    _mm256_loadu_pd(p),
                    _mm256_loadu_pd(p.add(4)),
                    _mm256_loadu_pd(p.add(8)),
                    _mm256_loadu_pd(p.add(12)),
                )
            } else {
                let z = _mm256_setzero_pd();
                (z, z, z, z)
            };
            for (s, v) in srcs.iter().zip(&wv) {
                let sp = s.as_ptr().add(i);
                a0 = _mm256_add_pd(a0, _mm256_mul_pd(*v, _mm256_loadu_pd(sp)));
                a1 = _mm256_add_pd(a1, _mm256_mul_pd(*v, _mm256_loadu_pd(sp.add(4))));
                a2 = _mm256_add_pd(a2, _mm256_mul_pd(*v, _mm256_loadu_pd(sp.add(8))));
                a3 = _mm256_add_pd(a3, _mm256_mul_pd(*v, _mm256_loadu_pd(sp.add(12))));
            }
            let d = dst.as_mut_ptr().add(i);
            _mm256_storeu_pd(d, a0);
            _mm256_storeu_pd(d.add(4), a1);
            _mm256_storeu_pd(d.add(8), a2);
            _mm256_storeu_pd(d.add(12), a3);
            i += 16;
        }
        while i + 4 <= n {
            let mut acc =
                if accumulate { _mm256_loadu_pd(dst.as_ptr().add(i)) } else { _mm256_setzero_pd() };
            for (s, v) in srcs.iter().zip(&wv) {
                acc = _mm256_add_pd(acc, _mm256_mul_pd(*v, _mm256_loadu_pd(s.as_ptr().add(i))));
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), acc);
            i += 4;
        }
        for j in i..n {
            let mut acc = if accumulate { dst[j] } else { 0.0 };
            for (s, &w) in srcs.iter().zip(weights) {
                acc += w * s[j];
            }
            dst[j] = acc;
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX and `dst.len() == src.len()`.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn axpy(dst: &mut [f64], src: &[f64], w: f64) {
        let n = dst.len();
        let lanes = n / 4 * 4;
        let wv = _mm256_set1_pd(w);
        let mut i = 0;
        while i < lanes {
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            // mul then add — NOT fmadd — to keep scalar rounding.
            let r = _mm256_add_pd(d, _mm256_mul_pd(wv, s));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), r);
            i += 4;
        }
        for j in lanes..n {
            dst[j] += w * src[j];
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX and every plane length
    /// equals `dst.len()`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn ssim_combine(
        dst: &mut [f64],
        mu_a: &[f64],
        mu_b: &[f64],
        a_sq: &[f64],
        b_sq: &[f64],
        ab: &[f64],
        c1: f64,
        c2: f64,
    ) {
        use std::arch::x86_64::{_mm256_div_pd, _mm256_sub_pd};
        let n = dst.len();
        let lanes = n / 4 * 4;
        let c1v = _mm256_set1_pd(c1);
        let c2v = _mm256_set1_pd(c2);
        let two = _mm256_set1_pd(2.0);
        let one = _mm256_set1_pd(1.0);
        let zero = _mm256_setzero_pd();
        let mut i = 0;
        while i < lanes {
            let ma = _mm256_loadu_pd(mu_a.as_ptr().add(i));
            let mb = _mm256_loadu_pd(mu_b.as_ptr().add(i));
            let sa = _mm256_loadu_pd(a_sq.as_ptr().add(i));
            let sb = _mm256_loadu_pd(b_sq.as_ptr().add(i));
            let sab = _mm256_loadu_pd(ab.as_ptr().add(i));
            let ma_ma = _mm256_mul_pd(ma, ma);
            let mb_mb = _mm256_mul_pd(mb, mb);
            let ma_mb = _mm256_mul_pd(ma, mb);
            let va = _mm256_sub_pd(sa, ma_ma);
            let vb = _mm256_sub_pd(sb, mb_mb);
            let cov = _mm256_sub_pd(sab, ma_mb);
            // `(2.0 * ma) * mb` — the scalar grouping, not `2 * (ma*mb)`.
            let lum = _mm256_add_pd(_mm256_mul_pd(_mm256_mul_pd(two, ma), mb), c1v);
            let cross = _mm256_add_pd(_mm256_mul_pd(two, cov), c2v);
            let numerator = _mm256_mul_pd(lum, cross);
            let denominator = _mm256_mul_pd(
                _mm256_add_pd(_mm256_add_pd(ma_ma, mb_mb), c1v),
                _mm256_add_pd(_mm256_add_pd(va, vb), c2v),
            );
            // Replay the scalar accumulator seed and channel average —
            // `0.0 + q` then `/ 1.0` — so `-0.0` lanes land identically.
            let q = _mm256_div_pd(numerator, denominator);
            let out = _mm256_div_pd(_mm256_add_pd(zero, q), one);
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), out);
            i += 4;
        }
        if lanes < n {
            super::ssim_combine_scalar(
                &mut dst[lanes..],
                &mu_a[lanes..],
                &mu_b[lanes..],
                &a_sq[lanes..],
                &b_sq[lanes..],
                &ab[lanes..],
                c1,
                c2,
            );
        }
    }

    /// `f64::min(d, s)` per lane. Raw `vminpd` returns its second operand
    /// whenever either input is NaN; `vminpd(s, d)` is therefore correct
    /// except when `d` is NaN (where IEEE `minNum` wants `s`), which the
    /// blend on `d != d` patches — including the both-NaN lane, where the
    /// blend selects `s = NaN` as required.
    #[inline]
    #[target_feature(enable = "avx")]
    unsafe fn min_lanes(d: __m256d, s: __m256d) -> __m256d {
        let m = _mm256_min_pd(s, d);
        let d_nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(d, d);
        _mm256_blendv_pd(m, s, d_nan)
    }

    /// `f64::max(d, s)` per lane; mirror of [`min_lanes`].
    #[inline]
    #[target_feature(enable = "avx")]
    unsafe fn max_lanes(d: __m256d, s: __m256d) -> __m256d {
        let m = _mm256_max_pd(s, d);
        let d_nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(d, d);
        _mm256_blendv_pd(m, s, d_nan)
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX and `dst.len() == src.len()`.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn fold_min(dst: &mut [f64], src: &[f64]) {
        let n = dst.len();
        let lanes = n / 4 * 4;
        let mut i = 0;
        while i < lanes {
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), min_lanes(d, s));
            i += 4;
        }
        for j in lanes..n {
            dst[j] = dst[j].min(src[j]);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX and `dst.len() == src.len()`.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn fold_max(dst: &mut [f64], src: &[f64]) {
        let n = dst.len();
        let lanes = n / 4 * 4;
        let mut i = 0;
        while i < lanes {
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), max_lanes(d, s));
            i += 4;
        }
        for j in lanes..n {
            dst[j] = dst[j].max(src[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_loop() {
        let src: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() * 50.0).collect();
        let mut dst: Vec<f64> = (0..37).map(|i| (i as f64 * 1.3).cos()).collect();
        let mut expected = dst.clone();
        for (d, &s) in expected.iter_mut().zip(src.iter()) {
            *d += 0.37 * s;
        }
        axpy(&mut dst, &src, 0.37);
        assert_eq!(dst, expected);
    }

    #[test]
    fn fold_min_max_match_scalar_semantics() {
        let a: Vec<f64> = vec![1.0, 5.0, f64::NAN, 2.0, -3.0, 9.0, 0.0, 4.5, 1.25];
        let b: Vec<f64> = vec![2.0, f64::NAN, 4.0, 2.0, -4.0, 1.0, f64::NAN, 4.5, -1.0];
        let mut mn = a.clone();
        fold_min(&mut mn, &b);
        let mut mx = a.clone();
        fold_max(&mut mx, &b);
        for i in 0..a.len() {
            let expect_min = a[i].min(b[i]);
            let expect_max = a[i].max(b[i]);
            assert!(
                mn[i] == expect_min || (mn[i].is_nan() && expect_min.is_nan()),
                "min lane {i}: {} vs {}",
                mn[i],
                expect_min
            );
            assert!(
                mx[i] == expect_max || (mx[i].is_nan() && expect_max.is_nan()),
                "max lane {i}: {} vs {}",
                mx[i],
                expect_max
            );
        }
    }

    #[test]
    fn weighted_sum_rows_matches_axpy_chain() {
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|r| (0..23).map(|i| ((r * 23 + i) as f64 * 0.41).sin() * 30.0).collect())
            .collect();
        let weights = [0.1, -0.7, 1.3, 0.02, -0.9];
        let srcs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();

        let mut expected = vec![0.0; 23];
        for (s, &w) in srcs.iter().zip(&weights) {
            for (d, &v) in expected.iter_mut().zip(*s) {
                *d += w * v;
            }
        }
        let mut dst = vec![f64::NAN; 23];
        weighted_sum_rows(&mut dst, &srcs, &weights, false);
        assert_eq!(dst, expected);

        // Chained groups accumulate bit-identically to one flat call.
        let mut grouped = vec![0.0; 23];
        weighted_sum_rows(&mut grouped, &srcs[..2], &weights[..2], false);
        weighted_sum_rows(&mut grouped, &srcs[2..], &weights[2..], true);
        assert_eq!(grouped, expected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_sum_rows_rejects_mismatched_lengths() {
        let mut d = [0.0; 3];
        weighted_sum_rows(&mut d, &[&[1.0; 4]], &[1.0], false);
    }

    #[test]
    fn ssim_combine_matches_scalar_formula() {
        // 19 elements exercises the 4-lane body plus a 3-element tail; the
        // last entries poison the planes with NaN and huge/zero stats.
        let n = 19;
        let mu_a: Vec<f64> = (0..n).map(|i| 100.0 + (i as f64 * 0.7).sin() * 80.0).collect();
        let mu_b: Vec<f64> = (0..n).map(|i| 90.0 + (i as f64 * 1.1).cos() * 70.0).collect();
        let mut a_sq: Vec<f64> = mu_a.iter().map(|m| m * m + 25.0).collect();
        let mut b_sq: Vec<f64> = mu_b.iter().map(|m| m * m + 16.0).collect();
        let mut ab: Vec<f64> = mu_a.iter().zip(&mu_b).map(|(a, b)| a * b + 5.0).collect();
        a_sq[n - 1] = f64::NAN;
        b_sq[n - 2] = 1e300;
        ab[n - 3] = 0.0;
        let (c1, c2) = (6.5025, 58.5225);

        let mut expected = vec![0.0; n];
        for i in 0..n {
            let (ma, mb) = (mu_a[i], mu_b[i]);
            let va = a_sq[i] - ma * ma;
            let vb = b_sq[i] - mb * mb;
            let cov = ab[i] - ma * mb;
            let numerator = (2.0 * ma * mb + c1) * (2.0 * cov + c2);
            let denominator = (ma * ma + mb * mb + c1) * (va + vb + c2);
            let mut acc = 0.0;
            acc += numerator / denominator;
            expected[i] = acc / 1.0;
        }
        let mut dst = vec![f64::NAN; n];
        ssim_combine(&mut dst, &mu_a, &mu_b, &a_sq, &b_sq, &ab, c1, c2);
        for i in 0..n {
            assert!(
                dst[i].to_bits() == expected[i].to_bits(),
                "lane {i}: {} vs {}",
                dst[i],
                expected[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ssim_combine_rejects_mismatched_lengths() {
        let mut d = [0.0; 3];
        let p = [0.0; 4];
        ssim_combine(&mut d, &p, &p, &p, &p, &p, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_mismatched_lengths() {
        let mut d = [0.0; 3];
        axpy(&mut d, &[1.0; 4], 1.0);
    }

    #[test]
    fn explicit_simd_flag_is_consistent() {
        // Whatever the answer, it must be stable across calls.
        assert_eq!(explicit_simd_active(), explicit_simd_active());
    }
}
