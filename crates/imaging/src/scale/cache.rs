//! Scaler plan cache.
//!
//! Building a [`Scaler`] means computing two coefficient matrices, which for
//! repeated scoring of same-sized images dominates the cost of the actual
//! resampling passes. The cache keys a built scaler by
//! `(source size, destination size, algorithm)` and hands out shared
//! [`Arc`] references, so a corpus run builds each plan once.
//!
//! A built `Scaler` is immutable, so a cached plan applied to an image is
//! bit-identical to a freshly built one (asserted by the property tests in
//! `tests/properties.rs`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::geometry::Size;
use crate::ImagingError;

use super::{ScaleAlgorithm, Scaler};

/// Key identifying one resampling plan.
type PlanKey = (Size, Size, ScaleAlgorithm);

/// A thread-safe cache of built [`Scaler`] plans.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::scale::{ScaleAlgorithm, ScalerCache};
/// use decamouflage_imaging::Size;
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let cache = ScalerCache::new();
/// let a = cache.get(Size::square(64), Size::square(16), ScaleAlgorithm::Bilinear)?;
/// let b = cache.get(Size::square(64), Size::square(16), ScaleAlgorithm::Bilinear)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ScalerCache {
    plans: Mutex<HashMap<PlanKey, Arc<Scaler>>>,
}

impl ScalerCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached scaler for `(src, dst, algorithm)`, building and
    /// inserting it on first use.
    ///
    /// # Errors
    ///
    /// Propagates [`Scaler::new`] errors for invalid sizes; failures are not
    /// cached.
    pub fn get(
        &self,
        src: Size,
        dst: Size,
        algorithm: ScaleAlgorithm,
    ) -> Result<Arc<Scaler>, ImagingError> {
        let key = (src, dst, algorithm);
        if let Some(plan) = self.plans.lock().expect("scaler cache poisoned").get(&key) {
            return Ok(Arc::clone(plan));
        }
        // Built outside the lock: plan construction is the expensive part
        // and concurrent misses for the same key just race to insert
        // identical plans.
        let plan = Arc::new(Scaler::new(src, dst, algorithm)?);
        let mut plans = self.plans.lock().expect("scaler cache poisoned");
        Ok(Arc::clone(plans.entry(key).or_insert(plan)))
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("scaler cache poisoned").len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (outstanding [`Arc`]s stay valid).
    pub fn clear(&self) {
        self.plans.lock().expect("scaler cache poisoned").clear();
    }

    /// The process-wide shared cache used by the detection engine.
    pub fn global() -> &'static ScalerCache {
        static GLOBAL: OnceLock<ScalerCache> = OnceLock::new();
        GLOBAL.get_or_init(ScalerCache::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Image;

    #[test]
    fn get_builds_once_and_shares() {
        let cache = ScalerCache::new();
        let a = cache.get(Size::square(32), Size::square(8), ScaleAlgorithm::Nearest).unwrap();
        let b = cache.get(Size::square(32), Size::square(8), ScaleAlgorithm::Nearest).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        cache.get(Size::square(8), Size::square(32), ScaleAlgorithm::Nearest).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_algorithms_are_distinct_plans() {
        let cache = ScalerCache::new();
        for algorithm in ScaleAlgorithm::ALL {
            cache.get(Size::square(20), Size::square(5), algorithm).unwrap();
        }
        assert_eq!(cache.len(), ScaleAlgorithm::ALL.len());
    }

    #[test]
    fn invalid_sizes_error_and_are_not_cached() {
        let cache = ScalerCache::new();
        assert!(cache.get(Size::new(0, 4), Size::square(2), ScaleAlgorithm::Bilinear).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_plan_matches_cold_built_scaler() {
        let cache = ScalerCache::new();
        let img = Image::from_fn_gray(24, 24, |x, y| ((x * 7 + y * 13) % 97) as f64);
        for algorithm in ScaleAlgorithm::ALL {
            let plan = cache.get(Size::square(24), Size::square(6), algorithm).unwrap();
            let cold = Scaler::new(Size::square(24), Size::square(6), algorithm).unwrap();
            assert_eq!(plan.apply(&img).unwrap(), cold.apply(&img).unwrap(), "{algorithm:?}");
        }
    }

    #[test]
    fn clear_resets_but_existing_arcs_survive() {
        let cache = ScalerCache::new();
        let plan = cache.get(Size::square(16), Size::square(4), ScaleAlgorithm::Area).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        let img = Image::from_fn_gray(16, 16, |x, y| (x + y) as f64);
        assert!(plan.apply(&img).is_ok());
    }

    #[test]
    fn global_cache_is_shared() {
        let a = ScalerCache::global();
        let b = ScalerCache::global();
        assert!(std::ptr::eq(a, b));
    }
}
