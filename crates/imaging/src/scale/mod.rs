//! Image resampling.
//!
//! The scalers here reproduce the OpenCV/TensorFlow semantics that the
//! image-scaling attack exploits: interpolating kernels keep a *fixed*
//! support regardless of the scale factor, so strong downscaling reads only
//! a sparse subset of source pixels. [`ScaleAlgorithm::Area`] is the
//! attack-resistant exception (every source pixel contributes) and serves as
//! the "robust scaling" baseline from the paper's related-work discussion.
//!
//! Two interfaces are provided:
//!
//! * [`resize`] / [`Scaler`] — operate on whole [`Image`]s,
//! * [`CoeffMatrix`] — the 1-D sparse linear operator per axis, consumed by
//!   the attack crate.

pub mod kernels;

mod cache;
mod matrix;

pub use cache::ScalerCache;
pub use matrix::{CoeffMatrix, Taps};

use crate::{Image, ImagingError, Size};
use std::fmt;

/// Resampling algorithm selector.
///
/// All variants except `Area` are vulnerable to the image-scaling attack
/// when downscaling by a factor larger than their kernel support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ScaleAlgorithm {
    /// Nearest-neighbour (OpenCV `INTER_NEAREST`): 1 tap. Most vulnerable.
    Nearest,
    /// Bilinear (OpenCV `INTER_LINEAR` without anti-aliasing): 2 taps/axis.
    Bilinear,
    /// Keys bicubic with `A = -0.75` (OpenCV `INTER_CUBIC`): 4 taps/axis.
    Bicubic,
    /// Pixel-area averaging (OpenCV `INTER_AREA`): attack-resistant for
    /// downscaling; falls back to bilinear when enlarging.
    Area,
    /// Lanczos windowed sinc, order 3: 6 taps/axis.
    Lanczos3,
}

impl ScaleAlgorithm {
    /// All supported algorithms, in declaration order.
    pub const ALL: [ScaleAlgorithm; 5] = [
        ScaleAlgorithm::Nearest,
        ScaleAlgorithm::Bilinear,
        ScaleAlgorithm::Bicubic,
        ScaleAlgorithm::Area,
        ScaleAlgorithm::Lanczos3,
    ];

    /// The algorithms an attacker can realistically target (fixed-support
    /// interpolating kernels).
    pub const VULNERABLE: [ScaleAlgorithm; 3] =
        [ScaleAlgorithm::Nearest, ScaleAlgorithm::Bilinear, ScaleAlgorithm::Bicubic];

    /// Short lowercase name, stable across versions (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            ScaleAlgorithm::Nearest => "nearest",
            ScaleAlgorithm::Bilinear => "bilinear",
            ScaleAlgorithm::Bicubic => "bicubic",
            ScaleAlgorithm::Area => "area",
            ScaleAlgorithm::Lanczos3 => "lanczos3",
        }
    }
}

impl fmt::Display for ScaleAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A resampling operator pre-built for a fixed source/destination shape.
///
/// Building a [`Scaler`] factors the 2-D resize into two sparse 1-D
/// operators which are then reused across images — this is both the fast
/// path for repeated detection and the representation the attack needs.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::{Image, Size, scale::{Scaler, ScaleAlgorithm}};
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let scaler = Scaler::new(Size::new(8, 8), Size::new(4, 4), ScaleAlgorithm::Nearest)?;
/// let img = Image::from_fn_gray(8, 8, |x, y| (x * y) as f64);
/// let out = scaler.apply(&img)?;
/// assert_eq!(out.size(), Size::new(4, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scaler {
    algorithm: ScaleAlgorithm,
    src: Size,
    dst: Size,
    horizontal: CoeffMatrix,
    vertical: CoeffMatrix,
}

impl Scaler {
    /// Builds a scaler mapping images of size `src` to size `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] if either size has a zero
    /// dimension.
    pub fn new(src: Size, dst: Size, algorithm: ScaleAlgorithm) -> Result<Self, ImagingError> {
        if !src.is_valid() {
            return Err(ImagingError::InvalidDimensions { width: src.width, height: src.height });
        }
        if !dst.is_valid() {
            return Err(ImagingError::InvalidDimensions { width: dst.width, height: dst.height });
        }
        Ok(Self {
            algorithm,
            src,
            dst,
            horizontal: CoeffMatrix::build(algorithm, src.width, dst.width)?,
            vertical: CoeffMatrix::build(algorithm, src.height, dst.height)?,
        })
    }

    /// The algorithm this scaler uses.
    pub const fn algorithm(&self) -> ScaleAlgorithm {
        self.algorithm
    }

    /// Source size the scaler accepts.
    pub const fn src_size(&self) -> Size {
        self.src
    }

    /// Destination size the scaler produces.
    pub const fn dst_size(&self) -> Size {
        self.dst
    }

    /// The horizontal (width-axis) coefficient operator, `dst.width`
    /// outputs from `src.width` inputs.
    pub fn horizontal_coeffs(&self) -> &CoeffMatrix {
        &self.horizontal
    }

    /// The vertical (height-axis) coefficient operator, `dst.height`
    /// outputs from `src.height` inputs.
    pub fn vertical_coeffs(&self) -> &CoeffMatrix {
        &self.vertical
    }

    /// Resamples an image. Each plane is processed independently; the
    /// vertical pass runs first, then the horizontal pass (the result of a
    /// separable linear operator does not depend on pass order).
    ///
    /// Both passes run over flat stride-1 plane rows: the vertical pass is
    /// one register-accumulating weighted sum of whole source rows per
    /// destination row ([`crate::simd::weighted_sum_rows`]), the horizontal
    /// pass accumulates each output in a register over its ascending taps.
    /// Per output sample the taps are added in exactly the order
    /// [`CoeffMatrix::apply_into`] uses, so the result is bit-identical to
    /// the per-column gather formulation.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::ShapeMismatch`] if `img` is not of the
    /// scaler's source size.
    pub fn apply(&self, img: &Image) -> Result<Image, ImagingError> {
        if img.size() != self.src {
            return Err(ImagingError::ShapeMismatch {
                left: img.shape(),
                right: (self.src.width, self.src.height, img.channel_count()),
            });
        }
        let sw = self.src.width;
        let (dw, dh) = (self.dst.width, self.dst.height);

        use crate::simd::{weighted_sum_rows, WEIGHTED_SUM_MAX_ROWS};
        let mut mid = vec![0.0; sw * dh];
        let mut out_planes = Vec::with_capacity(img.channel_count());
        for c in 0..img.channel_count() {
            let src = img.plane(c);

            // Vertical pass: sw x sh -> sw x dh. Each destination row is one
            // register-accumulating weighted sum of its source rows in
            // ascending tap order (grouped by WEIGHTED_SUM_MAX_ROWS; chained
            // groups keep the add order, so the result is bit-identical to
            // the historical per-tap SAXPY chain).
            let mut srcs: [&[f64]; WEIGHTED_SUM_MAX_ROWS] = [&[]; WEIGHTED_SUM_MAX_ROWS];
            let mut wbuf = [0.0f64; WEIGHTED_SUM_MAX_ROWS];
            for (taps, mid_row) in self.vertical.iter_rows().zip(mid.chunks_exact_mut(sw)) {
                for (g, group) in taps.chunks(WEIGHTED_SUM_MAX_ROWS).enumerate() {
                    for (slot, &(j, weight)) in group.iter().enumerate() {
                        srcs[slot] = &src[j * sw..(j + 1) * sw];
                        wbuf[slot] = weight;
                    }
                    weighted_sum_rows(mid_row, &srcs[..group.len()], &wbuf[..group.len()], g > 0);
                }
            }

            // Horizontal pass: sw x dh -> dw x dh, register accumulation per
            // output sample over the stride-1 intermediate row.
            let mut out = vec![0.0; dw * dh];
            for (mid_row, out_row) in mid.chunks_exact(sw).zip(out.chunks_exact_mut(dw)) {
                for (x, taps) in self.horizontal.iter_rows().enumerate() {
                    let mut acc = 0.0;
                    for &(j, weight) in taps {
                        acc += weight * mid_row[j];
                    }
                    out_row[x] = acc;
                }
            }
            out_planes.push(out);
        }
        Image::from_planes(dw, dh, img.channels(), out_planes)
    }
}

/// Resamples `img` to `width x height` using `algorithm`.
///
/// Convenience wrapper over [`Scaler`]; prefer building a [`Scaler`] once
/// when resizing many same-shaped images.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidDimensions`] for zero target dimensions.
pub fn resize(
    img: &Image,
    width: usize,
    height: usize,
    algorithm: ScaleAlgorithm,
) -> Result<Image, ImagingError> {
    Scaler::new(img.size(), Size::new(width, height), algorithm)?.apply(img)
}

/// Anti-aliased resize: Gaussian prefilter matched to the downscale factor
/// (`sigma = 0.4 * (factor - 1)` per axis, skipped when enlarging),
/// followed by a normal [`resize`].
///
/// This is the *robust scaling* defense discussed in the paper's related
/// work (Quiring et al.): the prefilter forces every source pixel to
/// influence the output, so the sparse-pixel image-scaling attack loses
/// its hiding places — at the cost of a softer image and a scaling
/// behaviour no longer compatible with the plain OpenCV kernels.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidDimensions`] for zero target dimensions.
pub fn resize_antialiased(
    img: &Image,
    width: usize,
    height: usize,
    algorithm: ScaleAlgorithm,
) -> Result<Image, ImagingError> {
    if width == 0 || height == 0 {
        return Err(ImagingError::InvalidDimensions { width, height });
    }
    let fx = img.width() as f64 / width as f64;
    let fy = img.height() as f64 / height as f64;
    let sigma = 0.4 * (fx.max(fy) - 1.0);
    let prefiltered =
        if sigma > 0.05 { crate::filter::gaussian_blur(img, sigma)? } else { img.clone() };
    resize(&prefiltered, width, height, algorithm)
}

/// Downscales `img` to `target` and immediately upscales back to the
/// original size — the round trip at the heart of the paper's *scaling
/// detection* method. Returns `(downscaled, roundtripped)`.
///
/// # Errors
///
/// Propagates any scaler construction error.
pub fn round_trip(
    img: &Image,
    target: Size,
    algorithm: ScaleAlgorithm,
) -> Result<(Image, Image), ImagingError> {
    let down = Scaler::new(img.size(), target, algorithm)?.apply(img)?;
    let up = Scaler::new(target, img.size(), algorithm)?.apply(&down)?;
    Ok((down, up))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    fn gradient(w: usize, h: usize) -> Image {
        Image::from_fn_gray(w, h, |x, y| (x + y) as f64)
    }

    #[test]
    fn resize_reports_target_shape() {
        let img = gradient(10, 8);
        for algo in ScaleAlgorithm::ALL {
            let out = resize(&img, 5, 4, algo).unwrap();
            assert_eq!(out.size(), Size::new(5, 4), "{algo}");
            assert_eq!(out.channels(), Channels::Gray);
        }
    }

    #[test]
    fn resize_rejects_zero_target() {
        let img = gradient(4, 4);
        assert!(resize(&img, 0, 4, ScaleAlgorithm::Bilinear).is_err());
        assert!(resize(&img, 4, 0, ScaleAlgorithm::Bilinear).is_err());
    }

    #[test]
    fn scaler_rejects_wrong_input_size() {
        let scaler =
            Scaler::new(Size::new(8, 8), Size::new(4, 4), ScaleAlgorithm::Bilinear).unwrap();
        assert!(scaler.apply(&gradient(9, 8)).is_err());
    }

    #[test]
    fn flat_image_stays_flat_through_any_scaler() {
        let img = Image::filled(13, 9, Channels::Rgb, 77.0);
        for algo in ScaleAlgorithm::ALL {
            let out = resize(&img, 5, 4, algo).unwrap();
            for &v in out.planes().iter().flatten() {
                assert!((v - 77.0).abs() < 1e-9, "{algo} produced {v}");
            }
        }
    }

    #[test]
    fn nearest_downscale_picks_expected_pixels() {
        let img = Image::from_fn_gray(4, 4, |x, y| (y * 4 + x) as f64);
        let out = resize(&img, 2, 2, ScaleAlgorithm::Nearest).unwrap();
        // floor(i * 2): picks pixels 0 and 2 on each axis.
        assert_eq!(out.plane(0), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn bilinear_downscale_by_two_is_2x2_mean() {
        let img = Image::from_fn_gray(4, 4, |x, y| (y * 4 + x) as f64);
        let out = resize(&img, 2, 2, ScaleAlgorithm::Bilinear).unwrap();
        assert_eq!(out.plane(0), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn area_downscale_by_two_equals_bilinear_by_two() {
        // At exactly factor 2 the area box and the bilinear taps coincide.
        let img = gradient(8, 8);
        let a = resize(&img, 4, 4, ScaleAlgorithm::Area).unwrap();
        let b = resize(&img, 4, 4, ScaleAlgorithm::Bilinear).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn upscale_preserves_linear_ramps_for_bilinear() {
        // Bilinear interpolation reproduces affine signals exactly away
        // from borders.
        let img = Image::from_fn_gray(8, 1, |x, _| x as f64 * 10.0);
        let out = resize(&img, 16, 1, ScaleAlgorithm::Bilinear).unwrap();
        // Interior: sample 8 maps to sx = (8 + 0.5) * 0.5 - 0.5 = 3.75 -> 37.5.
        assert!((out.get(8, 0, 0) - 37.5).abs() < 1e-9);
    }

    #[test]
    fn rgb_channels_are_independent() {
        let img = Image::from_fn_rgb(6, 6, |x, y| [x as f64, y as f64, (x + y) as f64]);
        let out = resize(&img, 3, 3, ScaleAlgorithm::Bilinear).unwrap();
        // Red depends only on x, so each red row is constant across y.
        for y in 0..3 {
            assert_eq!(out.get(0, y, 0), out.get(0, 0, 0));
        }
        // Green depends only on y.
        for x in 0..3 {
            assert_eq!(out.get(x, 0, 1), out.get(0, 0, 1));
        }
    }

    #[test]
    fn scaler_accessors() {
        let s = Scaler::new(Size::new(8, 6), Size::new(4, 3), ScaleAlgorithm::Bicubic).unwrap();
        assert_eq!(s.algorithm(), ScaleAlgorithm::Bicubic);
        assert_eq!(s.src_size(), Size::new(8, 6));
        assert_eq!(s.dst_size(), Size::new(4, 3));
        assert_eq!(s.horizontal_coeffs().src_len(), 8);
        assert_eq!(s.horizontal_coeffs().dst_len(), 4);
        assert_eq!(s.vertical_coeffs().src_len(), 6);
        assert_eq!(s.vertical_coeffs().dst_len(), 3);
    }

    #[test]
    fn round_trip_returns_both_images() {
        let img = gradient(12, 12);
        let (down, up) = round_trip(&img, Size::new(4, 4), ScaleAlgorithm::Bilinear).unwrap();
        assert_eq!(down.size(), Size::new(4, 4));
        assert_eq!(up.size(), Size::new(12, 12));
    }

    #[test]
    fn round_trip_of_smooth_image_is_close() {
        // The scaling-detection premise: benign (smooth) images survive the
        // round trip nearly unchanged.
        let img = Image::from_fn_gray(32, 32, |x, y| {
            128.0 + 60.0 * ((x as f64) * 0.1).sin() + 40.0 * ((y as f64) * 0.07).cos()
        });
        let (_, up) = round_trip(&img, Size::new(16, 16), ScaleAlgorithm::Bilinear).unwrap();
        let mse: f64 =
            img.plane(0).iter().zip(up.plane(0)).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
                / (32.0 * 32.0);
        assert!(mse < 30.0, "round-trip MSE too large: {mse}");
    }

    #[test]
    fn antialiased_resize_matches_target_shape_and_range() {
        let img = Image::from_fn_gray(32, 32, |x, y| ((x * 11 + y * 7) % 256) as f64);
        let out = resize_antialiased(&img, 8, 8, ScaleAlgorithm::Bilinear).unwrap();
        assert_eq!(out.size(), Size::new(8, 8));
        assert!(out.min_sample() >= 0.0 - 1e-9);
        assert!(out.max_sample() <= 255.0 + 1e-9);
        assert!(resize_antialiased(&img, 0, 8, ScaleAlgorithm::Bilinear).is_err());
    }

    #[test]
    fn antialiased_upscale_skips_the_prefilter() {
        let img = Image::from_fn_gray(8, 8, |x, y| ((x + y) * 16) as f64);
        let plain = resize(&img, 16, 16, ScaleAlgorithm::Bilinear).unwrap();
        let aa = resize_antialiased(&img, 16, 16, ScaleAlgorithm::Bilinear).unwrap();
        assert!(aa.approx_eq(&plain, 1e-9));
    }

    #[test]
    fn antialiasing_averages_untouched_pixels_into_the_output() {
        // A sparse bright comb on the pixels plain bilinear *ignores* at
        // factor 4: invisible to the plain resize, visible after the
        // anti-aliasing prefilter — the essence of the robust-scaling
        // defense.
        let img =
            Image::from_fn_gray(32, 32, |x, y| if x % 4 == 3 && y % 4 == 3 { 255.0 } else { 0.0 });
        let plain = resize(&img, 8, 8, ScaleAlgorithm::Bilinear).unwrap();
        let aa = resize_antialiased(&img, 8, 8, ScaleAlgorithm::Bilinear).unwrap();
        assert!(plain.mean_sample() < 1.0, "plain bilinear must miss the comb");
        assert!(
            aa.mean_sample() > 5.0,
            "anti-aliased resize must see the comb: mean {}",
            aa.mean_sample()
        );
    }

    /// Historical per-column/per-row gather formulation of `Scaler::apply`,
    /// kept as the bit-identity reference for the flat row-major passes.
    fn apply_reference(scaler: &Scaler, img: &Image) -> Image {
        let channels = img.channel_count();
        let (sw, sh) = (scaler.src_size().width, scaler.src_size().height);
        let (dw, dh) = (scaler.dst_size().width, scaler.dst_size().height);
        let mut mid = vec![0.0; sw * dh * channels];
        let mut col = vec![0.0; sh];
        let mut col_out = vec![0.0; dh];
        for c in 0..channels {
            for x in 0..sw {
                for (y, v) in col.iter_mut().enumerate() {
                    *v = img.get(x, y, c);
                }
                scaler.vertical_coeffs().apply_into(&col, &mut col_out);
                for (y, &v) in col_out.iter().enumerate() {
                    mid[(y * sw + x) * channels + c] = v;
                }
            }
        }
        let mut out = Image::zeros(dw, dh, img.channels());
        let mut row = vec![0.0; sw];
        let mut row_out = vec![0.0; dw];
        for c in 0..channels {
            for y in 0..dh {
                for (x, v) in row.iter_mut().enumerate() {
                    *v = mid[(y * sw + x) * channels + c];
                }
                scaler.horizontal_coeffs().apply_into(&row, &mut row_out);
                for (x, &v) in row_out.iter().enumerate() {
                    out.set(x, y, c, v);
                }
            }
        }
        out
    }

    #[test]
    fn flat_apply_is_bit_identical_to_gather_reference() {
        let rgb = Image::from_fn_rgb(13, 9, |x, y| {
            [((x * 31 + y * 17) % 101) as f64, ((x * 7 + y * 43) % 89) as f64, (x * y % 23) as f64]
        });
        let gray = Image::from_fn_gray(9, 13, |x, y| ((x * 53 + y * 29 + x * y) % 97) as f64);
        for algo in ScaleAlgorithm::ALL {
            for (img, dst) in [(&rgb, Size::new(5, 17)), (&gray, Size::new(20, 4))] {
                let scaler = Scaler::new(img.size(), dst, algo).unwrap();
                let fast = scaler.apply(img).unwrap();
                let reference = apply_reference(&scaler, img);
                assert_eq!(
                    fast,
                    reference,
                    "{algo} {:?} -> {dst:?} diverged from the gather reference",
                    img.size()
                );
            }
        }
    }

    #[test]
    fn algorithm_names_are_stable() {
        let names: Vec<&str> = ScaleAlgorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["nearest", "bilinear", "bicubic", "area", "lanczos3"]);
        assert_eq!(ScaleAlgorithm::Bicubic.to_string(), "bicubic");
    }

    #[test]
    fn vulnerable_set_excludes_area() {
        assert!(!ScaleAlgorithm::VULNERABLE.contains(&ScaleAlgorithm::Area));
    }
}
