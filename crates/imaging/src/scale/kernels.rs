//! Interpolation kernel weight functions.
//!
//! These are the continuous kernels behind the separable scalers. All
//! conventions follow OpenCV's `resize`: bicubic uses the Keys cubic with
//! `A = -0.75`, and — crucially for the image-scaling attack — the kernel
//! support is *not* widened when downscaling (no anti-aliasing), so only a
//! handful of source pixels influence each output pixel.

use std::f64::consts::PI;

/// Keys cubic convolution parameter used by OpenCV (`A = -0.75`).
pub const CUBIC_A: f64 = -0.75;

/// Bilinear (triangle/tent) kernel: `1 - |x|` on `[-1, 1]`, zero elsewhere.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::scale::kernels::bilinear_weight;
/// assert_eq!(bilinear_weight(0.0), 1.0);
/// assert_eq!(bilinear_weight(0.25), 0.75);
/// assert_eq!(bilinear_weight(1.5), 0.0);
/// ```
pub fn bilinear_weight(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 1.0 {
        1.0 - ax
    } else {
        0.0
    }
}

/// Keys bicubic kernel with the OpenCV parameter [`CUBIC_A`].
///
/// Support is `[-2, 2]`; the kernel interpolates (`w(0) = 1`, `w(±1) =
/// w(±2) = 0`) and its integer-shifted translates sum to 1.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::scale::kernels::cubic_weight;
/// assert!((cubic_weight(0.0) - 1.0).abs() < 1e-12);
/// assert!(cubic_weight(1.0).abs() < 1e-12);
/// assert!(cubic_weight(2.0).abs() < 1e-12);
/// ```
pub fn cubic_weight(x: f64) -> f64 {
    let ax = x.abs();
    if ax <= 1.0 {
        ((CUBIC_A + 2.0) * ax - (CUBIC_A + 3.0)) * ax * ax + 1.0
    } else if ax < 2.0 {
        (((ax - 5.0) * ax + 8.0) * ax - 4.0) * CUBIC_A
    } else {
        0.0
    }
}

/// Normalised sinc: `sin(pi x) / (pi x)` with `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        (PI * x).sin() / (PI * x)
    }
}

/// Lanczos kernel of order `a = 3`: `sinc(x) * sinc(x / 3)` on `[-3, 3]`.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::scale::kernels::lanczos3_weight;
/// assert!((lanczos3_weight(0.0) - 1.0).abs() < 1e-12);
/// assert!(lanczos3_weight(3.0).abs() < 1e-12);
/// assert!(lanczos3_weight(4.0).abs() < 1e-12);
/// ```
pub fn lanczos3_weight(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.0 {
        sinc(x) * sinc(x / 3.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bilinear_is_symmetric_tent() {
        for &x in &[0.0, 0.1, 0.5, 0.9, 1.0, 2.0] {
            assert_eq!(bilinear_weight(x), bilinear_weight(-x));
        }
        assert_eq!(bilinear_weight(0.5), 0.5);
        assert_eq!(bilinear_weight(1.0), 0.0);
    }

    #[test]
    fn bilinear_translates_partition_unity() {
        // Sum over integer shifts of the tent kernel is 1 everywhere.
        for i in 0..50 {
            let t = i as f64 / 50.0;
            let sum: f64 = (-2..=2).map(|k| bilinear_weight(t - k as f64)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "t={t} sum={sum}");
        }
    }

    #[test]
    fn cubic_interpolates_at_integers() {
        assert!((cubic_weight(0.0) - 1.0).abs() < 1e-12);
        for &x in &[1.0, 2.0, -1.0, -2.0, 2.5] {
            assert!(cubic_weight(x).abs() < 1e-12, "w({x}) = {}", cubic_weight(x));
        }
    }

    #[test]
    fn cubic_translates_partition_unity() {
        for i in 0..50 {
            let t = i as f64 / 50.0;
            let sum: f64 = (-3..=3).map(|k| cubic_weight(t - k as f64)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "t={t} sum={sum}");
        }
    }

    #[test]
    fn cubic_is_symmetric() {
        for i in 0..40 {
            let x = i as f64 * 0.05;
            assert!((cubic_weight(x) - cubic_weight(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn cubic_matches_opencv_half_offset_weights() {
        // OpenCV's 4-tap weights for a sample exactly between two pixels
        // (t = 0.5) with A = -0.75 are [-0.09375, 0.59375, 0.59375, -0.09375].
        let t = 0.5;
        let w =
            [cubic_weight(t + 1.0), cubic_weight(t), cubic_weight(1.0 - t), cubic_weight(2.0 - t)];
        assert!((w[0] + 0.09375).abs() < 1e-12);
        assert!((w[1] - 0.59375).abs() < 1e-12);
        assert!((w[2] - 0.59375).abs() < 1e-12);
        assert!((w[3] + 0.09375).abs() < 1e-12);
    }

    #[test]
    fn sinc_zero_crossings() {
        assert_eq!(sinc(0.0), 1.0);
        for k in 1..5 {
            assert!(sinc(k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn lanczos_support_is_three() {
        assert_eq!(lanczos3_weight(3.0), 0.0);
        assert_eq!(lanczos3_weight(-3.0), 0.0);
        assert!(lanczos3_weight(2.5).abs() > 0.0);
    }

    #[test]
    fn lanczos_is_symmetric() {
        for i in 0..60 {
            let x = i as f64 * 0.05;
            assert!((lanczos3_weight(x) - lanczos3_weight(-x)).abs() < 1e-12);
        }
    }
}
