//! Sparse 1-D scaling coefficient matrices.
//!
//! Every separable scaler can be written as `D = L · I · R` where `L`
//! (`dst_h x src_h`) mixes rows and `R` (`src_w x dst_w`) mixes columns.
//! This module builds the 1-D operator for one axis: a [`CoeffMatrix`] maps a
//! source signal of length `src_len` to a destination signal of length
//! `dst_len`, storing for each output element the small set of source
//! indices and weights that contribute to it.
//!
//! The image-scaling attack consumes these matrices directly: the sparsity
//! pattern tells the attacker exactly which source pixels the scaler reads.

use crate::scale::kernels::{bilinear_weight, cubic_weight, lanczos3_weight};
use crate::scale::ScaleAlgorithm;
use crate::ImagingError;

/// One output element's taps: `(source index, weight)` pairs sorted by index.
pub type Taps = Vec<(usize, f64)>;

/// A sparse `dst_len x src_len` linear operator for one scaling axis.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::scale::{CoeffMatrix, ScaleAlgorithm};
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 8, 4)?;
/// assert_eq!((m.src_len(), m.dst_len()), (8, 4));
/// // Every row of a linear interpolating scaler sums to 1.
/// for i in 0..4 {
///     let sum: f64 = m.row(i).iter().map(|&(_, w)| w).sum();
///     assert!((sum - 1.0).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoeffMatrix {
    src_len: usize,
    dst_len: usize,
    rows: Vec<Taps>,
}

impl CoeffMatrix {
    /// Builds the 1-D coefficient matrix of `algo` for scaling a signal of
    /// length `src_len` to length `dst_len`.
    ///
    /// `Area` degrades to `Bilinear` when enlarging (`dst_len > src_len`),
    /// mirroring OpenCV's `INTER_AREA` behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::InvalidDimensions`] if either length is zero.
    pub fn build(
        algo: ScaleAlgorithm,
        src_len: usize,
        dst_len: usize,
    ) -> Result<Self, ImagingError> {
        if src_len == 0 || dst_len == 0 {
            return Err(ImagingError::InvalidDimensions { width: src_len, height: dst_len });
        }
        let rows = match algo {
            ScaleAlgorithm::Nearest => build_nearest(src_len, dst_len),
            ScaleAlgorithm::Bilinear => build_interp(src_len, dst_len, 1, bilinear_weight),
            ScaleAlgorithm::Bicubic => build_interp(src_len, dst_len, 2, cubic_weight),
            ScaleAlgorithm::Lanczos3 => {
                let mut rows = build_interp(src_len, dst_len, 3, lanczos3_weight);
                // Lanczos weights do not form a partition of unity; OpenCV
                // normalises each tap set so flat signals stay flat.
                for taps in rows.iter_mut() {
                    normalize(taps);
                }
                rows
            }
            ScaleAlgorithm::Area => {
                if dst_len >= src_len {
                    build_interp(src_len, dst_len, 1, bilinear_weight)
                } else {
                    build_area(src_len, dst_len)
                }
            }
        };
        Ok(Self { src_len, dst_len, rows })
    }

    /// Builds an identity operator (useful in tests and as a neutral element).
    pub fn identity(len: usize) -> Self {
        Self { src_len: len, dst_len: len, rows: (0..len).map(|i| vec![(i, 1.0)]).collect() }
    }

    /// Source signal length (number of matrix columns).
    pub const fn src_len(&self) -> usize {
        self.src_len
    }

    /// Destination signal length (number of matrix rows).
    pub const fn dst_len(&self) -> usize {
        self.dst_len
    }

    /// Taps of output element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dst_len()`.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// Iterates over all rows in output order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[(usize, f64)]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Applies the operator to a source signal.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != src_len()`.
    pub fn apply(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.src_len, "input length mismatch");
        let mut out = vec![0.0; self.dst_len];
        self.apply_into(input, &mut out);
        out
    }

    /// Applies the operator writing into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match the operator shape.
    pub fn apply_into(&self, input: &[f64], output: &mut [f64]) {
        assert_eq!(input.len(), self.src_len, "input length mismatch");
        assert_eq!(output.len(), self.dst_len, "output length mismatch");
        for (o, taps) in output.iter_mut().zip(self.rows.iter()) {
            let mut acc = 0.0;
            for &(j, w) in taps {
                acc += w * input[j];
            }
            *o = acc;
        }
    }

    /// Applies the transposed operator (`src_len` outputs from `dst_len`
    /// inputs). Used by gradient computations in the attack solver.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != dst_len()`.
    pub fn apply_transpose(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.dst_len, "input length mismatch");
        let mut out = vec![0.0; self.src_len];
        for (i, taps) in self.rows.iter().enumerate() {
            for &(j, w) in taps {
                out[j] += w * input[i];
            }
        }
        out
    }

    /// Densifies into a row-major `dst_len x src_len` matrix.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut dense = vec![0.0; self.dst_len * self.src_len];
        for (i, taps) in self.rows.iter().enumerate() {
            for &(j, w) in taps {
                dense[i * self.src_len + j] = w;
            }
        }
        dense
    }

    /// Set of source indices with a non-zero weight in any row — i.e. the
    /// pixels the scaler actually reads. The attack perturbs only these.
    pub fn touched_sources(&self) -> Vec<usize> {
        let mut touched = vec![false; self.src_len];
        for taps in &self.rows {
            for &(j, w) in taps {
                if w != 0.0 {
                    touched[j] = true;
                }
            }
        }
        touched.iter().enumerate().filter_map(|(j, &t)| t.then_some(j)).collect()
    }

    /// Largest absolute column sum — an upper bound on how much one source
    /// pixel can influence the output (used to reason about attack budgets).
    pub fn max_column_influence(&self) -> f64 {
        let mut col = vec![0.0; self.src_len];
        for taps in &self.rows {
            for &(j, w) in taps {
                col[j] += w.abs();
            }
        }
        col.into_iter().fold(0.0, f64::max)
    }
}

/// OpenCV `INTER_NEAREST`: source index `floor(i * scale)`, clamped.
fn build_nearest(src_len: usize, dst_len: usize) -> Vec<Taps> {
    let scale = src_len as f64 / dst_len as f64;
    (0..dst_len)
        .map(|i| {
            let j = ((i as f64 * scale).floor() as usize).min(src_len - 1);
            vec![(j, 1.0)]
        })
        .collect()
}

/// Generic interpolating scaler with half-pixel-center mapping
/// `sx = (i + 0.5) * scale - 0.5` and a fixed kernel `radius` (no
/// anti-aliasing when downscaling — the OpenCV behaviour the attack relies
/// on). Out-of-range taps are clamped to the border, merging weights.
fn build_interp(
    src_len: usize,
    dst_len: usize,
    radius: isize,
    weight: impl Fn(f64) -> f64,
) -> Vec<Taps> {
    let scale = src_len as f64 / dst_len as f64;
    (0..dst_len)
        .map(|i| {
            let sx = (i as f64 + 0.5) * scale - 0.5;
            let base = sx.floor() as isize;
            let mut taps: Taps = Vec::with_capacity((2 * radius) as usize);
            for k in (base - radius + 1)..=(base + radius) {
                let w = weight(sx - k as f64);
                if w == 0.0 {
                    continue;
                }
                let j = k.clamp(0, src_len as isize - 1) as usize;
                merge_tap(&mut taps, j, w);
            }
            taps.sort_by_key(|&(j, _)| j);
            taps
        })
        .collect()
}

/// OpenCV `INTER_AREA` for shrinking: each output is the exact average of
/// the source interval `[i * scale, (i + 1) * scale)` with fractional edge
/// weights.
fn build_area(src_len: usize, dst_len: usize) -> Vec<Taps> {
    let scale = src_len as f64 / dst_len as f64;
    (0..dst_len)
        .map(|i| {
            let start = i as f64 * scale;
            let end = (i as f64 + 1.0) * scale;
            let mut taps: Taps = Vec::new();
            let first = start.floor() as usize;
            let last = (end.ceil() as usize).min(src_len);
            for j in first..last {
                let cell_start = j as f64;
                let cell_end = j as f64 + 1.0;
                let overlap = (end.min(cell_end) - start.max(cell_start)).max(0.0);
                if overlap > 0.0 {
                    taps.push((j, overlap / scale));
                }
            }
            normalize(&mut taps);
            taps
        })
        .collect()
}

fn merge_tap(taps: &mut Taps, j: usize, w: f64) {
    if let Some(entry) = taps.iter_mut().find(|(idx, _)| *idx == j) {
        entry.1 += w;
    } else {
        taps.push((j, w));
    }
}

fn normalize(taps: &mut Taps) {
    let sum: f64 = taps.iter().map(|&(_, w)| w).sum();
    if sum != 0.0 {
        for tap in taps.iter_mut() {
            tap.1 /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [ScaleAlgorithm; 5] = [
        ScaleAlgorithm::Nearest,
        ScaleAlgorithm::Bilinear,
        ScaleAlgorithm::Bicubic,
        ScaleAlgorithm::Area,
        ScaleAlgorithm::Lanczos3,
    ];

    #[test]
    fn rejects_zero_lengths() {
        assert!(CoeffMatrix::build(ScaleAlgorithm::Bilinear, 0, 4).is_err());
        assert!(CoeffMatrix::build(ScaleAlgorithm::Bilinear, 4, 0).is_err());
    }

    #[test]
    fn rows_sum_to_one_for_all_algorithms() {
        for algo in ALL {
            for &(src, dst) in &[(16usize, 4usize), (7, 3), (4, 16), (5, 5), (100, 7)] {
                let m = CoeffMatrix::build(algo, src, dst).unwrap();
                for i in 0..dst {
                    let sum: f64 = m.row(i).iter().map(|&(_, w)| w).sum();
                    assert!(
                        (sum - 1.0).abs() < 1e-9,
                        "{algo:?} {src}->{dst} row {i} sums to {sum}"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_signal_stays_flat() {
        for algo in ALL {
            let m = CoeffMatrix::build(algo, 23, 7).unwrap();
            let out = m.apply(&vec![42.0; 23]);
            for v in out {
                assert!((v - 42.0).abs() < 1e-9, "{algo:?} produced {v}");
            }
        }
    }

    #[test]
    fn identity_matrix_is_identity() {
        let m = CoeffMatrix::identity(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(m.apply(&x), x.to_vec());
    }

    #[test]
    fn same_length_interp_is_identity() {
        // With the half-pixel convention, scale factor 1 lands exactly on
        // source samples for interpolating kernels.
        for algo in [ScaleAlgorithm::Nearest, ScaleAlgorithm::Bilinear, ScaleAlgorithm::Bicubic] {
            let m = CoeffMatrix::build(algo, 9, 9).unwrap();
            let x: Vec<f64> = (0..9).map(|i| (i * i) as f64).collect();
            let out = m.apply(&x);
            for (a, b) in out.iter().zip(x.iter()) {
                assert!((a - b).abs() < 1e-9, "{algo:?}: {a} != {b}");
            }
        }
    }

    #[test]
    fn nearest_matches_opencv_indexing() {
        // 8 -> 4, scale 2: source index floor(i * 2) = 0, 2, 4, 6.
        let m = CoeffMatrix::build(ScaleAlgorithm::Nearest, 8, 4).unwrap();
        let expected = [0usize, 2, 4, 6];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(m.row(i), &[(e, 1.0)]);
        }
    }

    #[test]
    fn bilinear_downscale_by_two_averages_pairs() {
        // 8 -> 4, scale 2: sx = 2i + 0.5, taps (2i, 0.5), (2i + 1, 0.5).
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 8, 4).unwrap();
        for i in 0..4 {
            let taps = m.row(i);
            assert_eq!(taps.len(), 2);
            assert_eq!(taps[0].0, 2 * i);
            assert_eq!(taps[1].0, 2 * i + 1);
            assert!((taps[0].1 - 0.5).abs() < 1e-12);
            assert!((taps[1].1 - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear_downscale_by_four_touches_two_of_four() {
        // This is the sparsity the attack exploits: at scale 4 only 2 of
        // every 4 source pixels are read.
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 16, 4).unwrap();
        let touched = m.touched_sources();
        assert_eq!(touched.len(), 8, "touched: {touched:?}");
    }

    #[test]
    fn area_downscale_is_full_average() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Area, 8, 2).unwrap();
        // Every source pixel participates: area scaling is attack-resistant.
        assert_eq!(m.touched_sources().len(), 8);
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let out = m.apply(&x);
        assert!((out[0] - 1.5).abs() < 1e-12);
        assert!((out[1] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn area_handles_fractional_ratio() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Area, 5, 2).unwrap();
        let x = [10.0, 20.0, 30.0, 40.0, 50.0];
        let out = m.apply(&x);
        // First output averages [0, 2.5): pixels 0, 1 fully, pixel 2 at half.
        let expected0 = (10.0 + 20.0 + 0.5 * 30.0) / 2.5;
        let expected1 = (0.5 * 30.0 + 40.0 + 50.0) / 2.5;
        assert!((out[0] - expected0).abs() < 1e-12);
        assert!((out[1] - expected1).abs() < 1e-12);
    }

    #[test]
    fn area_upscale_falls_back_to_bilinear() {
        let a = CoeffMatrix::build(ScaleAlgorithm::Area, 4, 8).unwrap();
        let b = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 4, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bicubic_has_four_interior_taps() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bicubic, 32, 8).unwrap();
        // Interior rows should reference 4 distinct source pixels.
        let taps = m.row(4);
        assert_eq!(taps.len(), 4, "taps: {taps:?}");
    }

    #[test]
    fn lanczos_has_six_interior_taps() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Lanczos3, 64, 8).unwrap();
        let taps = m.row(4);
        assert_eq!(taps.len(), 6, "taps: {taps:?}");
    }

    #[test]
    fn taps_are_sorted_and_unique() {
        for algo in ALL {
            let m = CoeffMatrix::build(algo, 17, 5).unwrap();
            for taps in m.iter_rows() {
                for pair in taps.windows(2) {
                    assert!(pair[0].0 < pair[1].0, "{algo:?} taps not sorted: {taps:?}");
                }
            }
        }
    }

    #[test]
    fn apply_transpose_matches_dense_transpose() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bicubic, 10, 4).unwrap();
        let dense = m.to_dense();
        let y = [1.0, -2.0, 3.0, 0.5];
        let via_sparse = m.apply_transpose(&y);
        let mut via_dense = vec![0.0; 10];
        for i in 0..4 {
            for j in 0..10 {
                via_dense[j] += dense[i * 10 + j] * y[i];
            }
        }
        for (a, b) in via_sparse.iter().zip(via_dense.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_apply_matches_sparse_apply() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 12, 5).unwrap();
        let dense = m.to_dense();
        let x: Vec<f64> = (0..12).map(|i| (i as f64).sin() * 100.0).collect();
        let sparse_out = m.apply(&x);
        for i in 0..5 {
            let dense_out: f64 = (0..12).map(|j| dense[i * 12 + j] * x[j]).sum();
            assert!((sparse_out[i] - dense_out).abs() < 1e-9);
        }
    }

    #[test]
    fn max_column_influence_positive() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 8, 4).unwrap();
        assert!(m.max_column_influence() > 0.0);
    }

    #[test]
    fn apply_into_writes_buffer() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Nearest, 4, 2).unwrap();
        let mut out = vec![0.0; 2];
        m.apply_into(&[9.0, 8.0, 7.0, 6.0], &mut out);
        assert_eq!(out, vec![9.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn apply_panics_on_wrong_length() {
        let m = CoeffMatrix::build(ScaleAlgorithm::Nearest, 4, 2).unwrap();
        let _ = m.apply(&[1.0, 2.0]);
    }
}
