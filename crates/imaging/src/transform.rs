//! Lossless geometric transforms: flips, 90-degree rotations and
//! transposition.
//!
//! The dataset generator uses these for augmentation variety, and the test
//! suite uses them to assert symmetry properties of scalers, filters and
//! spectra (e.g. CSP counts are invariant under flips).

use crate::Image;

/// Mirrors an image left-right.
pub fn flip_horizontal(img: &Image) -> Image {
    let mut out = img.clone();
    let (w, h, c) = img.shape();
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                out.set(x, y, ch, img.get(w - 1 - x, y, ch));
            }
        }
    }
    out
}

/// Mirrors an image top-bottom.
pub fn flip_vertical(img: &Image) -> Image {
    let mut out = img.clone();
    let (w, h, c) = img.shape();
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                out.set(x, y, ch, img.get(x, h - 1 - y, ch));
            }
        }
    }
    out
}

/// Transposes an image (swaps x and y axes).
pub fn transpose(img: &Image) -> Image {
    let (w, h, c) = img.shape();
    let mut out = Image::zeros(h, w, img.channels());
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                out.set(y, x, ch, img.get(x, y, ch));
            }
        }
    }
    out
}

/// Rotates an image 90 degrees clockwise.
pub fn rotate90_cw(img: &Image) -> Image {
    flip_horizontal(&transpose(img))
}

/// Rotates an image 90 degrees counter-clockwise.
pub fn rotate90_ccw(img: &Image) -> Image {
    flip_vertical(&transpose(img))
}

/// Rotates an image 180 degrees.
pub fn rotate180(img: &Image) -> Image {
    flip_horizontal(&flip_vertical(img))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Channels;

    fn sample() -> Image {
        Image::from_fn_gray(3, 2, |x, y| (y * 3 + x) as f64)
    }

    #[test]
    fn flip_horizontal_mirrors_rows() {
        let out = flip_horizontal(&sample());
        assert_eq!(out.plane(0), &[2.0, 1.0, 0.0, 5.0, 4.0, 3.0]);
    }

    #[test]
    fn flip_vertical_mirrors_columns() {
        let out = flip_vertical(&sample());
        assert_eq!(out.plane(0), &[3.0, 4.0, 5.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn flips_are_involutions() {
        let img = Image::from_fn_gray(5, 4, |x, y| ((x * 13 + y * 7) % 37) as f64);
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
        assert_eq!(rotate180(&rotate180(&img)), img);
        assert_eq!(transpose(&transpose(&img)), img);
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let out = transpose(&sample());
        assert_eq!(out.width(), 2);
        assert_eq!(out.height(), 3);
        assert_eq!(out.get(0, 2, 0), 2.0); // (x=2, y=0) in the source
    }

    #[test]
    fn rotate90_cw_known_result() {
        // [0 1 2]      [3 0]
        // [3 4 5]  ->  [4 1]
        //              [5 2]
        let out = rotate90_cw(&sample());
        assert_eq!(out.width(), 2);
        assert_eq!(out.height(), 3);
        assert_eq!(out.plane(0), &[3.0, 0.0, 4.0, 1.0, 5.0, 2.0]);
    }

    #[test]
    fn rotate90_ccw_inverts_cw() {
        let img = Image::from_fn_gray(4, 3, |x, y| ((x + 2 * y) % 11) as f64);
        assert_eq!(rotate90_ccw(&rotate90_cw(&img)), img);
    }

    #[test]
    fn four_cw_rotations_are_identity() {
        let img = Image::from_fn_gray(4, 3, |x, y| ((x * y) % 7) as f64);
        let once = rotate90_cw(&img);
        let twice = rotate90_cw(&once);
        let thrice = rotate90_cw(&twice);
        assert_eq!(rotate90_cw(&thrice), img);
    }

    #[test]
    fn rgb_channels_move_together() {
        let img = Image::from_fn_rgb(2, 2, |x, y| [(y * 2 + x) as f64, 10.0, 20.0]);
        let out = rotate180(&img);
        assert_eq!(out.get(0, 0, 0), 3.0);
        assert_eq!(out.get(0, 0, 1), 10.0);
        assert_eq!(out.get(0, 0, 2), 20.0);
        assert_eq!(out.channels(), Channels::Rgb);
    }
}
