//! Image substrate for the Decamouflage reproduction.
//!
//! This crate provides everything the detection framework and the
//! image-scaling attack need from an imaging library, implemented from
//! scratch:
//!
//! * [`Image`] — an owned raster of `f64` samples (gray or RGB) with the
//!   `[0, 255]` convention of 8-bit imagery,
//! * [`scale`] — resampling kernels (nearest, bilinear, bicubic, area,
//!   Lanczos) with OpenCV-compatible half-pixel-center sampling, exposed both
//!   as direct resize operations and as sparse row/column coefficient
//!   matrices (the form the image-scaling attack consumes),
//! * [`filter`] — rank filters (minimum / median / maximum), separable
//!   convolution and Gaussian blur,
//! * [`codec`] — image containers: PGM/PPM and 24-bit BMP for artefacts,
//!   plus from-scratch PNG (full DEFLATE/zlib inflater underneath) and
//!   baseline JPEG for real-world corpora, with magic-byte sniffing and
//!   `decode_into` variants that fill recycled buffers,
//! * [`draw`] — simple shape rasterisation used by the synthetic dataset
//!   generator.
//!
//! # Example
//!
//! ```
//! use decamouflage_imaging::{Image, scale::{resize, ScaleAlgorithm}};
//!
//! # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
//! let img = Image::from_fn_gray(8, 8, |x, y| (x + y) as f64 * 10.0);
//! let small = resize(&img, 4, 4, ScaleAlgorithm::Bilinear)?;
//! assert_eq!((small.width(), small.height()), (4, 4));
//! # Ok(())
//! # }
//! ```

// The crate is unsafe-free except for the optional `simd` feature, whose
// `core::arch` intrinsics live behind `#[allow(unsafe_code)]` in `simd.rs`
// (forbid cannot be locally overridden, so the crate-level lint degrades
// to `deny` when the feature is on).
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod error;
mod geometry;
mod image;

pub mod transform;

pub mod codec;
pub mod draw;
pub mod filter;
pub mod scale;
pub mod simd;

pub use error::ImagingError;
pub use geometry::{Rect, Size};
pub use image::{Channels, Image};
