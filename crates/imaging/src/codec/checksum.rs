//! The two rolling checksums the real-world codecs verify: CRC-32
//! (ISO-HDLC polynomial, as used by PNG chunks) and Adler-32 (zlib
//! stream trailer). Both are incremental so chunked inputs — a PNG
//! chunk's type + data, a streamed zlib body — checksum without
//! concatenation.

/// The reflected CRC-32 polynomial (0xEDB88320) lookup table, computed
/// at compile time — no lazy initialisation on the decode path.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// Feeds `data` into a running CRC-32. Start from [`CRC_INIT`] and
/// finish with [`crc32_finish`]; [`crc32`] wraps the three steps for
/// one-shot inputs.
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let mut c = crc;
    for &byte in data {
        c = CRC_TABLE[((c ^ u32::from(byte)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Initial value of a running CRC-32.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Finalises a running CRC-32.
pub const fn crc32_finish(crc: u32) -> u32 {
    crc ^ 0xFFFF_FFFF
}

/// One-shot CRC-32 of `data` (the value PNG stores after each chunk).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, data))
}

/// Largest prime below 2^16 — the Adler-32 modulus.
const ADLER_MOD: u32 = 65_521;

/// Feeds `data` into a running Adler-32 (start from [`ADLER_INIT`]).
pub fn adler32_update(adler: u32, data: &[u8]) -> u32 {
    let mut a = adler & 0xFFFF;
    let mut b = adler >> 16;
    // 5552 is the largest n with 255*n*(n+1)/2 + (n+1)*(65520) < 2^32:
    // sums stay in u32 between reductions.
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= ADLER_MOD;
        b %= ADLER_MOD;
    }
    (b << 16) | a
}

/// Initial value of a running Adler-32.
pub const ADLER_INIT: u32 = 1;

/// One-shot Adler-32 of `data` (the value zlib stores after the
/// compressed stream).
pub fn adler32(data: &[u8]) -> u32 {
    adler32_update(ADLER_INIT, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_reference_vectors() {
        // Pinned reference values (ISO-HDLC CRC-32, i.e. zlib's crc32()).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"IEND"), 0xAE42_6082, "the CRC every PNG ends with");
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_is_incremental() {
        let whole = crc32(b"IHDRwidtheight");
        let split = crc32_finish(crc32_update(crc32_update(CRC_INIT, b"IHDR"), b"widtheight"));
        assert_eq!(whole, split);
    }

    #[test]
    fn adler32_reference_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(adler32(b"123456789"), 0x091E_01DE);
    }

    #[test]
    fn adler32_is_incremental_and_handles_long_runs() {
        let data = vec![0xFFu8; 20_000];
        let whole = adler32(&data);
        let split = adler32_update(adler32_update(ADLER_INIT, &data[..7_001]), &data[7_001..]);
        assert_eq!(whole, split);
    }
}
