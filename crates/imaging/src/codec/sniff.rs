//! Magic-byte format identification and one-call auto-decoding.
//!
//! [`sniff`] is the single source of truth for "what format is this
//! buffer" — `DirectorySource`, the serve body path, and the CLI all
//! dispatch through it instead of trusting file extensions.

use crate::codec::SampleAlloc;
use crate::codec::{decode_bmp_into, decode_jpeg_into, decode_png_into, decode_pnm_into};
use crate::{Image, ImagingError};

/// A decodable image container, identified by magic bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageFormat {
    /// Uncompressed 24-bit Windows BMP.
    Bmp,
    /// Netpbm (binary or ASCII PGM/PPM).
    Pnm,
    /// PNG (8-bit gray/RGB/palette/alpha, via the in-house inflate).
    Png,
    /// Baseline sequential JPEG.
    Jpeg,
}

impl ImageFormat {
    /// Stable lowercase name, used as a telemetry label and in CLI
    /// output ("bmp", "pnm", "png", "jpeg").
    pub const fn name(self) -> &'static str {
        match self {
            Self::Bmp => "bmp",
            Self::Pnm => "pnm",
            Self::Png => "png",
            Self::Jpeg => "jpeg",
        }
    }

    /// Every format, in sniff-dispatch order.
    pub const ALL: [ImageFormat; 4] = [Self::Bmp, Self::Pnm, Self::Png, Self::Jpeg];
}

/// Identifies the image format of `bytes` by magic number. Returns
/// `None` when no known codec claims the buffer.
pub fn sniff(bytes: &[u8]) -> Option<ImageFormat> {
    if bytes.len() >= 8 && bytes[..8] == [137, 80, 78, 71, 13, 10, 26, 10] {
        return Some(ImageFormat::Png);
    }
    if bytes.len() >= 2 && bytes[0] == 0xFF && bytes[1] == 0xD8 {
        return Some(ImageFormat::Jpeg);
    }
    if bytes.len() >= 2 && &bytes[..2] == b"BM" {
        return Some(ImageFormat::Bmp);
    }
    if bytes.len() >= 2 && bytes[0] == b'P' && (b'1'..=b'6').contains(&bytes[1]) {
        return Some(ImageFormat::Pnm);
    }
    None
}

/// Sniffs and decodes in one call. See [`decode_auto_into`].
///
/// # Errors
///
/// Same as [`decode_auto_into`].
pub fn decode_auto(bytes: &[u8]) -> Result<(ImageFormat, Image), ImagingError> {
    decode_auto_into(bytes, &mut |n| vec![0.0; n])
}

/// Sniffs `bytes` and decodes with the matching codec, obtaining the
/// sample buffer from `alloc` so streaming callers can recycle
/// `BufferPool` buffers. Returns the sniffed format alongside the
/// image so callers can label telemetry per format.
///
/// # Errors
///
/// [`ImagingError::Unsupported`] when no codec claims the magic bytes
/// (or a claimed format uses an unsupported feature);
/// [`ImagingError::Decode`] when the claimed format is structurally
/// broken.
pub fn decode_auto_into(
    bytes: &[u8],
    alloc: SampleAlloc<'_>,
) -> Result<(ImageFormat, Image), ImagingError> {
    let format = sniff(bytes).ok_or_else(|| ImagingError::Unsupported {
        message: "no known image magic bytes".to_string(),
    })?;
    let image = match format {
        ImageFormat::Bmp => decode_bmp_into(bytes, alloc)?,
        ImageFormat::Pnm => decode_pnm_into(bytes, alloc)?,
        ImageFormat::Png => decode_png_into(bytes, alloc)?,
        ImageFormat::Jpeg => decode_jpeg_into(bytes, alloc)?,
    };
    Ok((format, image))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_bmp, encode_jpeg, encode_pgm, encode_png, encode_ppm};
    use crate::Image;

    fn sample() -> Image {
        Image::from_fn_rgb(9, 6, |x, y| {
            [(x * 30 % 256) as f64, (y * 40 % 256) as f64, ((x + y) * 20 % 256) as f64]
        })
    }

    #[test]
    fn sniff_identifies_every_encoder_output() {
        let image = sample();
        assert_eq!(sniff(&encode_bmp(&image)), Some(ImageFormat::Bmp));
        assert_eq!(sniff(&encode_ppm(&image)), Some(ImageFormat::Pnm));
        assert_eq!(sniff(&encode_pgm(&image)), Some(ImageFormat::Pnm));
        assert_eq!(sniff(&encode_png(&image)), Some(ImageFormat::Png));
        assert_eq!(sniff(&encode_jpeg(&image, 90)), Some(ImageFormat::Jpeg));
    }

    #[test]
    fn sniff_rejects_non_images() {
        assert_eq!(sniff(b""), None);
        assert_eq!(sniff(b"GIF89a"), None);
        assert_eq!(sniff(b"Pq"), None);
        assert_eq!(sniff(&[0x00, 0x01, 0x02]), None);
        // A PNG signature cut short is not a PNG.
        assert_eq!(sniff(&[137, 80, 78]), None);
    }

    #[test]
    fn decode_auto_round_trips_lossless_formats() {
        let image = sample();
        let (format, decoded) = decode_auto(&encode_png(&image)).unwrap();
        assert_eq!(format, ImageFormat::Png);
        assert_eq!(decoded.planes(), image.planes());
        let (format, decoded) = decode_auto(&encode_bmp(&image)).unwrap();
        assert_eq!(format, ImageFormat::Bmp);
        assert_eq!(decoded.planes(), image.planes());
    }

    #[test]
    fn unknown_magic_is_a_typed_unsupported_error() {
        let err = decode_auto(b"definitely not an image").unwrap_err();
        assert!(matches!(err, ImagingError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn names_are_stable_labels() {
        let names: Vec<&str> = ImageFormat::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["bmp", "pnm", "png", "jpeg"]);
    }
}
