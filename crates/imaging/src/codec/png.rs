//! From-scratch PNG codec on top of the in-house zlib.
//!
//! Decode walks the chunk stream verifying every CRC-32, inflates the
//! concatenated IDAT payload through [`zlib_decompress`] with the
//! exact expected raw size (so a forged IDAT cannot balloon memory),
//! reverses all five scanline filters, and handles 8-bit grayscale,
//! RGB, palette, gray+alpha and RGBA, interlaced (Adam7) or not. Alpha
//! is stripped on output — the detection engine consumes opaque
//! [`Channels::Gray`]/[`Channels::Rgb`] images. Anything the format
//! allows but we deliberately don't speak (1/2/4/16-bit depths, other
//! color types) is a typed [`ImagingError::Unsupported`]; anything
//! structurally broken is [`ImagingError::Decode`]. Neither path may
//! panic: the totality suites feed this decoder truncations, bit
//! flips, and raw garbage.
//!
//! Encode writes non-interlaced 8-bit grayscale or RGB with the Paeth
//! filter on every row — round-tripping through the decoder therefore
//! exercises the hardest unfilter path, not just filter type 0.

use crate::codec::checksum::{crc32_finish, crc32_update, CRC_INIT};
use crate::codec::inflate::{zlib_compress, zlib_decompress};
use crate::codec::SampleAlloc;
use crate::{Channels, Image, ImagingError};

const SIGNATURE: [u8; 8] = [137, 80, 78, 71, 13, 10, 26, 10];

/// Decoded-pixel budget: 64 Mpx (a 8192x8192 image) — far above any
/// corpus image, far below what a hostile IHDR could declare.
const MAX_PIXELS: u64 = 1 << 26;

fn corrupt(message: impl Into<String>) -> ImagingError {
    ImagingError::Decode { message: message.into() }
}

fn unsupported(message: impl Into<String>) -> ImagingError {
    ImagingError::Unsupported { message: message.into() }
}

// ---------------------------------------------------------------------------
// Header / chunk model
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum ColorType {
    Gray,
    Rgb,
    Palette,
    GrayAlpha,
    RgbAlpha,
}

impl ColorType {
    fn from_code(code: u8) -> Result<Self, ImagingError> {
        match code {
            0 => Ok(Self::Gray),
            2 => Ok(Self::Rgb),
            3 => Ok(Self::Palette),
            4 => Ok(Self::GrayAlpha),
            6 => Ok(Self::RgbAlpha),
            other => Err(corrupt(format!("invalid png color type {other}"))),
        }
    }

    /// Bytes per pixel in the raw (filtered) scanlines at bit depth 8.
    fn raw_channels(self) -> usize {
        match self {
            Self::Gray | Self::Palette => 1,
            Self::GrayAlpha => 2,
            Self::Rgb => 3,
            Self::RgbAlpha => 4,
        }
    }

    /// Channel layout after palette expansion / alpha stripping.
    fn output_channels(self) -> Channels {
        match self {
            Self::Gray | Self::GrayAlpha => Channels::Gray,
            Self::Rgb | Self::Palette | Self::RgbAlpha => Channels::Rgb,
        }
    }
}

struct Header {
    width: usize,
    height: usize,
    color: ColorType,
    interlaced: bool,
}

fn parse_ihdr(data: &[u8]) -> Result<Header, ImagingError> {
    if data.len() != 13 {
        return Err(corrupt(format!("IHDR must be 13 bytes, got {}", data.len())));
    }
    let width = u32::from_be_bytes(data[0..4].try_into().expect("sliced"));
    let height = u32::from_be_bytes(data[4..8].try_into().expect("sliced"));
    if width == 0 || height == 0 {
        return Err(corrupt(format!("png declares zero dimension {width}x{height}")));
    }
    if u64::from(width) * u64::from(height) > MAX_PIXELS {
        return Err(corrupt(format!(
            "png declares {width}x{height}, past the {MAX_PIXELS}-pixel budget"
        )));
    }
    let bit_depth = data[8];
    let color = ColorType::from_code(data[9])?;
    if bit_depth != 8 {
        return Err(unsupported(format!("png bit depth {bit_depth} (only 8 is supported)")));
    }
    if data[10] != 0 {
        return Err(corrupt(format!("invalid png compression method {}", data[10])));
    }
    if data[11] != 0 {
        return Err(corrupt(format!("invalid png filter method {}", data[11])));
    }
    let interlaced = match data[12] {
        0 => false,
        1 => true,
        other => return Err(corrupt(format!("invalid png interlace method {other}"))),
    };
    Ok(Header { width: width as usize, height: height as usize, color, interlaced })
}

// ---------------------------------------------------------------------------
// Adam7 interlace geometry
// ---------------------------------------------------------------------------

const ADAM7_X_START: [usize; 7] = [0, 4, 0, 2, 0, 1, 0];
const ADAM7_Y_START: [usize; 7] = [0, 0, 4, 0, 2, 0, 1];
const ADAM7_X_STEP: [usize; 7] = [8, 8, 4, 4, 2, 2, 1];
const ADAM7_Y_STEP: [usize; 7] = [8, 8, 8, 4, 4, 2, 2];

/// Width and height (in pixels) of one Adam7 pass; (0, 0) if empty.
fn pass_size(pass: usize, width: usize, height: usize) -> (usize, usize) {
    let w = (width + ADAM7_X_STEP[pass] - 1 - ADAM7_X_START[pass]) / ADAM7_X_STEP[pass];
    let h = (height + ADAM7_Y_STEP[pass] - 1 - ADAM7_Y_START[pass]) / ADAM7_Y_STEP[pass];
    if width > ADAM7_X_START[pass] && height > ADAM7_Y_START[pass] {
        (w, h)
    } else {
        (0, 0)
    }
}

/// Total raw (filter byte + filtered scanline) size across all passes.
fn expected_raw_len(header: &Header) -> usize {
    let bpp = header.color.raw_channels();
    if header.interlaced {
        (0..7)
            .map(|pass| {
                let (w, h) = pass_size(pass, header.width, header.height);
                if w == 0 {
                    0
                } else {
                    (1 + w * bpp) * h
                }
            })
            .sum()
    } else {
        (1 + header.width * bpp) * header.height
    }
}

// ---------------------------------------------------------------------------
// Scanline unfiltering
// ---------------------------------------------------------------------------

fn paeth(a: u8, b: u8, c: u8) -> u8 {
    let p = i32::from(a) + i32::from(b) - i32::from(c);
    let pa = (p - i32::from(a)).abs();
    let pb = (p - i32::from(b)).abs();
    let pc = (p - i32::from(c)).abs();
    if pa <= pb && pa <= pc {
        a
    } else if pb <= pc {
        b
    } else {
        c
    }
}

/// Reverses one sub-image's filters in place. `raw` is
/// `(1 + stride) * rows` bytes: each row is a filter-type byte followed
/// by `stride` filtered bytes. On return the pixel bytes of row `y`
/// live at `raw[y * (1 + stride) + 1 ..][..stride]`.
fn unfilter(raw: &mut [u8], rows: usize, stride: usize, bpp: usize) -> Result<(), ImagingError> {
    let line = 1 + stride;
    for y in 0..rows {
        let (before, current) = raw.split_at_mut(y * line);
        let prior =
            if y == 0 { &[][..] } else { &before[(y - 1) * line + 1..(y - 1) * line + 1 + stride] };
        let filter = current[0];
        let row = &mut current[1..1 + stride];
        match filter {
            0 => {}
            1 => {
                for i in bpp..stride {
                    row[i] = row[i].wrapping_add(row[i - bpp]);
                }
            }
            2 => {
                for (i, byte) in row.iter_mut().enumerate().take(stride) {
                    let up = prior.get(i).copied().unwrap_or(0);
                    *byte = byte.wrapping_add(up);
                }
            }
            3 => {
                for i in 0..stride {
                    let left = if i >= bpp { u16::from(row[i - bpp]) } else { 0 };
                    let up = u16::from(prior.get(i).copied().unwrap_or(0));
                    row[i] = row[i].wrapping_add(((left + up) / 2) as u8);
                }
            }
            4 => {
                for i in 0..stride {
                    let left = if i >= bpp { row[i - bpp] } else { 0 };
                    let up = prior.get(i).copied().unwrap_or(0);
                    let up_left =
                        if i >= bpp { prior.get(i - bpp).copied().unwrap_or(0) } else { 0 };
                    row[i] = row[i].wrapping_add(paeth(left, up, up_left));
                }
            }
            other => return Err(corrupt(format!("invalid png filter type {other}"))),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

/// Decodes a PNG into a fresh allocation. See [`decode_png_into`].
///
/// # Errors
///
/// [`ImagingError::Decode`] for structural corruption,
/// [`ImagingError::Unsupported`] for valid-but-unspoken features.
pub fn decode_png(bytes: &[u8]) -> Result<Image, ImagingError> {
    decode_png_into(bytes, &mut |n| vec![0.0; n])
}

/// Decodes a PNG, obtaining the final sample buffer from `alloc` so
/// streaming callers can recycle `BufferPool` buffers.
///
/// # Errors
///
/// [`ImagingError::Decode`] for structural corruption (bad signature,
/// chunk CRC mismatch, zlib errors, filter violations, size lies),
/// [`ImagingError::Unsupported`] for non-8-bit depths.
pub fn decode_png_into(bytes: &[u8], alloc: SampleAlloc<'_>) -> Result<Image, ImagingError> {
    if bytes.len() < SIGNATURE.len() || bytes[..SIGNATURE.len()] != SIGNATURE {
        return Err(corrupt("missing png signature"));
    }
    let mut at = SIGNATURE.len();
    let mut header: Option<Header> = None;
    let mut palette: Option<Vec<[u8; 3]>> = None;
    let mut idat: Vec<u8> = Vec::new();
    let mut seen_iend = false;

    while at < bytes.len() {
        if bytes.len() - at < 12 {
            return Err(corrupt("truncated png chunk header"));
        }
        let length = u32::from_be_bytes(bytes[at..at + 4].try_into().expect("sliced")) as usize;
        let kind = &bytes[at + 4..at + 8];
        if bytes.len() - at - 12 < length {
            return Err(corrupt(format!(
                "png chunk {} declares {length} bytes past the end of input",
                String::from_utf8_lossy(kind)
            )));
        }
        let data = &bytes[at + 8..at + 8 + length];
        let stored_crc = u32::from_be_bytes(
            bytes[at + 8 + length..at + 12 + length].try_into().expect("sliced"),
        );
        let actual_crc = crc32_finish(crc32_update(crc32_update(CRC_INIT, kind), data));
        if stored_crc != actual_crc {
            return Err(corrupt(format!(
                "png chunk {} crc mismatch (stored {stored_crc:08x}, computed {actual_crc:08x})",
                String::from_utf8_lossy(kind)
            )));
        }
        at += 12 + length;

        match kind {
            b"IHDR" => {
                if header.is_some() {
                    return Err(corrupt("duplicate IHDR chunk"));
                }
                header = Some(parse_ihdr(data)?);
            }
            b"PLTE" => {
                if length == 0 || !length.is_multiple_of(3) || length > 256 * 3 {
                    return Err(corrupt(format!("PLTE length {length} is not a palette")));
                }
                palette = Some(data.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect());
            }
            b"IDAT" => {
                if header.is_none() {
                    return Err(corrupt("IDAT before IHDR"));
                }
                idat.extend_from_slice(data);
            }
            b"IEND" => {
                seen_iend = true;
                break;
            }
            _ => {
                // Ancillary chunks (lowercase first letter) are skippable;
                // an unknown *critical* chunk means we cannot render.
                if kind[0] & 0x20 == 0 {
                    return Err(unsupported(format!(
                        "critical png chunk {}",
                        String::from_utf8_lossy(kind)
                    )));
                }
            }
        }
    }
    if !seen_iend {
        return Err(corrupt("png ended without IEND"));
    }
    let header = header.ok_or_else(|| corrupt("png has no IHDR"))?;
    if idat.is_empty() {
        return Err(corrupt("png has no IDAT data"));
    }
    if header.color == ColorType::Palette && palette.is_none() {
        return Err(corrupt("palette png has no PLTE chunk"));
    }

    let raw_len = expected_raw_len(&header);
    let mut raw = zlib_decompress(&idat, raw_len)?;
    if raw.len() != raw_len {
        return Err(corrupt(format!("png pixel data is {} bytes, expected {raw_len}", raw.len())));
    }

    let bpp = header.color.raw_channels();
    // Unfiltered interleaved bytes of the full image, `bpp` per pixel.
    let mut pixels = vec![0u8; header.width * header.height * bpp];
    if header.interlaced {
        let mut offset = 0;
        for pass in 0..7 {
            let (w, h) = pass_size(pass, header.width, header.height);
            if w == 0 {
                continue;
            }
            let stride = w * bpp;
            let sub = &mut raw[offset..offset + (1 + stride) * h];
            unfilter(sub, h, stride, bpp)?;
            for y in 0..h {
                let row = &sub[y * (1 + stride) + 1..y * (1 + stride) + 1 + stride];
                let target_y = ADAM7_Y_START[pass] + y * ADAM7_Y_STEP[pass];
                for x in 0..w {
                    let target_x = ADAM7_X_START[pass] + x * ADAM7_X_STEP[pass];
                    let dst = (target_y * header.width + target_x) * bpp;
                    pixels[dst..dst + bpp].copy_from_slice(&row[x * bpp..(x + 1) * bpp]);
                }
            }
            offset += (1 + stride) * h;
        }
    } else {
        let stride = header.width * bpp;
        unfilter(&mut raw, header.height, stride, bpp)?;
        for y in 0..header.height {
            let row = &raw[y * (1 + stride) + 1..y * (1 + stride) + 1 + stride];
            pixels[y * stride..(y + 1) * stride].copy_from_slice(row);
        }
    }

    // Expand to planes inside recycled buffers: one per-plane scatter pass
    // over the unfiltered wire bytes.
    let channels = header.color.output_channels();
    let n = header.width * header.height;
    let mut planes: Vec<Vec<f64>> = (0..channels.count())
        .map(|_| {
            let mut p = alloc(n);
            p.resize(n, 0.0);
            p
        })
        .collect();
    match header.color {
        ColorType::Gray => {
            for (dst, &byte) in planes[0].iter_mut().zip(pixels.iter()) {
                *dst = f64::from(byte);
            }
        }
        ColorType::Rgb => {
            for (i, px) in pixels.chunks_exact(3).enumerate() {
                planes[0][i] = f64::from(px[0]);
                planes[1][i] = f64::from(px[1]);
                planes[2][i] = f64::from(px[2]);
            }
        }
        ColorType::GrayAlpha => {
            for (dst, pair) in planes[0].iter_mut().zip(pixels.chunks_exact(2)) {
                *dst = f64::from(pair[0]);
            }
        }
        ColorType::RgbAlpha => {
            for (i, quad) in pixels.chunks_exact(4).enumerate() {
                planes[0][i] = f64::from(quad[0]);
                planes[1][i] = f64::from(quad[1]);
                planes[2][i] = f64::from(quad[2]);
            }
        }
        ColorType::Palette => {
            let palette = palette.expect("checked above");
            for (i, &index) in pixels.iter().enumerate() {
                let entry = palette.get(index as usize).ok_or_else(|| {
                    corrupt(format!(
                        "palette index {index} out of range ({} entries)",
                        palette.len()
                    ))
                })?;
                planes[0][i] = f64::from(entry[0]);
                planes[1][i] = f64::from(entry[1]);
                planes[2][i] = f64::from(entry[2]);
            }
        }
    }
    Image::from_planes(header.width, header.height, channels, planes)
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

fn chunk(out: &mut Vec<u8>, kind: &[u8; 4], data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(data);
    let crc = crc32_finish(crc32_update(crc32_update(CRC_INIT, kind), data));
    out.extend_from_slice(&crc.to_be_bytes());
}

/// Encodes an image as a non-interlaced 8-bit PNG (color type 0 for
/// grayscale, 2 for RGB), Paeth-filtering every scanline. Samples are
/// rounded and clamped to `[0, 255]` exactly as [`Image::to_u8_vec`].
pub fn encode_png(image: &Image) -> Vec<u8> {
    let bpp = image.channels().count();
    let color_type: u8 = match image.channels() {
        Channels::Gray => 0,
        Channels::Rgb => 2,
    };
    let bytes = image.to_u8_vec();
    let stride = image.width() * bpp;

    // Paeth-filter every row (filter type 4).
    let mut raw = Vec::with_capacity((1 + stride) * image.height());
    let zero_row = vec![0u8; stride];
    for y in 0..image.height() {
        let row = &bytes[y * stride..(y + 1) * stride];
        let prior: &[u8] = if y == 0 { &zero_row } else { &bytes[(y - 1) * stride..y * stride] };
        raw.push(4u8);
        for i in 0..stride {
            let left = if i >= bpp { row[i - bpp] } else { 0 };
            let up = prior[i];
            let up_left = if i >= bpp { prior[i - bpp] } else { 0 };
            raw.push(row[i].wrapping_sub(paeth(left, up, up_left)));
        }
    }

    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&(image.width() as u32).to_be_bytes());
    ihdr.extend_from_slice(&(image.height() as u32).to_be_bytes());
    ihdr.extend_from_slice(&[8, color_type, 0, 0, 0]);

    let mut out = Vec::new();
    out.extend_from_slice(&SIGNATURE);
    chunk(&mut out, b"IHDR", &ihdr);
    chunk(&mut out, b"IDAT", &zlib_compress(&raw));
    chunk(&mut out, b"IEND", &[]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_rgb(width: usize, height: usize) -> Image {
        let mut data = Vec::with_capacity(width * height * 3);
        for y in 0..height {
            for x in 0..width {
                data.push(((x * 37 + y * 11) % 256) as f64);
                data.push(((x * 5 + y * 71) % 256) as f64);
                data.push(((x * 13 + y * 29 + 97) % 256) as f64);
            }
        }
        Image::from_interleaved(width, height, Channels::Rgb, data).unwrap()
    }

    fn gradient_gray(width: usize, height: usize) -> Image {
        let data = (0..width * height).map(|i| ((i * 97 + 13) % 256) as f64).collect::<Vec<_>>();
        Image::from_gray_plane(width, height, data).unwrap()
    }

    #[test]
    fn round_trips_rgb_and_gray() {
        for image in [gradient_rgb(17, 9), gradient_rgb(1, 1), gradient_rgb(64, 64)] {
            let decoded = decode_png(&encode_png(&image)).unwrap();
            assert_eq!(decoded.width(), image.width());
            assert_eq!(decoded.height(), image.height());
            assert_eq!(decoded.channels(), Channels::Rgb);
            assert_eq!(decoded.planes(), image.planes());
        }
        for image in [gradient_gray(5, 31), gradient_gray(8, 8)] {
            let decoded = decode_png(&encode_png(&image)).unwrap();
            assert_eq!(decoded.channels(), Channels::Gray);
            assert_eq!(decoded.planes(), image.planes());
        }
    }

    #[test]
    fn decode_into_uses_the_provided_allocator() {
        let image = gradient_rgb(6, 4);
        let png = encode_png(&image);
        let mut calls = 0usize;
        let decoded = decode_png_into(&png, &mut |n| {
            calls += 1;
            assert_eq!(n, 6 * 4, "one request per plane, each w*h samples");
            Vec::with_capacity(n)
        })
        .unwrap();
        assert_eq!(calls, 3);
        assert_eq!(decoded.planes(), image.planes());
    }

    #[test]
    fn signature_and_crc_are_enforced() {
        let png = encode_png(&gradient_gray(4, 4));
        assert!(matches!(
            decode_png(b"not a png at all").unwrap_err(),
            ImagingError::Decode { .. }
        ));
        // Flip one bit inside the IHDR payload: its CRC must catch it.
        let mut bad = png.clone();
        bad[SIGNATURE.len() + 8] ^= 0x01;
        let err = decode_png(&bad).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "{err}");
    }

    #[test]
    fn truncations_never_panic() {
        let png = encode_png(&gradient_rgb(9, 7));
        for cut in 0..png.len() {
            assert!(decode_png(&png[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn unsupported_features_are_typed() {
        // Patch the encoder's IHDR to declare 16-bit depth and fix up
        // the CRC so the error is Unsupported, not a CRC failure.
        let mut png = encode_png(&gradient_gray(4, 4));
        let ihdr_data = SIGNATURE.len() + 8;
        png[ihdr_data + 8] = 16;
        let crc = crc32_finish(crc32_update(
            crc32_update(CRC_INIT, b"IHDR"),
            &png[ihdr_data..ihdr_data + 13],
        ));
        png[ihdr_data + 13..ihdr_data + 17].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(decode_png(&png).unwrap_err(), ImagingError::Unsupported { .. }));
    }

    #[test]
    fn oversized_declarations_are_rejected_before_allocation() {
        let mut png = encode_png(&gradient_gray(4, 4));
        let ihdr_data = SIGNATURE.len() + 8;
        png[ihdr_data..ihdr_data + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        png[ihdr_data + 4..ihdr_data + 8].copy_from_slice(&u32::MAX.to_be_bytes());
        let crc = crc32_finish(crc32_update(
            crc32_update(CRC_INIT, b"IHDR"),
            &png[ihdr_data..ihdr_data + 13],
        ));
        png[ihdr_data + 13..ihdr_data + 17].copy_from_slice(&crc.to_be_bytes());
        let err = decode_png(&png).unwrap_err();
        assert!(err.to_string().contains("pixel budget"), "{err}");
    }

    #[test]
    fn adam7_pass_geometry_matches_the_spec() {
        // An 8x8 image: pass sizes from the PNG specification's figure.
        let sizes: Vec<(usize, usize)> = (0..7).map(|p| pass_size(p, 8, 8)).collect();
        assert_eq!(sizes, vec![(1, 1), (1, 1), (2, 1), (2, 2), (4, 2), (4, 4), (8, 4)]);
        // Degenerate 1x1: only pass 0 is non-empty.
        let tiny: Vec<(usize, usize)> = (0..7).map(|p| pass_size(p, 1, 1)).collect();
        assert_eq!(tiny, vec![(1, 1), (0, 0), (0, 0), (0, 0), (0, 0), (0, 0), (0, 0)]);
        let raw = expected_raw_len(&Header {
            width: 8,
            height: 8,
            color: ColorType::Gray,
            interlaced: true,
        });
        // Sum over passes of (1 + w) * h for the sizes above.
        assert_eq!(raw, 2 + 2 + 3 + 6 + 10 + 20 + 36);
    }
}
