//! From-scratch DEFLATE (RFC 1951) and zlib (RFC 1950), dependency-free.
//!
//! The decode side is a complete inflater — stored blocks, fixed and
//! dynamic Huffman blocks, and the 32 KiB sliding-window copy — driven
//! bit-serially from a canonical-code table (the `puff` algorithm:
//! per-length counts plus a symbol table, no precomputed LUT). Every
//! structural violation a hostile stream can express (oversubscribed
//! code sets, distances past the window, lengths past the output cap,
//! truncation at any bit) maps to a typed [`ImagingError::Decode`] —
//! the totality fuzz suite drives mutated and random streams through
//! here and a panic is a test failure.
//!
//! The encode side is deliberately small: one greedy LZ77 pass
//! (3-byte-prefix hash chains, 32 KiB window, 258-byte matches) emitted
//! as a single fixed-Huffman block. That is enough for PNG export to
//! produce genuinely compressed files, and — because every encoded
//! stream round-trips through this module's own inflater in the
//! property suites — it doubles as a relentless cross-check of the
//! decoder's match-copy path.

use crate::codec::checksum::{adler32, adler32_update, ADLER_INIT};
use crate::ImagingError;

fn corrupt(message: impl Into<String>) -> ImagingError {
    ImagingError::Decode { message: message.into() }
}

// ---------------------------------------------------------------------------
// Bit reader (LSB-first, as DEFLATE packs its bits)
// ---------------------------------------------------------------------------

struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte to load into the accumulator.
    next: usize,
    /// Pending bits, LSB first.
    acc: u64,
    /// Number of valid bits in `acc`.
    have: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, next: 0, acc: 0, have: 0 }
    }

    #[inline]
    fn refill(&mut self) {
        while self.have <= 56 && self.next < self.bytes.len() {
            self.acc |= u64::from(self.bytes[self.next]) << self.have;
            self.have += 8;
            self.next += 1;
        }
    }

    /// Takes `n` bits (n <= 32), LSB-first.
    #[inline]
    fn take(&mut self, n: u32) -> Result<u32, ImagingError> {
        if self.have < n {
            self.refill();
            if self.have < n {
                return Err(corrupt("deflate stream truncated"));
            }
        }
        let value = (self.acc & ((1u64 << n) - 1)) as u32;
        self.acc >>= n;
        self.have -= n;
        Ok(value)
    }

    /// Takes one bit.
    #[inline]
    fn bit(&mut self) -> Result<u32, ImagingError> {
        self.take(1)
    }

    /// Discards bits up to the next byte boundary (stored-block entry).
    fn align(&mut self) {
        let drop = self.have % 8;
        self.acc >>= drop;
        self.have -= drop;
    }

    /// Number of whole input bytes consumed so far (any partially-read
    /// byte counts as consumed).
    fn bytes_consumed(&self) -> usize {
        self.next - (self.have / 8) as usize
    }

    /// Copies `n` aligned bytes straight from the input (stored blocks).
    /// Must be byte-aligned (`align` first).
    fn copy_aligned(&mut self, n: usize, out: &mut Vec<u8>) -> Result<(), ImagingError> {
        debug_assert_eq!(self.have % 8, 0);
        let mut remaining = n;
        // Drain bytes already staged in the accumulator.
        while remaining > 0 && self.have >= 8 {
            out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.have -= 8;
            remaining -= 1;
        }
        if self.next + remaining > self.bytes.len() {
            return Err(corrupt("stored block truncated"));
        }
        out.extend_from_slice(&self.bytes[self.next..self.next + remaining]);
        self.next += remaining;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Canonical Huffman decoding
// ---------------------------------------------------------------------------

/// Maximum bits in a DEFLATE code.
const MAX_BITS: usize = 15;

/// A canonical Huffman code set: per-length symbol counts plus the
/// symbols ordered by (code length, symbol value). Decoding walks the
/// code space one bit at a time — O(length) per symbol, no table memory.
struct Huffman {
    counts: [u16; MAX_BITS + 1],
    symbols: Vec<u16>,
}

impl Huffman {
    /// Builds the code set from per-symbol code lengths (0 = unused).
    ///
    /// Oversubscribed length sets are rejected here; *incomplete* sets
    /// are representable (dynamic blocks legitimately use one-code
    /// distance trees) and surface as decode errors only if the missing
    /// codes are actually referenced.
    fn new(lengths: &[u8]) -> Result<Self, ImagingError> {
        let mut counts = [0u16; MAX_BITS + 1];
        for &len in lengths {
            if len as usize > MAX_BITS {
                return Err(corrupt(format!("huffman code length {len} exceeds 15")));
            }
            counts[len as usize] += 1;
        }
        // Kraft check: the code space must never go negative.
        let mut left = 1i32;
        for &count in &counts[1..=MAX_BITS] {
            left = (left << 1) - i32::from(count);
            if left < 0 {
                return Err(corrupt("oversubscribed huffman code set"));
            }
        }
        // Offsets of the first symbol of each length in `symbols`.
        let mut offsets = [0usize; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offsets[len + 1] = offsets[len] + counts[len] as usize;
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l != 0).count()];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize]] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Self { counts, symbols })
    }

    /// Decodes one symbol from `reader`.
    fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, ImagingError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=MAX_BITS {
            code |= reader.bit()? as i32;
            let count = i32::from(self.counts[len]);
            if code - first < count {
                return Ok(self.symbols[(index + code - first) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(corrupt("invalid huffman code"))
    }
}

// ---------------------------------------------------------------------------
// DEFLATE symbol tables (RFC 1951 §3.2.5)
// ---------------------------------------------------------------------------

/// Base match lengths for litlen symbols 257..=285.
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for litlen symbols 257..=285.
const LENGTH_EXTRA: [u8; 29] =
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];
/// Base distances for distance symbols 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for distance symbols 0..=29.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which dynamic-block code-length code lengths are stored.
const CLEN_ORDER: [usize; 19] = [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

fn fixed_litlen() -> Huffman {
    let mut lengths = [0u8; 288];
    for (symbol, len) in lengths.iter_mut().enumerate() {
        *len = match symbol {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    Huffman::new(&lengths).expect("fixed litlen code set is well-formed")
}

fn fixed_dist() -> Huffman {
    Huffman::new(&[5u8; 30]).expect("fixed distance code set is well-formed")
}

// ---------------------------------------------------------------------------
// Inflate
// ---------------------------------------------------------------------------

/// Decompresses a raw DEFLATE stream, erroring if the output would
/// exceed `max_out` bytes (the zip-bomb guard: callers that know the
/// decoded size — PNG does — pass it exactly).
///
/// Returns the output and the number of input bytes consumed.
///
/// # Errors
///
/// [`ImagingError::Decode`] for any structural violation: truncation,
/// bad block types, oversubscribed or invalid Huffman codes, distances
/// reaching before the start of output, or output past `max_out`.
pub fn inflate(data: &[u8], max_out: usize) -> Result<(Vec<u8>, usize), ImagingError> {
    let mut reader = BitReader::new(data);
    let mut out: Vec<u8> = Vec::new();
    loop {
        let last = reader.bit()? == 1;
        match reader.take(2)? {
            0 => {
                reader.align();
                let len = reader.take(16)? as usize;
                let nlen = reader.take(16)? as usize;
                if len != (!nlen & 0xFFFF) {
                    return Err(corrupt("stored block length check failed"));
                }
                if out.len() + len > max_out {
                    return Err(corrupt("decompressed output exceeds the declared size"));
                }
                reader.copy_aligned(len, &mut out)?;
            }
            1 => {
                inflate_block(&mut reader, &fixed_litlen(), &fixed_dist(), &mut out, max_out)?;
            }
            2 => {
                let (litlen, dist) = read_dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, &litlen, &dist, &mut out, max_out)?;
            }
            _ => return Err(corrupt("reserved deflate block type 3")),
        }
        if last {
            return Ok((out, reader.bytes_consumed()));
        }
    }
}

/// Reads the dynamic-block code tables (RFC 1951 §3.2.7).
fn read_dynamic_tables(reader: &mut BitReader<'_>) -> Result<(Huffman, Huffman), ImagingError> {
    let hlit = reader.take(5)? as usize + 257;
    let hdist = reader.take(5)? as usize + 1;
    let hclen = reader.take(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(corrupt("dynamic block declares too many codes"));
    }
    let mut clen_lengths = [0u8; 19];
    for &position in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[position] = reader.take(3)? as u8;
    }
    let clen_code = Huffman::new(&clen_lengths)?;

    // The litlen and distance code lengths share one run-length stream.
    let mut lengths = vec![0u8; hlit + hdist];
    let mut index = 0;
    while index < lengths.len() {
        let symbol = clen_code.decode(reader)?;
        match symbol {
            0..=15 => {
                lengths[index] = symbol as u8;
                index += 1;
            }
            16 => {
                if index == 0 {
                    return Err(corrupt("length repeat with no previous length"));
                }
                let previous = lengths[index - 1];
                let repeat = 3 + reader.take(2)? as usize;
                if index + repeat > lengths.len() {
                    return Err(corrupt("length repeat overflows the code set"));
                }
                lengths[index..index + repeat].fill(previous);
                index += repeat;
            }
            17 | 18 => {
                let repeat = if symbol == 17 {
                    3 + reader.take(3)? as usize
                } else {
                    11 + reader.take(7)? as usize
                };
                if index + repeat > lengths.len() {
                    return Err(corrupt("zero-length run overflows the code set"));
                }
                index += repeat;
            }
            _ => return Err(corrupt("invalid code-length symbol")),
        }
    }
    if lengths[256] == 0 {
        return Err(corrupt("dynamic block has no end-of-block code"));
    }
    let litlen = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((litlen, dist))
}

/// Decodes one Huffman block's symbols into `out`.
fn inflate_block(
    reader: &mut BitReader<'_>,
    litlen: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
    max_out: usize,
) -> Result<(), ImagingError> {
    loop {
        let symbol = litlen.decode(reader)?;
        match symbol {
            0..=255 => {
                if out.len() >= max_out {
                    return Err(corrupt("decompressed output exceeds the declared size"));
                }
                out.push(symbol as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let entry = symbol as usize - 257;
                let length = LENGTH_BASE[entry] as usize
                    + reader.take(u32::from(LENGTH_EXTRA[entry]))? as usize;
                let dist_symbol = dist.decode(reader)? as usize;
                if dist_symbol >= 30 {
                    return Err(corrupt("invalid distance symbol"));
                }
                let distance = DIST_BASE[dist_symbol] as usize
                    + reader.take(u32::from(DIST_EXTRA[dist_symbol]))? as usize;
                if distance > out.len() {
                    return Err(corrupt("match distance reaches before the start of output"));
                }
                if out.len() + length > max_out {
                    return Err(corrupt("decompressed output exceeds the declared size"));
                }
                // Overlapping copies are the point (distance < length
                // repeats the tail), so this must be byte-serial.
                let start = out.len() - distance;
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(corrupt("invalid literal/length symbol")),
        }
    }
}

// ---------------------------------------------------------------------------
// zlib container
// ---------------------------------------------------------------------------

/// Decompresses a zlib stream (RFC 1950): 2-byte header, DEFLATE body,
/// Adler-32 trailer — all verified.
///
/// # Errors
///
/// [`ImagingError::Decode`] for header/trailer violations and every
/// inflate failure.
pub fn zlib_decompress(data: &[u8], max_out: usize) -> Result<Vec<u8>, ImagingError> {
    if data.len() < 6 {
        return Err(corrupt("zlib stream shorter than its framing"));
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0F != 8 {
        return Err(corrupt(format!("zlib compression method {} is not deflate", cmf & 0x0F)));
    }
    if (u16::from(cmf) << 8 | u16::from(flg)) % 31 != 0 {
        return Err(corrupt("zlib header check failed"));
    }
    if flg & 0x20 != 0 {
        return Err(corrupt("zlib preset dictionaries are unsupported"));
    }
    let (out, consumed) = inflate(&data[2..], max_out)?;
    let trailer_at = 2 + consumed;
    if data.len() < trailer_at + 4 {
        return Err(corrupt("zlib stream is missing its adler-32 trailer"));
    }
    let stored =
        u32::from_be_bytes(data[trailer_at..trailer_at + 4].try_into().expect("length checked"));
    if stored != adler32(&out) {
        return Err(corrupt("zlib adler-32 mismatch"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Encoder: greedy LZ77 + one fixed-Huffman block
// ---------------------------------------------------------------------------

/// LSB-first bit writer mirroring [`BitReader`].
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    have: u32,
}

impl BitWriter {
    fn new(out: Vec<u8>) -> Self {
        Self { out, acc: 0, have: 0 }
    }

    #[inline]
    fn push(&mut self, value: u32, bits: u32) {
        self.acc |= u64::from(value) << self.have;
        self.have += bits;
        while self.have >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.have -= 8;
        }
    }

    /// Huffman codes transmit MSB-first: reverse before pushing.
    #[inline]
    fn push_code(&mut self, code: u32, bits: u32) {
        self.push(code.reverse_bits() >> (32 - bits), bits);
    }

    fn finish(mut self) -> Vec<u8> {
        if self.have > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

/// The fixed litlen code for `symbol` as `(canonical code, bits)`.
fn fixed_litlen_code(symbol: u16) -> (u32, u32) {
    match symbol {
        0..=143 => (0x30 + u32::from(symbol), 8),
        144..=255 => (0x190 + u32::from(symbol) - 144, 9),
        256..=279 => (u32::from(symbol) - 256, 7),
        _ => (0xC0 + u32::from(symbol) - 280, 8),
    }
}

/// The litlen symbol + extra bits for a match length (3..=258).
fn length_symbol(length: usize) -> (u16, u32, u32) {
    let entry = LENGTH_BASE
        .iter()
        .rposition(|&base| base as usize <= length)
        .expect("length >= 3 always has a base");
    // 258 is exactly symbol 285 (no extra bits); lengths between bases
    // carry the remainder in the extra bits.
    let extra_bits = u32::from(LENGTH_EXTRA[entry]);
    (257 + entry as u16, (length - LENGTH_BASE[entry] as usize) as u32, extra_bits)
}

/// The distance symbol + extra bits for a match distance (1..=32768).
fn distance_symbol(distance: usize) -> (u16, u32, u32) {
    let entry = DIST_BASE
        .iter()
        .rposition(|&base| base as usize <= distance)
        .expect("distance >= 1 always has a base");
    let extra_bits = u32::from(DIST_EXTRA[entry]);
    (entry as u16, (distance - DIST_BASE[entry] as usize) as u32, extra_bits)
}

/// Sliding-window and match-search parameters.
const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// Hash-chain probes per position — the compression/speed knob.
const MAX_CHAIN: usize = 32;
const HASH_BITS: u32 = 15;

#[inline]
fn hash3(data: &[u8], at: usize) -> usize {
    let key = u32::from(data[at]) | u32::from(data[at + 1]) << 8 | u32::from(data[at + 2]) << 16;
    (key.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data` into a zlib stream: one fixed-Huffman DEFLATE
/// block with greedy hash-chain LZ77 matching. Decompressing with
/// [`zlib_decompress`] returns `data` exactly.
pub fn zlib_compress(data: &[u8]) -> Vec<u8> {
    // 0x78 0x01: deflate, 32 KiB window, fastest-compression hint, and
    // (CMF<<8 | FLG) % 31 == 0.
    let mut writer = BitWriter::new(vec![0x78, 0x01]);
    writer.push(1, 1); // final block
    writer.push(1, 2); // fixed Huffman

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut at = 0usize;
    while at < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if at + MIN_MATCH <= data.len() {
            let mut candidate = head[hash3(data, at)];
            let mut probes = MAX_CHAIN;
            let limit = (data.len() - at).min(MAX_MATCH);
            while candidate != usize::MAX && probes > 0 {
                let distance = at - candidate;
                if distance > WINDOW {
                    break;
                }
                let mut len = 0usize;
                while len < limit && data[candidate + len] == data[at + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = distance;
                    if len == limit {
                        break;
                    }
                }
                candidate = prev[candidate];
                probes -= 1;
            }
        }
        if best_len >= MIN_MATCH {
            let (symbol, extra, extra_bits) = length_symbol(best_len);
            let (code, bits) = fixed_litlen_code(symbol);
            writer.push_code(code, bits);
            writer.push(extra, extra_bits);
            let (dsymbol, dextra, dextra_bits) = distance_symbol(best_dist);
            // Fixed distance codes are 5 bits, canonical == symbol.
            writer.push_code(u32::from(dsymbol), 5);
            writer.push(dextra, dextra_bits);
            // Insert every covered position into the hash chains so
            // later matches can start inside this one.
            let end = at + best_len;
            while at < end {
                if at + MIN_MATCH <= data.len() {
                    let h = hash3(data, at);
                    prev[at] = head[h];
                    head[h] = at;
                }
                at += 1;
            }
        } else {
            let (code, bits) = fixed_litlen_code(u16::from(data[at]));
            writer.push_code(code, bits);
            if at + MIN_MATCH <= data.len() {
                let h = hash3(data, at);
                prev[at] = head[h];
                head[h] = at;
            }
            at += 1;
        }
    }
    let (code, bits) = fixed_litlen_code(256);
    writer.push_code(code, bits);
    let mut out = writer.finish();
    out.extend_from_slice(&adler32_update(ADLER_INIT, data).to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_block_round_trip() {
        // Hand-assembled: final stored block, LEN=5, NLEN=~5, "hello".
        let mut stream = vec![0x01, 0x05, 0x00, 0xFA, 0xFF];
        stream.extend_from_slice(b"hello");
        let (out, consumed) = inflate(&stream, 64).unwrap();
        assert_eq!(out, b"hello");
        assert_eq!(consumed, stream.len());
    }

    #[test]
    fn stored_block_length_check_is_enforced() {
        let mut stream = vec![0x01, 0x05, 0x00, 0x00, 0x00];
        stream.extend_from_slice(b"hello");
        let err = inflate(&stream, 64).unwrap_err();
        assert!(err.to_string().contains("length check"), "{err}");
    }

    #[test]
    fn fixed_huffman_reference_stream() {
        // python3: zlib.compress(b"hello hello hello hello", 1)[2:-4]
        // (level 1 emits one fixed-Huffman block for this input).
        let stream = [0xCB, 0x48, 0xCD, 0xC9, 0xC9, 0x57, 0xC8, 0x40, 0x27, 0x01];
        let (out, _) = inflate(&stream, 64).unwrap();
        assert_eq!(out, b"hello hello hello hello");
    }

    /// 800 bytes over a skewed 16-letter alphabet driven by an LCG —
    /// small enough to pin, skewed enough that zlib level 9 emits a
    /// dynamic-Huffman block for it.
    fn skewed_lcg_bytes(n: usize) -> Vec<u8> {
        let alphabet = b"aaaaabbbccdefgh ";
        let mut x: u64 = 12345;
        (0..n)
            .map(|_| {
                x = (1_103_515_245 * x + 12345) % (1 << 31);
                alphabet[((x >> 16) % 16) as usize]
            })
            .collect()
    }

    #[test]
    fn zlib_reference_stream_with_dynamic_block() {
        // python3: zlib.compress(skewed_lcg_bytes(800), 9) — byte 2 is
        // 0b...101: BFINAL=1, BTYPE=2 (dynamic Huffman).
        let data = skewed_lcg_bytes(800);
        let stream = [
            0x78, 0xDA, 0x1D, 0x93, 0x87, 0x11, 0xC4, 0x30, 0x08, 0x04, 0x5B, 0xA1, 0x35, 0x32,
            0xFD, 0x57, 0xA0, 0x3D, 0x8D, 0xDF, 0xF3, 0xB6, 0x24, 0x2E, 0x81, 0xC7, 0xA3, 0x6C,
            0xB7, 0x2A, 0xA6, 0xCF, 0xDC, 0x73, 0xD6, 0x2D, 0xCD, 0xD7, 0x87, 0xBB, 0x23, 0xBD,
            0xDC, 0xEC, 0x22, 0xD3, 0x2F, 0xBD, 0x33, 0x62, 0x78, 0xB4, 0x08, 0x3F, 0x9B, 0x8C,
            0x6D, 0xCF, 0xCA, 0x71, 0xF7, 0x0B, 0xF3, 0x5A, 0x15, 0x1D, 0xE5, 0x1C, 0x1B, 0x0F,
            0x0F, 0x16, 0xB2, 0x9C, 0x2A, 0x6F, 0x5E, 0xDD, 0x55, 0x10, 0x51, 0x55, 0x59, 0x47,
            0x69, 0x9C, 0x9F, 0x57, 0xFA, 0x66, 0xA7, 0x15, 0xFB, 0x40, 0xF6, 0x04, 0x15, 0x1E,
            0xDD, 0x68, 0x88, 0x04, 0x76, 0x13, 0x5D, 0xC7, 0x0A, 0xA5, 0xC7, 0x29, 0x16, 0xA1,
            0xEC, 0x4B, 0x21, 0xBA, 0xD7, 0x14, 0x92, 0x22, 0xD6, 0x25, 0xAC, 0x27, 0x6B, 0x3A,
            0xCE, 0xE0, 0x9D, 0x89, 0x8B, 0xAE, 0xDE, 0xD3, 0xC9, 0x31, 0x03, 0x10, 0x19, 0xBD,
            0xE8, 0xB1, 0xCC, 0xB2, 0x28, 0xB9, 0x40, 0x01, 0x42, 0x16, 0xEB, 0x1B, 0x9D, 0x5F,
            0xA7, 0x95, 0x3C, 0xE1, 0x7A, 0xDC, 0x30, 0xC4, 0x55, 0x38, 0x20, 0x25, 0x38, 0x31,
            0x5F, 0x3F, 0x9C, 0x94, 0x2F, 0x55, 0x78, 0x4A, 0x62, 0xE3, 0xC5, 0x65, 0xE2, 0x54,
            0x5A, 0x90, 0xED, 0x9D, 0x30, 0x08, 0x91, 0xDF, 0xB0, 0xBE, 0xD2, 0x4B, 0x30, 0x06,
            0x3E, 0x9A, 0xE4, 0xE9, 0x0B, 0x3A, 0x65, 0x15, 0xA9, 0x42, 0x9E, 0x8C, 0x2B, 0x2A,
            0xBF, 0x48, 0xB0, 0x79, 0x65, 0x97, 0x7C, 0x53, 0x51, 0x12, 0x37, 0x6C, 0xEB, 0x1B,
            0xA9, 0xEC, 0x65, 0xA9, 0x70, 0xF5, 0x43, 0x21, 0x31, 0xD7, 0xCE, 0x7C, 0x16, 0xED,
            0x10, 0xB5, 0xF0, 0x01, 0xD0, 0xFF, 0x72, 0x67, 0x85, 0xD2, 0x8D, 0xAF, 0x12, 0x53,
            0xE4, 0xCB, 0x73, 0xDB, 0x96, 0x16, 0x61, 0x50, 0xCB, 0xB9, 0xE5, 0x40, 0xEE, 0x86,
            0x80, 0xA6, 0x42, 0x71, 0xFA, 0x87, 0x71, 0xF5, 0x43, 0xA3, 0x22, 0xAD, 0xB0, 0x28,
            0xB0, 0x06, 0x5A, 0xFB, 0x0A, 0xC1, 0xC2, 0x6E, 0x61, 0x5A, 0x32, 0x05, 0xFE, 0xF7,
            0xE8, 0x0F, 0x0F, 0xDD, 0xD1, 0x00, 0x8D, 0x6A, 0x49, 0xBE, 0x16, 0xED, 0x6D, 0xF3,
            0x83, 0x55, 0xDB, 0x46, 0x5D, 0x88, 0xD4, 0x10, 0xC6, 0x1F, 0xBF, 0x92, 0xE0, 0x3F,
            0x37, 0xB9, 0x4B, 0x8C, 0xF4, 0x93, 0xA4, 0xB4, 0x1B, 0x32, 0x7A, 0xA9, 0xC6, 0x32,
            0x6F, 0x6A, 0x07, 0x44, 0x0B, 0x94, 0x67, 0x07, 0x5D, 0xD4, 0xC4, 0xFD, 0x29, 0x92,
            0xC5, 0x55, 0xF6, 0x3B, 0x0B, 0x85, 0xDD, 0xD1, 0x43, 0xB7, 0x86, 0xEF, 0xE3, 0x8A,
            0x6F, 0x24, 0xAF, 0x65, 0x66, 0xA8, 0x52, 0x06, 0xFF, 0x13, 0xC0, 0x32, 0x47, 0x1E,
            0x7A, 0x75, 0x27, 0x9F,
        ];
        assert_eq!((stream[2] >> 1) & 3, 2, "vector must exercise a dynamic block");
        assert_eq!(zlib_decompress(&stream, data.len()).unwrap(), data);
    }

    #[test]
    fn overlapping_window_copies_expand_runs() {
        // 'a' * 100 compresses to one literal plus overlapping matches.
        let data = vec![b'a'; 100];
        let stream = zlib_compress(&data);
        assert!(stream.len() < 20, "run-length input must compress: {} bytes", stream.len());
        assert_eq!(zlib_decompress(&stream, data.len()).unwrap(), data);
    }

    #[test]
    fn compress_round_trips_structured_and_random_data() {
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abcabcabcabcabc".to_vec(),
            (0..=255u8).collect(),
            (0..10_000u32).map(|i| (i * 7 % 251) as u8).collect(),
            b"the quick brown fox".repeat(100),
        ];
        for data in cases {
            let stream = zlib_compress(&data);
            assert_eq!(zlib_decompress(&stream, data.len()).unwrap(), data, "len {}", data.len());
        }
    }

    #[test]
    fn output_cap_rejects_zip_bombs() {
        let data = vec![0u8; 4096];
        let stream = zlib_compress(&data);
        let err = zlib_decompress(&stream, 100).unwrap_err();
        assert!(err.to_string().contains("exceeds the declared size"), "{err}");
    }

    #[test]
    fn corrupted_trailer_and_header_are_rejected() {
        let mut stream = zlib_compress(b"payload payload payload");
        let last = stream.len() - 1;
        stream[last] ^= 0xFF;
        assert!(zlib_decompress(&stream, 64).unwrap_err().to_string().contains("adler"));

        let mut bad_method = zlib_compress(b"x");
        bad_method[0] = 0x77; // method 7, not deflate
        assert!(zlib_decompress(&bad_method, 64).is_err());

        let mut bad_check = zlib_compress(b"x");
        bad_check[1] ^= 0x01;
        assert!(zlib_decompress(&bad_check, 64).is_err());

        assert!(zlib_decompress(&[0x78], 64).is_err(), "shorter than framing");
    }

    #[test]
    fn hostile_streams_error_instead_of_panicking() {
        // Reserved block type.
        assert!(inflate(&[0x07], 64).is_err());
        // Truncated at every prefix of a valid stream.
        let stream = zlib_compress(b"truncate me anywhere you like, truncate me");
        for cut in 0..stream.len() {
            let _ = zlib_decompress(&stream[..cut], 1024); // must not panic
        }
        // Distance past the start of output: hand-build via a stored
        // prefix then a fixed block matching too far back. Easier: flip
        // bits of a valid stream and require graceful errors.
        let mut mutated = stream;
        for i in 0..mutated.len() {
            mutated[i] ^= 0x55;
            let _ = zlib_decompress(&mutated, 1024); // must not panic
            mutated[i] ^= 0x55;
        }
    }

    #[test]
    fn oversubscribed_dynamic_tables_are_rejected() {
        // Dynamic block (type 2) whose code-length code is oversubscribed:
        // hclen=15 so many 3-bit lengths of value 7 follow — the Kraft
        // sum overflows and Huffman::new must reject it.
        let mut writer = BitWriter::new(Vec::new());
        writer.push(1, 1); // final
        writer.push(2, 2); // dynamic
        writer.push(0, 5); // hlit = 257
        writer.push(0, 5); // hdist = 1
        writer.push(15, 4); // hclen = 19
        for _ in 0..19 {
            writer.push(1, 3); // nineteen codes of length 1: oversubscribed
        }
        let stream = writer.finish();
        let err = inflate(&stream, 64).unwrap_err();
        assert!(err.to_string().contains("oversubscribed"), "{err}");
    }

    #[test]
    fn symbol_helpers_cover_their_ranges() {
        assert_eq!(length_symbol(3), (257, 0, 0));
        assert_eq!(length_symbol(258), (285, 0, 0));
        assert_eq!(length_symbol(13), (266, 0, 1));
        assert_eq!(distance_symbol(1), (0, 0, 0));
        assert_eq!(distance_symbol(32768), (29, 8191, 13));
        for length in MIN_MATCH..=MAX_MATCH {
            let (symbol, extra, bits) = length_symbol(length);
            let entry = symbol as usize - 257;
            assert_eq!(LENGTH_BASE[entry] as usize + extra as usize, length);
            assert!(extra < (1 << bits) || bits == 0 && extra == 0);
        }
        for distance in [1usize, 2, 3, 4, 5, 100, 1024, 32767, 32768] {
            let (symbol, extra, _) = distance_symbol(distance);
            assert_eq!(DIST_BASE[symbol as usize] as usize + extra as usize, distance);
        }
    }
}
