//! Uncompressed 24-bit Windows BMP encoding and decoding.
//!
//! PGM/PPM cover the framework's own needs; BMP exists because every
//! desktop image viewer opens it, which makes exported attack images and
//! spectra easy to inspect.

use crate::{Channels, Image, ImagingError};
use std::io::{Read, Write};
use std::path::Path;

const FILE_HEADER_LEN: usize = 14;
const INFO_HEADER_LEN: usize = 40;

/// Encodes an image as an uncompressed 24-bit BMP byte vector (grayscale
/// inputs are replicated across the RGB channels).
pub fn encode_bmp(img: &Image) -> Vec<u8> {
    let rgb = img.to_rgb();
    let (w, h) = (rgb.width(), rgb.height());
    let row_bytes = w * 3;
    let padding = (4 - row_bytes % 4) % 4;
    let pixel_bytes = (row_bytes + padding) * h;
    let file_len = FILE_HEADER_LEN + INFO_HEADER_LEN + pixel_bytes;

    let mut out = Vec::with_capacity(file_len);
    // BITMAPFILEHEADER
    out.extend_from_slice(b"BM");
    out.extend_from_slice(&(file_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // reserved
    out.extend_from_slice(&((FILE_HEADER_LEN + INFO_HEADER_LEN) as u32).to_le_bytes());
    // BITMAPINFOHEADER
    out.extend_from_slice(&(INFO_HEADER_LEN as u32).to_le_bytes());
    out.extend_from_slice(&(w as i32).to_le_bytes());
    out.extend_from_slice(&(h as i32).to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // planes
    out.extend_from_slice(&24u16.to_le_bytes()); // bits per pixel
    out.extend_from_slice(&0u32.to_le_bytes()); // BI_RGB (no compression)
    out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&2835u32.to_le_bytes()); // 72 DPI
    out.extend_from_slice(&2835u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // palette colors
    out.extend_from_slice(&0u32.to_le_bytes()); // important colors
                                                // Pixel data: bottom-up rows, BGR order, rows padded to 4 bytes.
    let clamp = |v: f64| v.round().clamp(0.0, 255.0) as u8;
    for y in (0..h).rev() {
        for x in 0..w {
            out.push(clamp(rgb.get(x, y, 2)));
            out.push(clamp(rgb.get(x, y, 1)));
            out.push(clamp(rgb.get(x, y, 0)));
        }
        out.extend(std::iter::repeat_n(0u8, padding));
    }
    out
}

/// Decodes an uncompressed 24-bit BMP byte stream.
///
/// # Errors
///
/// Returns [`ImagingError::Decode`] for unsupported BMP variants
/// (compressed, paletted, other bit depths, top-down images) or truncated
/// data.
pub fn decode_bmp(bytes: &[u8]) -> Result<Image, ImagingError> {
    decode_bmp_into(bytes, &mut |n| vec![0.0; n])
}

/// Decodes an uncompressed 24-bit BMP byte stream, obtaining the sample
/// buffer from `alloc` so streaming callers can recycle `BufferPool`
/// buffers.
///
/// # Errors
///
/// Same as [`decode_bmp`].
pub fn decode_bmp_into(
    bytes: &[u8],
    alloc: crate::codec::SampleAlloc<'_>,
) -> Result<Image, ImagingError> {
    let fail = |message: &str| ImagingError::Decode { message: message.to_string() };
    if bytes.len() < FILE_HEADER_LEN + INFO_HEADER_LEN {
        return Err(fail("file shorter than BMP headers"));
    }
    if &bytes[0..2] != b"BM" {
        return Err(fail("missing BM magic"));
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("length checked"));
    let u16_at = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().expect("length checked"));
    let data_offset = u32_at(10) as usize;
    let header_len = u32_at(14);
    if header_len < 40 {
        return Err(fail("unsupported BMP header version"));
    }
    let width = u32_at(18) as i32;
    let height = u32_at(22) as i32;
    if width <= 0 || height <= 0 {
        return Err(fail("unsupported BMP orientation or empty image"));
    }
    if u16_at(28) != 24 {
        return Err(fail("only 24-bit BMP is supported"));
    }
    if u32_at(30) != 0 {
        return Err(fail("only uncompressed BMP is supported"));
    }
    let (w, h) = (width as usize, height as usize);
    let row_bytes = w * 3;
    let padding = (4 - row_bytes % 4) % 4;
    let needed = data_offset + (row_bytes + padding) * h;
    if bytes.len() < needed {
        return Err(fail("pixel data truncated"));
    }

    let n = w * h;
    let mut planes: Vec<Vec<f64>> = (0..3)
        .map(|_| {
            let mut p = alloc(n);
            p.resize(n, 0.0);
            p
        })
        .collect();
    for (row_index, y) in (0..h).rev().enumerate() {
        let row_start = data_offset + row_index * (row_bytes + padding);
        for x in 0..w {
            let p = row_start + x * 3;
            let dst = y * w + x;
            planes[0][dst] = f64::from(bytes[p + 2]);
            planes[1][dst] = f64::from(bytes[p + 1]);
            planes[2][dst] = f64::from(bytes[p]);
        }
    }
    Image::from_planes(w, h, Channels::Rgb, planes)
}

/// Writes an image to `path` as a 24-bit BMP.
///
/// # Errors
///
/// Propagates any I/O error.
pub fn write_bmp_file(img: &Image, path: impl AsRef<Path>) -> Result<(), ImagingError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_bmp(img))?;
    Ok(())
}

/// Reads a 24-bit BMP image from `path`.
///
/// # Errors
///
/// Propagates I/O errors and decode failures.
pub fn read_bmp_file(path: impl AsRef<Path>) -> Result<Image, ImagingError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_bmp(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_roundtrip() {
        let img = Image::from_fn_rgb(5, 3, |x, y| {
            [(x * 50 % 256) as f64, (y * 80 % 256) as f64, ((x + y) * 30 % 256) as f64]
        });
        let back = decode_bmp(&encode_bmp(&img)).unwrap();
        assert!(back.approx_eq(&img, 0.5));
    }

    #[test]
    fn gray_input_replicates_channels() {
        let img = Image::from_fn_gray(4, 4, |x, y| ((x + y) * 20) as f64);
        let back = decode_bmp(&encode_bmp(&img)).unwrap();
        assert_eq!(back.channels(), Channels::Rgb);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(back.get(x, y, 0), back.get(x, y, 1));
                assert_eq!(back.get(x, y, 1), back.get(x, y, 2));
            }
        }
    }

    #[test]
    fn odd_widths_pad_rows_correctly() {
        // width 3 -> 9 row bytes -> 3 bytes of padding.
        for w in [1usize, 2, 3, 5, 7] {
            let img = Image::from_fn_rgb(w, 2, |x, y| [(x * 40) as f64, (y * 90) as f64, 7.0]);
            let back = decode_bmp(&encode_bmp(&img)).unwrap();
            assert!(back.approx_eq(&img, 0.5), "width {w}");
        }
    }

    #[test]
    fn header_fields_are_sane() {
        let img = Image::from_fn_gray(6, 2, |_, _| 0.0);
        let bytes = encode_bmp(&img);
        assert_eq!(&bytes[0..2], b"BM");
        let file_len = u32::from_le_bytes(bytes[2..6].try_into().unwrap()) as usize;
        assert_eq!(file_len, bytes.len());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(decode_bmp(b"").is_err());
        assert!(decode_bmp(&[0u8; 60]).is_err());
        let good = encode_bmp(&Image::from_fn_gray(4, 4, |_, _| 1.0));
        assert!(decode_bmp(&good[..good.len() - 10]).is_err());
        let mut bad_depth = good.clone();
        bad_depth[28] = 8;
        assert!(decode_bmp(&bad_depth).is_err());
        let mut compressed = good;
        compressed[30] = 1;
        assert!(decode_bmp(&compressed).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("decamouflage-bmp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bmp");
        let img = Image::from_fn_rgb(3, 3, |x, y| [(x * 70) as f64, (y * 60) as f64, 128.0]);
        write_bmp_file(&img, &path).unwrap();
        let back = read_bmp_file(&path).unwrap();
        assert!(back.approx_eq(&img, 0.5));
        std::fs::remove_file(&path).ok();
    }
}
