//! Baseline JPEG (ITU-T T.81) codec, from scratch.
//!
//! Decode handles sequential-baseline streams: SOI/APPn/DQT/SOF0/DHT/
//! DRI/SOS marker walk, MSB-first Huffman entropy decode with byte
//! destuffing and restart markers, dequantisation through the zigzag,
//! a separable double-precision 8x8 IDCT, nearest-neighbour chroma
//! upsampling, and YCbCr to RGB conversion. Sampling factors are
//! general (each component's h/v in {1, 2}), which covers 4:4:4,
//! 4:2:2 and 4:2:0. Progressive scans, 12-bit precision, arithmetic
//! coding and exotic sampling are typed [`ImagingError::Unsupported`];
//! structural corruption is [`ImagingError::Decode`]; nothing panics.
//!
//! Encode writes sequential baseline 4:4:4 (or single-component
//! grayscale) with the Annex K quantisation tables scaled by the usual
//! libjpeg quality curve and the Annex K Huffman tables — enough to
//! generate genuinely lossy corpora for the compression-confounder
//! experiments, and decodable by any external viewer.

use crate::codec::SampleAlloc;
use crate::{Channels, Image, ImagingError};

/// Same decoded-pixel budget as the PNG decoder.
const MAX_PIXELS: u64 = 1 << 26;

fn corrupt(message: impl Into<String>) -> ImagingError {
    ImagingError::Decode { message: message.into() }
}

fn unsupported(message: impl Into<String>) -> ImagingError {
    ImagingError::Unsupported { message: message.into() }
}

/// Zigzag index -> raster index (row-major, row = vertical frequency).
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// The separable DCT basis: `BASIS[u][x] = C(u)/2 * cos((2x+1)u*pi/16)`.
/// Both the IDCT and the FDCT are two passes through this one matrix.
fn dct_basis() -> [[f64; 8]; 8] {
    let mut basis = [[0.0; 8]; 8];
    for (u, row) in basis.iter_mut().enumerate() {
        let cu = if u == 0 { 1.0 / std::f64::consts::SQRT_2 } else { 1.0 };
        for (x, value) in row.iter_mut().enumerate() {
            *value =
                cu / 2.0 * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
        }
    }
    basis
}

/// `f(x,y) = sum_u sum_v BASIS[u][x] BASIS[v][y] F[v*8+u]`, separably.
fn idct_8x8(coeffs: &[f64; 64], basis: &[[f64; 8]; 8], out: &mut [f64; 64]) {
    let mut tmp = [0.0f64; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for v in 0..8 {
                acc += basis[v][y] * coeffs[v * 8 + u];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                acc += basis[u][x] * tmp[y * 8 + u];
            }
            out[y * 8 + x] = acc;
        }
    }
}

/// `F(u,v) = sum_x sum_y BASIS[u][x] BASIS[v][y] f(x,y)`, separably.
fn fdct_8x8(samples: &[f64; 64], basis: &[[f64; 8]; 8], out: &mut [f64; 64]) {
    let mut tmp = [0.0f64; 64];
    for v in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                acc += basis[v][y] * samples[y * 8 + x];
            }
            tmp[v * 8 + x] = acc;
        }
    }
    for v in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for x in 0..8 {
                acc += basis[u][x] * tmp[v * 8 + x];
            }
            out[v * 8 + u] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Huffman tables (MSB-first canonical codes)
// ---------------------------------------------------------------------------

/// A JPEG Huffman table: `counts[len]` codes of each length 1..=16,
/// symbols ordered by (length, transmission order).
struct HuffTable {
    counts: [u16; 17],
    symbols: Vec<u8>,
}

impl HuffTable {
    fn new(counts: [u16; 17], symbols: Vec<u8>) -> Result<Self, ImagingError> {
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        if total != symbols.len() {
            return Err(corrupt("huffman table symbol count mismatch"));
        }
        let mut left = 1i32;
        for &count in &counts[1..=16] {
            left = (left << 1) - i32::from(count);
            if left < 0 {
                return Err(corrupt("oversubscribed jpeg huffman table"));
            }
        }
        Ok(Self { counts, symbols })
    }

    /// Decodes one symbol, reading MSB-first bits from `reader`.
    fn decode(&self, reader: &mut ScanReader<'_>) -> Result<u8, ImagingError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=16 {
            code |= reader.take(1)? as i32;
            let count = i32::from(self.counts[len]);
            if code - first < count {
                return Ok(self.symbols[(index + code - first) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(corrupt("invalid jpeg huffman code"))
    }

    /// `(code, length)` per symbol value, for the encoder.
    fn build_codes(&self) -> [(u16, u8); 256] {
        let mut codes = [(0u16, 0u8); 256];
        let mut code = 0u16;
        let mut k = 0usize;
        for len in 1..=16u8 {
            for _ in 0..self.counts[len as usize] {
                codes[self.symbols[k] as usize] = (code, len);
                code += 1;
                k += 1;
            }
            code <<= 1;
        }
        codes
    }
}

// ---------------------------------------------------------------------------
// Entropy-coded segment reader (MSB-first, FF-destuffed)
// ---------------------------------------------------------------------------

struct ScanReader<'a> {
    data: &'a [u8],
    at: usize,
    acc: u32,
    have: u32,
}

impl<'a> ScanReader<'a> {
    fn new(data: &'a [u8], at: usize) -> Self {
        Self { data, at, acc: 0, have: 0 }
    }

    fn fill(&mut self) {
        while self.have <= 24 && self.at < self.data.len() {
            let byte = self.data[self.at];
            if byte == 0xFF {
                if self.at + 1 < self.data.len() && self.data[self.at + 1] == 0x00 {
                    self.at += 2; // stuffed FF
                } else {
                    break; // a marker: stop feeding bits
                }
            } else {
                self.at += 1;
            }
            self.acc = (self.acc << 8) | u32::from(byte);
            self.have += 8;
        }
    }

    /// Takes `n` bits (n <= 16), MSB-first.
    fn take(&mut self, n: u32) -> Result<u32, ImagingError> {
        if n == 0 {
            return Ok(0);
        }
        if self.have < n {
            self.fill();
            if self.have < n {
                return Err(corrupt("jpeg entropy data truncated"));
            }
        }
        let value = (self.acc >> (self.have - n)) & ((1 << n) - 1);
        self.have -= n;
        Ok(value)
    }

    /// Byte-aligns and consumes the expected restart marker.
    fn restart(&mut self, index: u32) -> Result<(), ImagingError> {
        self.have -= self.have % 8;
        if self.have != 0 {
            // Whole buffered bytes before the marker mean the entropy
            // segment and the restart interval disagree.
            return Err(corrupt("data where a restart marker was expected"));
        }
        if self.at + 2 > self.data.len()
            || self.data[self.at] != 0xFF
            || self.data[self.at + 1] != 0xD0 + (index % 8) as u8
        {
            return Err(corrupt(format!("missing restart marker RST{}", index % 8)));
        }
        self.at += 2;
        Ok(())
    }
}

/// DC/AC magnitude decoding (T.81 F.2.2.1 "EXTEND").
fn receive_extend(value: u32, size: u32) -> i32 {
    let v = value as i32;
    if size == 0 {
        0
    } else if v < (1 << (size - 1)) {
        v - (1 << size) + 1
    } else {
        v
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Component {
    h: usize,
    v: usize,
    quant: usize,
    dc_table: usize,
    ac_table: usize,
    pred: i32,
    /// Decoded samples, `plane_w * plane_h`, MCU-aligned.
    plane: Vec<u8>,
    plane_w: usize,
    plane_h: usize,
}

/// Decodes a baseline JPEG into a fresh allocation. See
/// [`decode_jpeg_into`].
///
/// # Errors
///
/// [`ImagingError::Decode`] / [`ImagingError::Unsupported`] as
/// documented on [`decode_jpeg_into`].
pub fn decode_jpeg(bytes: &[u8]) -> Result<Image, ImagingError> {
    decode_jpeg_into(bytes, &mut |n| vec![0.0; n])
}

/// A parsed SOF0 frame: (width, height, components in scan order).
type Frame = (usize, usize, Vec<(u8, Component)>);

/// Decodes a baseline JPEG, obtaining the final sample buffer from
/// `alloc` so streaming callers can recycle `BufferPool` buffers.
///
/// Grayscale streams produce [`Channels::Gray`]; three-component
/// streams produce [`Channels::Rgb`]. Output samples sit on the u8
/// grid (decode quantises), so re-encoding losslessly round-trips.
///
/// # Errors
///
/// [`ImagingError::Unsupported`] for progressive/arithmetic/12-bit
/// streams or sampling factors outside {1, 2};
/// [`ImagingError::Decode`] for everything structurally broken.
pub fn decode_jpeg_into(bytes: &[u8], alloc: SampleAlloc<'_>) -> Result<Image, ImagingError> {
    if bytes.len() < 2 || bytes[0] != 0xFF || bytes[1] != 0xD8 {
        return Err(corrupt("missing jpeg SOI marker"));
    }
    let mut at = 2usize;
    let mut quant: [Option<[u16; 64]>; 4] = [None; 4];
    let mut dc_tables: [Option<HuffTable>; 4] = [None, None, None, None];
    let mut ac_tables: [Option<HuffTable>; 4] = [None, None, None, None];
    let mut frame: Option<Frame> = None;
    let mut restart_interval = 0usize;

    loop {
        // Marker: any number of FF fill bytes, then the marker code.
        while at < bytes.len() && bytes[at] == 0xFF {
            at += 1;
        }
        if at == 0 || at >= bytes.len() || bytes[at - 1] != 0xFF {
            return Err(corrupt("expected a jpeg marker"));
        }
        let marker = bytes[at];
        at += 1;
        match marker {
            0xD8 | 0x01 => continue, // SOI repeat / TEM: no payload
            0xD9 => return Err(corrupt("jpeg ended before any scan")),
            0xC1..=0xC3 | 0xC5..=0xC7 | 0xC9..=0xCB | 0xCD..=0xCF => {
                return Err(unsupported(format!(
                    "jpeg frame type SOF{} (only baseline SOF0)",
                    marker - 0xC0
                )));
            }
            _ => {}
        }
        if at + 2 > bytes.len() {
            return Err(corrupt("truncated jpeg segment length"));
        }
        let length = usize::from(u16::from_be_bytes([bytes[at], bytes[at + 1]]));
        if length < 2 || at + length > bytes.len() {
            return Err(corrupt("jpeg segment length out of range"));
        }
        let seg = &bytes[at + 2..at + length];
        at += length;
        match marker {
            0xDB => parse_dqt(seg, &mut quant)?,
            0xC4 => parse_dht(seg, &mut dc_tables, &mut ac_tables)?,
            0xC0 => {
                if frame.is_some() {
                    return Err(corrupt("duplicate SOF0 segment"));
                }
                frame = Some(parse_sof0(seg)?);
            }
            0xDD => {
                if seg.len() != 2 {
                    return Err(corrupt("DRI segment must be 2 bytes"));
                }
                restart_interval = usize::from(u16::from_be_bytes([seg[0], seg[1]]));
            }
            0xDA => {
                let (width, height, mut components) =
                    frame.take().ok_or_else(|| corrupt("SOS before SOF0"))?;
                bind_scan(seg, &mut components)?;
                size_planes(width, height, &mut components);
                decode_scan(
                    bytes,
                    at,
                    &mut components,
                    &quant,
                    &dc_tables,
                    &ac_tables,
                    restart_interval,
                )?;
                return assemble(width, height, &components, alloc);
            }
            _ => {} // APPn, COM, and other ancillary segments: skip
        }
    }
}

fn parse_dqt(mut seg: &[u8], quant: &mut [Option<[u16; 64]>; 4]) -> Result<(), ImagingError> {
    while !seg.is_empty() {
        let pq = seg[0] >> 4;
        let tq = usize::from(seg[0] & 0x0F);
        if tq > 3 {
            return Err(corrupt(format!("quantisation table id {tq}")));
        }
        if pq > 1 {
            return Err(corrupt(format!("quantisation precision {pq}")));
        }
        let entry_bytes = if pq == 0 { 1 } else { 2 };
        if seg.len() < 1 + 64 * entry_bytes {
            return Err(corrupt("truncated DQT segment"));
        }
        let mut table = [0u16; 64];
        for (k, value) in table.iter_mut().enumerate() {
            *value = if pq == 0 {
                u16::from(seg[1 + k])
            } else {
                u16::from_be_bytes([seg[1 + 2 * k], seg[2 + 2 * k]])
            };
            if *value == 0 {
                return Err(corrupt("quantisation table contains a zero"));
            }
        }
        quant[tq] = Some(table);
        seg = &seg[1 + 64 * entry_bytes..];
    }
    Ok(())
}

fn parse_dht(
    mut seg: &[u8],
    dc: &mut [Option<HuffTable>; 4],
    ac: &mut [Option<HuffTable>; 4],
) -> Result<(), ImagingError> {
    while !seg.is_empty() {
        if seg.len() < 17 {
            return Err(corrupt("truncated DHT segment"));
        }
        let class = seg[0] >> 4;
        let id = usize::from(seg[0] & 0x0F);
        if class > 1 || id > 3 {
            return Err(corrupt(format!("huffman table class {class} id {id}")));
        }
        let mut counts = [0u16; 17];
        let mut total = 0usize;
        for len in 1..=16 {
            counts[len] = u16::from(seg[len]);
            total += usize::from(seg[len]);
        }
        if seg.len() < 17 + total {
            return Err(corrupt("DHT symbols truncated"));
        }
        let table = HuffTable::new(counts, seg[17..17 + total].to_vec())?;
        if class == 0 {
            dc[id] = Some(table);
        } else {
            ac[id] = Some(table);
        }
        seg = &seg[17 + total..];
    }
    Ok(())
}

#[allow(clippy::type_complexity)]
fn parse_sof0(seg: &[u8]) -> Result<(usize, usize, Vec<(u8, Component)>), ImagingError> {
    if seg.len() < 6 {
        return Err(corrupt("truncated SOF0 segment"));
    }
    if seg[0] != 8 {
        return Err(unsupported(format!("jpeg sample precision {} (only 8-bit)", seg[0])));
    }
    let height = usize::from(u16::from_be_bytes([seg[1], seg[2]]));
    let width = usize::from(u16::from_be_bytes([seg[3], seg[4]]));
    if width == 0 || height == 0 {
        return Err(corrupt(format!("jpeg declares zero dimension {width}x{height}")));
    }
    if (width as u64) * (height as u64) > MAX_PIXELS {
        return Err(corrupt(format!(
            "jpeg declares {width}x{height}, past the {MAX_PIXELS}-pixel budget"
        )));
    }
    let ncomp = usize::from(seg[5]);
    if ncomp != 1 && ncomp != 3 {
        return Err(unsupported(format!("{ncomp}-component jpeg (only 1 or 3)")));
    }
    if seg.len() < 6 + 3 * ncomp {
        return Err(corrupt("SOF0 component list truncated"));
    }
    let mut components = Vec::with_capacity(ncomp);
    for c in 0..ncomp {
        let id = seg[6 + 3 * c];
        let h = usize::from(seg[7 + 3 * c] >> 4);
        let v = usize::from(seg[7 + 3 * c] & 0x0F);
        let quant = usize::from(seg[8 + 3 * c]);
        if !(1..=2).contains(&h) || !(1..=2).contains(&v) {
            return Err(unsupported(format!("sampling factors {h}x{v} (only 1 or 2)")));
        }
        if quant > 3 {
            return Err(corrupt(format!("component references quant table {quant}")));
        }
        components.push((
            id,
            Component {
                h,
                v,
                quant,
                dc_table: 0,
                ac_table: 0,
                pred: 0,
                plane: Vec::new(),
                plane_w: 0,
                plane_h: 0,
            },
        ));
    }
    Ok((width, height, components))
}

/// Binds each SOS component selector to its Huffman table ids.
fn bind_scan(seg: &[u8], components: &mut [(u8, Component)]) -> Result<(), ImagingError> {
    if seg.is_empty() {
        return Err(corrupt("empty SOS segment"));
    }
    let ns = usize::from(seg[0]);
    if ns != components.len() {
        return Err(unsupported(
            "scan component count differs from frame (non-interleaved scans unsupported)",
        ));
    }
    if seg.len() < 1 + 2 * ns + 3 {
        return Err(corrupt("truncated SOS segment"));
    }
    for s in 0..ns {
        let selector = seg[1 + 2 * s];
        let tables = seg[2 + 2 * s];
        let component = components
            .iter_mut()
            .find(|(id, _)| *id == selector)
            .ok_or_else(|| corrupt(format!("scan selects unknown component {selector}")))?;
        component.1.dc_table = usize::from(tables >> 4);
        component.1.ac_table = usize::from(tables & 0x0F);
        if component.1.dc_table > 3 || component.1.ac_table > 3 {
            return Err(corrupt("scan references huffman table id > 3"));
        }
    }
    Ok(())
}

/// Sizes each component's MCU-aligned sample plane for the frame.
fn size_planes(width: usize, height: usize, components: &mut [(u8, Component)]) {
    let h_max = components.iter().map(|(_, c)| c.h).max().expect("ncomp >= 1");
    let v_max = components.iter().map(|(_, c)| c.v).max().expect("ncomp >= 1");
    let mcus_x = width.div_ceil(8 * h_max);
    let mcus_y = height.div_ceil(8 * v_max);
    for (_, component) in components.iter_mut() {
        component.plane_w = mcus_x * component.h * 8;
        component.plane_h = mcus_y * component.v * 8;
        component.plane = vec![0u8; component.plane_w * component.plane_h];
    }
}

fn decode_scan(
    bytes: &[u8],
    scan_start: usize,
    components: &mut [(u8, Component)],
    quant: &[Option<[u16; 64]>; 4],
    dc_tables: &[Option<HuffTable>; 4],
    ac_tables: &[Option<HuffTable>; 4],
    restart_interval: usize,
) -> Result<(), ImagingError> {
    let basis = dct_basis();
    let mut reader = ScanReader::new(bytes, scan_start);
    let mut coeffs = [0.0f64; 64];
    let mut pixels = [0.0f64; 64];
    let mcus_x = components[0].1.plane_w / (8 * components[0].1.h);
    let mcus_y = components[0].1.plane_h / (8 * components[0].1.v);

    let mut mcu_index = 0usize;
    for mcu_y in 0..mcus_y {
        for mcu_x in 0..mcus_x {
            if restart_interval > 0 && mcu_index > 0 && mcu_index.is_multiple_of(restart_interval) {
                reader.restart((mcu_index / restart_interval - 1) as u32)?;
                for (_, component) in components.iter_mut() {
                    component.pred = 0;
                }
            }
            mcu_index += 1;
            for (_, component) in components.iter_mut() {
                let dc = dc_tables[component.dc_table]
                    .as_ref()
                    .ok_or_else(|| corrupt("scan uses an undefined DC huffman table"))?;
                let ac = ac_tables[component.ac_table]
                    .as_ref()
                    .ok_or_else(|| corrupt("scan uses an undefined AC huffman table"))?;
                let qt = quant[component.quant]
                    .as_ref()
                    .ok_or_else(|| corrupt("scan uses an undefined quantisation table"))?;
                for by in 0..component.v {
                    for bx in 0..component.h {
                        decode_block(&mut reader, dc, ac, qt, &mut component.pred, &mut coeffs)?;
                        idct_8x8(&coeffs, &basis, &mut pixels);
                        let block_x = (mcu_x * component.h + bx) * 8;
                        let block_y = (mcu_y * component.v + by) * 8;
                        for y in 0..8 {
                            let row = (block_y + y) * component.plane_w + block_x;
                            for x in 0..8 {
                                component.plane[row + x] =
                                    (pixels[y * 8 + x] + 128.0).round().clamp(0.0, 255.0) as u8;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn decode_block(
    reader: &mut ScanReader<'_>,
    dc: &HuffTable,
    ac: &HuffTable,
    qt: &[u16; 64],
    pred: &mut i32,
    coeffs: &mut [f64; 64],
) -> Result<(), ImagingError> {
    coeffs.fill(0.0);
    let size = u32::from(dc.decode(reader)?);
    if size > 11 {
        return Err(corrupt(format!("DC category {size} out of range")));
    }
    let diff = receive_extend(reader.take(size)?, size);
    *pred = pred.wrapping_add(diff);
    coeffs[0] = f64::from(*pred) * f64::from(qt[0]);
    let mut k = 1usize;
    while k < 64 {
        let symbol = ac.decode(reader)?;
        let run = usize::from(symbol >> 4);
        let size = u32::from(symbol & 0x0F);
        if size == 0 {
            if run == 15 {
                k += 16; // ZRL
                continue;
            }
            break; // EOB
        }
        if size > 10 {
            return Err(corrupt(format!("AC category {size} out of range")));
        }
        k += run;
        if k >= 64 {
            return Err(corrupt("AC run past the end of the block"));
        }
        let value = receive_extend(reader.take(size)?, size);
        coeffs[ZIGZAG[k]] = f64::from(value) * f64::from(qt[k]);
        k += 1;
    }
    Ok(())
}

/// Upsamples the component planes to full resolution, converts the
/// color space, and builds the output image.
fn assemble(
    width: usize,
    height: usize,
    components: &[(u8, Component)],
    alloc: SampleAlloc<'_>,
) -> Result<Image, ImagingError> {
    let h_max = components.iter().map(|(_, c)| c.h).max().expect("ncomp >= 1");
    let v_max = components.iter().map(|(_, c)| c.v).max().expect("ncomp >= 1");
    if components.len() == 1 {
        let plane = &components[0].1;
        let n = width * height;
        let mut out = alloc(n);
        out.resize(n, 0.0);
        for y in 0..height {
            for x in 0..width {
                out[y * width + x] = f64::from(plane.plane[y * plane.plane_w + x]);
            }
        }
        return Image::from_gray_plane(width, height, out);
    }
    // Upsample each YCbCr component to full resolution as a per-plane
    // nearest-neighbour pass (trivial for 4:4:4, row/column doubling for
    // 4:2:0), then convert the three stride-1 planes to RGB planes.
    let n = width * height;
    let mut ycc_planes: Vec<Vec<f64>> = Vec::with_capacity(3);
    for (_, component) in components.iter() {
        let mut full = vec![0.0f64; n];
        for y in 0..height {
            let sy = y * component.v / v_max;
            let src_row = sy * component.plane_w;
            let dst_row = y * width;
            if component.h == h_max {
                for x in 0..width {
                    full[dst_row + x] = f64::from(component.plane[src_row + x]);
                }
            } else {
                for x in 0..width {
                    let sx = x * component.h / h_max;
                    full[dst_row + x] = f64::from(component.plane[src_row + sx]);
                }
            }
        }
        ycc_planes.push(full);
    }
    let mut planes: Vec<Vec<f64>> = (0..3)
        .map(|_| {
            let mut p = alloc(n);
            p.resize(n, 0.0);
            p
        })
        .collect();
    let (yp, cbp, crp) = (&ycc_planes[0], &ycc_planes[1], &ycc_planes[2]);
    for i in 0..n {
        let (luma, cb, cr) = (yp[i], cbp[i] - 128.0, crp[i] - 128.0);
        planes[0][i] = (luma + 1.402 * cr).round().clamp(0.0, 255.0);
        planes[1][i] = (luma - 0.344_136 * cb - 0.714_136 * cr).round().clamp(0.0, 255.0);
        planes[2][i] = (luma + 1.772 * cb).round().clamp(0.0, 255.0);
    }
    Image::from_planes(width, height, Channels::Rgb, planes)
}

// ---------------------------------------------------------------------------
// Encoder (baseline sequential, 4:4:4 or grayscale, Annex K tables)
// ---------------------------------------------------------------------------

/// Annex K luminance quantisation table, raster order.
const K_LUMA_QUANT: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Annex K chrominance quantisation table, raster order.
const K_CHROMA_QUANT: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99, 24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
];

/// Annex K DC Huffman specs as (counts-by-length, symbols).
const K_DC_LUMA: ([u16; 17], &[u8]) =
    ([0, 0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
const K_DC_CHROMA: ([u16; 17], &[u8]) =
    ([0, 0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
const K_AC_LUMA: ([u16; 17], &[u8]) = (
    [0, 0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D],
    &[
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61,
        0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08, 0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52,
        0xD1, 0xF0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25,
        0x26, 0x27, 0x28, 0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45,
        0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64,
        0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x83,
        0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99,
        0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
        0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3,
        0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8,
        0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
    ],
);
const K_AC_CHROMA: ([u16; 17], &[u8]) = (
    [0, 0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77],
    &[
        0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61,
        0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33,
        0x52, 0xF0, 0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34, 0xE1, 0x25, 0xF1, 0x17, 0x18,
        0x19, 0x1A, 0x26, 0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44,
        0x45, 0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63,
        0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A,
        0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97,
        0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
        0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA,
        0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7,
        0xE8, 0xE9, 0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
    ],
);

/// Scales an Annex K table by the libjpeg quality curve (1..=100).
fn scaled_quant(base: &[u16; 64], quality: u8) -> [u16; 64] {
    let q = i32::from(quality.clamp(1, 100));
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut table = [0u16; 64];
    for (dst, &src) in table.iter_mut().zip(base.iter()) {
        *dst = ((i32::from(src) * scale + 50) / 100).clamp(1, 255) as u16;
    }
    table
}

/// MSB-first bit writer with JPEG byte stuffing (FF -> FF 00).
struct ScanWriter {
    out: Vec<u8>,
    acc: u32,
    have: u32,
}

impl ScanWriter {
    fn new() -> Self {
        Self { out: Vec::new(), acc: 0, have: 0 }
    }

    fn push(&mut self, value: u32, bits: u32) {
        debug_assert!(bits <= 16);
        self.acc = (self.acc << bits) | (value & ((1u32 << bits) - 1));
        self.have += bits;
        while self.have >= 8 {
            let byte = ((self.acc >> (self.have - 8)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00);
            }
            self.have -= 8;
        }
    }

    /// Pads the final partial byte with 1-bits, per T.81.
    fn finish(mut self) -> Vec<u8> {
        if self.have > 0 {
            let pad = 8 - self.have;
            self.push((1 << pad) - 1, pad);
        }
        self.out
    }
}

fn segment(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
    out.extend_from_slice(&[0xFF, marker]);
    out.extend_from_slice(&((payload.len() + 2) as u16).to_be_bytes());
    out.extend_from_slice(payload);
}

fn dqt_payload(id: u8, table: &[u16; 64]) -> Vec<u8> {
    let mut payload = vec![id]; // pq=0 (8-bit), tq=id
    payload.extend(ZIGZAG.iter().map(|&r| table[r] as u8));
    payload
}

fn dht_payload(class_id: u8, spec: &([u16; 17], &[u8])) -> Vec<u8> {
    let mut payload = vec![class_id];
    payload.extend((1..=16).map(|len| spec.0[len] as u8));
    payload.extend_from_slice(spec.1);
    payload
}

/// Bit category of a coefficient (number of magnitude bits).
fn category(value: i32) -> u32 {
    32 - value.unsigned_abs().leading_zeros()
}

/// Magnitude bits as transmitted: negatives are one's-complemented.
fn magnitude_bits(value: i32, size: u32) -> u32 {
    if value >= 0 {
        value as u32
    } else {
        (value + (1 << size) - 1) as u32
    }
}

#[allow(clippy::too_many_arguments)]
fn encode_block(
    writer: &mut ScanWriter,
    samples: &[f64; 64],
    qt: &[u16; 64],
    basis: &[[f64; 8]; 8],
    dc_codes: &[(u16, u8); 256],
    ac_codes: &[(u16, u8); 256],
    pred: &mut i32,
) {
    let mut coeffs = [0.0f64; 64];
    fdct_8x8(samples, basis, &mut coeffs);
    // Quantise in zigzag order (`qt` is raster-order here; the DQT
    // segment transmits it in zigzag order).
    let mut quantised = [0i32; 64];
    for (k, q) in quantised.iter_mut().enumerate() {
        *q = (coeffs[ZIGZAG[k]] / f64::from(qt[ZIGZAG[k]])).round() as i32;
    }
    let diff = quantised[0] - *pred;
    *pred = quantised[0];
    let size = category(diff);
    let (code, bits) = dc_codes[size as usize];
    writer.push(u32::from(code), u32::from(bits));
    writer.push(magnitude_bits(diff, size), size);

    let mut run = 0usize;
    for &value in &quantised[1..] {
        if value == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            let (code, bits) = ac_codes[0xF0]; // ZRL
            writer.push(u32::from(code), u32::from(bits));
            run -= 16;
        }
        let size = category(value);
        let (code, bits) = ac_codes[(run << 4) | size as usize];
        writer.push(u32::from(code), u32::from(bits));
        writer.push(magnitude_bits(value, size), size);
        run = 0;
    }
    if run > 0 {
        let (code, bits) = ac_codes[0x00]; // EOB
        writer.push(u32::from(code), u32::from(bits));
    }
}

/// Extracts the 8x8 block at `(block_x, block_y)` from a component
/// plane, level-shifted by -128 and edge-replicated past the borders.
fn extract_block(
    plane: &[f64],
    width: usize,
    height: usize,
    block_x: usize,
    block_y: usize,
    out: &mut [f64; 64],
) {
    for y in 0..8 {
        let sy = (block_y * 8 + y).min(height - 1);
        for x in 0..8 {
            let sx = (block_x * 8 + x).min(width - 1);
            out[y * 8 + x] = plane[sy * width + sx] - 128.0;
        }
    }
}

/// Encodes an image as baseline JPEG at `quality` (1..=100, the libjpeg
/// scaling curve over the Annex K tables). Grayscale images become
/// single-component streams; RGB becomes YCbCr 4:4:4. Lossy by nature:
/// round-tripping is approximate, closer at higher quality.
pub fn encode_jpeg(image: &Image, quality: u8) -> Vec<u8> {
    let width = image.width();
    let height = image.height();
    let gray = image.channels() == Channels::Gray;
    let luma_qt = scaled_quant(&K_LUMA_QUANT, quality);
    let chroma_qt = scaled_quant(&K_CHROMA_QUANT, quality);

    // Color conversion into planes (luma only for grayscale input).
    let mut planes: Vec<Vec<f64>> = Vec::new();
    if gray {
        planes.push(image.plane(0).iter().map(|&v| v.round().clamp(0.0, 255.0)).collect());
    } else {
        let mut y_plane = vec![0.0; width * height];
        let mut cb_plane = vec![0.0; width * height];
        let mut cr_plane = vec![0.0; width * height];
        let (rp, gp, bp) = (image.plane(0), image.plane(1), image.plane(2));
        for i in 0..width * height {
            let (r, g, b) = (
                rp[i].round().clamp(0.0, 255.0),
                gp[i].round().clamp(0.0, 255.0),
                bp[i].round().clamp(0.0, 255.0),
            );
            y_plane[i] = 0.299 * r + 0.587 * g + 0.114 * b;
            cb_plane[i] = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
            cr_plane[i] = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
        }
        planes.push(y_plane);
        planes.push(cb_plane);
        planes.push(cr_plane);
    }

    let mut out = vec![0xFF, 0xD8]; // SOI
                                    // Minimal JFIF APP0 so external viewers accept the stream.
    segment(&mut out, 0xE0, &[b'J', b'F', b'I', b'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0]);
    segment(&mut out, 0xDB, &dqt_payload(0, &luma_qt));
    if !gray {
        segment(&mut out, 0xDB, &dqt_payload(1, &chroma_qt));
    }
    let ncomp = if gray { 1u8 } else { 3u8 };
    let mut sof = vec![8];
    sof.extend_from_slice(&(height as u16).to_be_bytes());
    sof.extend_from_slice(&(width as u16).to_be_bytes());
    sof.push(ncomp);
    for c in 0..ncomp {
        sof.extend_from_slice(&[c + 1, 0x11, if c == 0 { 0 } else { 1 }]);
    }
    segment(&mut out, 0xC0, &sof);
    segment(&mut out, 0xC4, &dht_payload(0x00, &K_DC_LUMA));
    segment(&mut out, 0xC4, &dht_payload(0x10, &K_AC_LUMA));
    if !gray {
        segment(&mut out, 0xC4, &dht_payload(0x01, &K_DC_CHROMA));
        segment(&mut out, 0xC4, &dht_payload(0x11, &K_AC_CHROMA));
    }
    let mut sos = vec![ncomp];
    for c in 0..ncomp {
        sos.extend_from_slice(&[c + 1, if c == 0 { 0x00 } else { 0x11 }]);
    }
    sos.extend_from_slice(&[0, 63, 0]);
    segment(&mut out, 0xDA, &sos);

    let basis = dct_basis();
    let dc_luma = HuffTable::new(K_DC_LUMA.0, K_DC_LUMA.1.to_vec())
        .expect("Annex K table is well-formed")
        .build_codes();
    let ac_luma = HuffTable::new(K_AC_LUMA.0, K_AC_LUMA.1.to_vec())
        .expect("Annex K table is well-formed")
        .build_codes();
    let dc_chroma = HuffTable::new(K_DC_CHROMA.0, K_DC_CHROMA.1.to_vec())
        .expect("Annex K table is well-formed")
        .build_codes();
    let ac_chroma = HuffTable::new(K_AC_CHROMA.0, K_AC_CHROMA.1.to_vec())
        .expect("Annex K table is well-formed")
        .build_codes();

    let mut writer = ScanWriter::new();
    let mut preds = vec![0i32; planes.len()];
    let mut block = [0.0f64; 64];
    for block_y in 0..height.div_ceil(8) {
        for block_x in 0..width.div_ceil(8) {
            for (c, plane) in planes.iter().enumerate() {
                extract_block(plane, width, height, block_x, block_y, &mut block);
                let (qt, dc, ac) = if c == 0 {
                    (&luma_qt, &dc_luma, &ac_luma)
                } else {
                    (&chroma_qt, &dc_chroma, &ac_chroma)
                };
                encode_block(&mut writer, &block, qt, &basis, dc, ac, &mut preds[c]);
            }
        }
    }
    out.extend_from_slice(&writer.finish());
    out.extend_from_slice(&[0xFF, 0xD9]); // EOI
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_rgb(width: usize, height: usize) -> Image {
        let mut data = Vec::with_capacity(width * height * 3);
        for y in 0..height {
            for x in 0..width {
                data.push(((x * 9 + y * 4) % 256) as f64);
                data.push(((x * 3 + y * 7 + 60) % 256) as f64);
                data.push(((x * 5 + y * 2 + 120) % 256) as f64);
            }
        }
        Image::from_interleaved(width, height, Channels::Rgb, data).unwrap()
    }

    /// Test-side bit packer: MSB-first with FF stuffing, pad with 1s.
    struct TestBits(ScanWriter);
    impl TestBits {
        fn new() -> Self {
            Self(ScanWriter::new())
        }
        fn push(&mut self, value: u32, bits: u32) {
            self.0.push(value, bits);
        }
        fn finish(self) -> Vec<u8> {
            self.0.finish()
        }
    }

    fn seg(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
        segment(out, marker, payload);
    }

    /// All-ones quantisation table (tq = id), so coefficients pass
    /// through dequantisation unchanged.
    fn unit_dqt(id: u8) -> Vec<u8> {
        let mut payload = vec![id];
        payload.extend(std::iter::repeat_n(1u8, 64));
        payload
    }

    /// DHT payload from explicit (class_id, lengths-as-(len,symbol)).
    fn tiny_dht(class_id: u8, codes: &[(u8, u8)]) -> Vec<u8> {
        let mut counts = [0u8; 17];
        for &(len, _) in codes {
            counts[usize::from(len)] += 1;
        }
        let mut payload = vec![class_id];
        payload.extend_from_slice(&counts[1..]);
        payload.extend(codes.iter().map(|&(_, sym)| sym));
        payload
    }

    /// Hand-assembled 8x8 grayscale, DC-only: quantised DC = 320 with a
    /// unit table means every pixel is 320/8 + 128 = 168. The Huffman
    /// tables are declared in-stream (DC: category 9 <- code '0';
    /// AC: EOB <- code '0'), so this vector exercises the real marker
    /// walk, DHT parsing, entropy decode, and IDCT against pixel values
    /// derived from the T.81 formulas — independent of the encoder.
    #[test]
    fn golden_dc_only_grayscale() {
        let mut jpeg = vec![0xFF, 0xD8];
        seg(&mut jpeg, 0xDB, &unit_dqt(0));
        seg(&mut jpeg, 0xC0, &[8, 0, 8, 0, 8, 1, 1, 0x11, 0]);
        seg(&mut jpeg, 0xC4, &tiny_dht(0x00, &[(1, 9)]));
        seg(&mut jpeg, 0xC4, &tiny_dht(0x10, &[(1, 0x00)]));
        seg(&mut jpeg, 0xDA, &[1, 1, 0x00, 0, 63, 0]);
        let mut bits = TestBits::new();
        bits.push(0, 1); // DC huffman: category 9
        bits.push(320, 9); // DC magnitude: +320
        bits.push(0, 1); // AC huffman: EOB
        jpeg.extend(bits.finish());
        jpeg.extend_from_slice(&[0xFF, 0xD9]);

        let image = decode_jpeg(&jpeg).unwrap();
        assert_eq!((image.width(), image.height()), (8, 8));
        assert_eq!(image.channels(), Channels::Gray);
        assert!(image.plane(0).iter().all(|&v| v == 168.0), "{:?}", &image.plane(0)[..8]);
    }

    /// Hand-assembled 16x16 4:2:0 color, flat: Y=120, Cb=148, Cr=108.
    /// One MCU of 4 Y blocks + Cb + Cr, DC-only. Expected RGB from the
    /// T.81 YCbCr equations.
    #[test]
    fn golden_flat_color_420() {
        let mut jpeg = vec![0xFF, 0xD8];
        seg(&mut jpeg, 0xDB, &unit_dqt(0));
        seg(&mut jpeg, 0xC0, &[8, 0, 16, 0, 16, 3, 1, 0x22, 0, 2, 0x11, 0, 3, 0x11, 0]);
        // DC: symbol 0 <- '0', symbol 7 <- '10', symbol 8 <- '110'.
        seg(&mut jpeg, 0xC4, &tiny_dht(0x00, &[(1, 0), (2, 7), (3, 8)]));
        seg(&mut jpeg, 0xC4, &tiny_dht(0x10, &[(1, 0x00)]));
        seg(&mut jpeg, 0xDA, &[3, 1, 0x00, 2, 0x00, 3, 0x00, 0, 63, 0]);
        let mut bits = TestBits::new();
        // Y block 0: DC diff = 8*(120-128) = -64 -> category 7, bits = -64+127.
        bits.push(0b10, 2);
        bits.push(63, 7);
        bits.push(0, 1); // EOB
        for _ in 0..3 {
            bits.push(0, 1); // Y blocks 1-3: DC diff 0
            bits.push(0, 1); // EOB
        }
        // Cb: DC = 8*(148-128) = 160 -> category 8, positive.
        bits.push(0b110, 3);
        bits.push(160, 8);
        bits.push(0, 1);
        // Cr: DC = 8*(108-128) = -160 -> category 8, bits = -160+255 = 95.
        bits.push(0b110, 3);
        bits.push(95, 8);
        bits.push(0, 1);
        jpeg.extend(bits.finish());
        jpeg.extend_from_slice(&[0xFF, 0xD9]);

        let image = decode_jpeg(&jpeg).unwrap();
        assert_eq!((image.width(), image.height()), (16, 16));
        assert_eq!(image.channels(), Channels::Rgb);
        let (y, cb, cr) = (120.0, 148.0 - 128.0, 108.0 - 128.0);
        let expected = [
            (y + 1.402 * cr as f64).round(),
            (y - 0.344_136 * cb - 0.714_136 * cr).round(),
            (y + 1.772 * cb).round(),
        ];
        for c in 0..3 {
            assert!(image.plane(c).iter().all(|&v| v == expected[c]), "channel {c}");
        }
    }

    #[test]
    fn encode_decode_round_trip_is_close() {
        let image = gradient_rgb(24, 17);
        let decoded = decode_jpeg(&encode_jpeg(&image, 95)).unwrap();
        assert_eq!((decoded.width(), decoded.height()), (24, 17));
        let max_err = image
            .planes()
            .iter()
            .flatten()
            .zip(decoded.planes().iter().flatten())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= 24.0, "quality-95 error {max_err} too large");
        // Lower quality loses more but must still be in the ballpark.
        let rough = decode_jpeg(&encode_jpeg(&image, 30)).unwrap();
        let mean_err = image
            .planes()
            .iter()
            .flatten()
            .zip(rough.planes().iter().flatten())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / (image.plane_len() * image.channel_count()) as f64;
        assert!(mean_err <= 30.0, "quality-30 mean error {mean_err}");
    }

    #[test]
    fn flat_gray_round_trip_is_exact_enough() {
        for value in [0.0, 31.0, 100.0, 128.0, 200.0, 255.0] {
            let image = Image::filled(16, 16, Channels::Gray, value);
            let decoded = decode_jpeg(&encode_jpeg(&image, 90)).unwrap();
            assert_eq!(decoded.channels(), Channels::Gray);
            for &sample in decoded.plane(0) {
                assert!((sample - value).abs() <= 1.0, "flat {value} decoded as {sample}");
            }
        }
    }

    #[test]
    fn decode_into_uses_the_provided_allocator() {
        let image = gradient_rgb(8, 8);
        let jpeg = encode_jpeg(&image, 90);
        let mut calls = 0usize;
        let decoded = decode_jpeg_into(&jpeg, &mut |n| {
            calls += 1;
            assert_eq!(n, 8 * 8, "one request per plane, each w*h samples");
            Vec::with_capacity(n)
        })
        .unwrap();
        assert_eq!(calls, 3);
        assert_eq!((decoded.width(), decoded.height()), (8, 8));
    }

    #[test]
    fn odd_dimensions_and_restart_free_streams_decode() {
        for (w, h) in [(1usize, 1usize), (7, 3), (8, 8), (9, 9), (17, 5)] {
            let image = gradient_rgb(w, h);
            let decoded = decode_jpeg(&encode_jpeg(&image, 90)).unwrap();
            assert_eq!((decoded.width(), decoded.height()), (w, h), "{w}x{h}");
        }
    }

    #[test]
    fn unsupported_features_are_typed() {
        let jpeg = encode_jpeg(&gradient_rgb(8, 8), 90);
        // Rewrite SOF0 (FFC0) to SOF2 (progressive).
        let mut progressive = jpeg.clone();
        let sof = progressive.windows(2).position(|w| w == [0xFF, 0xC0]).unwrap();
        progressive[sof + 1] = 0xC2;
        assert!(matches!(decode_jpeg(&progressive).unwrap_err(), ImagingError::Unsupported { .. }));
        // 12-bit precision.
        let mut deep = jpeg.clone();
        deep[sof + 4] = 12;
        assert!(matches!(decode_jpeg(&deep).unwrap_err(), ImagingError::Unsupported { .. }));
        // Sampling factor 4x1.
        let mut wide = jpeg;
        wide[sof + 11] = 0x41;
        assert!(matches!(decode_jpeg(&wide).unwrap_err(), ImagingError::Unsupported { .. }));
    }

    #[test]
    fn truncations_and_garbage_never_panic() {
        assert!(decode_jpeg(b"").is_err());
        assert!(decode_jpeg(b"\xFF\xD8").is_err());
        assert!(decode_jpeg(b"JFIF but not really").is_err());
        let jpeg = encode_jpeg(&gradient_rgb(10, 10), 80);
        // Every prefix missing entropy data must error; only the cuts
        // that merely drop the EOI trailer may still decode.
        for cut in 0..jpeg.len() {
            let result = decode_jpeg(&jpeg[..cut]);
            if cut < jpeg.len() - 2 {
                assert!(result.is_err(), "prefix of {cut} bytes decoded");
            }
        }
    }

    #[test]
    fn dct_round_trip_is_lossless_in_float() {
        let basis = dct_basis();
        let mut samples = [0.0f64; 64];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = ((i * 37 + 11) % 256) as f64 - 128.0;
        }
        let mut coeffs = [0.0f64; 64];
        let mut back = [0.0f64; 64];
        fdct_8x8(&samples, &basis, &mut coeffs);
        idct_8x8(&coeffs, &basis, &mut back);
        for (a, b) in samples.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn category_and_magnitude_match_extend() {
        for value in [-1024, -255, -64, -1, 0, 1, 63, 255, 1023] {
            let size = category(value);
            if value != 0 {
                let raw = magnitude_bits(value, size);
                assert_eq!(receive_extend(raw, size), value, "value {value}");
            } else {
                assert_eq!(size, 0);
            }
        }
    }
}
