//! Dependency-free image codecs.
//!
//! Two tiers. The *artefact* formats — binary PGM/PPM and 24-bit BMP —
//! persist everything the framework produces (attack images, spectra,
//! filtered images) in a form any external viewer understands. The
//! *real-world* formats — PNG (full from-scratch inflate underneath)
//! and baseline JPEG — are what production traffic actually ships, so
//! `scan` and `serve` can ingest genuine corpora.
//!
//! Entry points: [`sniff`] identifies a byte buffer by magic number,
//! [`decode_auto`]/[`decode_auto_into`] dispatch on it. The `*_into`
//! decoders take an allocator closure so streaming callers can hand
//! out recycled `BufferPool` buffers instead of fresh allocations.

mod bmp;
mod checksum;
mod inflate;
mod jpeg;
mod png;
mod pnm;
mod sniff;

pub use bmp::{decode_bmp, decode_bmp_into, encode_bmp, read_bmp_file, write_bmp_file};
pub use checksum::{adler32, crc32};
pub use inflate::{inflate, zlib_compress, zlib_decompress};
pub use jpeg::{decode_jpeg, decode_jpeg_into, encode_jpeg};
pub use png::{decode_png, decode_png_into, encode_png};
pub use pnm::{decode_pnm, decode_pnm_into, encode_pgm, encode_ppm, read_pnm_file, write_pnm_file};
pub use sniff::{decode_auto, decode_auto_into, sniff, ImageFormat};

/// Allocator handed to the `*_into` decoders: given a sample count,
/// return a `Vec<f64>` with at least that capacity (contents ignored —
/// decoders overwrite). Streaming callers pass `&mut |n| pool.take(n)`.
pub type SampleAlloc<'a> = &'a mut dyn FnMut(usize) -> Vec<f64>;
