//! Minimal image codecs: binary PGM (grayscale), PPM (RGB) and 24-bit BMP.
//!
//! These Netpbm formats are enough to persist every artefact the framework
//! produces (attack images, spectra, filtered images) in a form any external
//! viewer understands, without pulling in a compression dependency.

mod bmp;
mod pnm;

pub use bmp::{decode_bmp, encode_bmp, read_bmp_file, write_bmp_file};
pub use pnm::{decode_pnm, encode_pgm, encode_ppm, read_pnm_file, write_pnm_file};
