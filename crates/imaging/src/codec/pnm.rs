//! Netpbm encoding and decoding: binary PGM/PPM (`P5`/`P6`) plus the
//! plain ASCII variants (`P2`/`P3`) on the decode side.

use crate::{Channels, Image, ImagingError};
use std::io::{Read, Write};
use std::path::Path;

/// Encodes a grayscale image as a binary PGM (`P5`) byte vector.
///
/// RGB inputs are converted to luminance first.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::{Image, codec::{encode_pgm, decode_pnm}};
///
/// # fn main() -> Result<(), decamouflage_imaging::ImagingError> {
/// let img = Image::from_fn_gray(4, 2, |x, y| (x * 60 + y * 30) as f64);
/// let bytes = encode_pgm(&img);
/// let back = decode_pnm(&bytes)?;
/// assert!(back.approx_eq(&img, 0.5));
/// # Ok(())
/// # }
/// ```
pub fn encode_pgm(img: &Image) -> Vec<u8> {
    let gray = img.to_gray();
    let mut out = format!("P5\n{} {}\n255\n", gray.width(), gray.height()).into_bytes();
    out.extend(gray.to_u8_vec());
    out
}

/// Encodes an RGB image as a binary PPM (`P6`) byte vector.
///
/// Grayscale inputs are replicated across the three channels first.
pub fn encode_ppm(img: &Image) -> Vec<u8> {
    let rgb = img.to_rgb();
    let mut out = format!("P6\n{} {}\n255\n", rgb.width(), rgb.height()).into_bytes();
    out.extend(rgb.to_u8_vec());
    out
}

/// Decodes a PGM/PPM byte stream: binary `P5`/`P6` or plain ASCII
/// `P2`/`P3`.
///
/// Comments (`# …`) in the header are skipped; only `maxval = 255` streams
/// are supported.
///
/// # Errors
///
/// Returns [`ImagingError::Decode`] for malformed headers, unsupported
/// formats or truncated pixel data.
pub fn decode_pnm(bytes: &[u8]) -> Result<Image, ImagingError> {
    decode_pnm_into(bytes, &mut |n| vec![0.0; n])
}

/// Decodes a PGM/PPM byte stream, obtaining the sample buffer from
/// `alloc` so streaming callers can recycle `BufferPool` buffers.
///
/// # Errors
///
/// Same as [`decode_pnm`].
pub fn decode_pnm_into(
    bytes: &[u8],
    alloc: crate::codec::SampleAlloc<'_>,
) -> Result<Image, ImagingError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.token()?;
    let (channels, ascii) = match magic.as_str() {
        "P2" => (Channels::Gray, true),
        "P3" => (Channels::Rgb, true),
        "P5" => (Channels::Gray, false),
        "P6" => (Channels::Rgb, false),
        other => {
            return Err(ImagingError::Decode { message: format!("unsupported magic {other:?}") })
        }
    };
    let width: usize = cursor.number()?;
    let height: usize = cursor.number()?;
    let maxval: usize = cursor.number()?;
    if maxval != 255 {
        return Err(ImagingError::Decode { message: format!("unsupported maxval {maxval}") });
    }
    // Same decoded-pixel budget as the PNG/JPEG decoders: a hostile
    // header must not drive a huge allocation.
    if (width as u64).saturating_mul(height as u64) > (1 << 26) {
        return Err(ImagingError::Decode {
            message: format!("pnm declares {width}x{height}, past the pixel budget"),
        });
    }
    let ch = channels.count();
    let n = width * height;
    let expected = n * ch;
    let mut planes: Vec<Vec<f64>> = (0..ch)
        .map(|_| {
            let mut p = alloc(n);
            p.resize(n, 0.0);
            p
        })
        .collect();
    if ascii {
        // Plain (ASCII) variant: whitespace-separated decimal samples in
        // pixel-major (interleaved) wire order, scattered into planes.
        for i in 0..expected {
            let v: usize = cursor.number()?;
            if v > 255 {
                return Err(ImagingError::Decode {
                    message: format!("sample {v} exceeds maxval 255"),
                });
            }
            planes[i % ch][i / ch] = v as f64;
        }
        return Image::from_planes(width, height, channels, planes);
    }
    // Exactly one whitespace byte separates the header from pixel data.
    cursor.expect_single_whitespace()?;
    let data = cursor.rest();
    if data.len() < expected {
        return Err(ImagingError::Decode {
            message: format!("pixel data truncated: have {} bytes, need {expected}", data.len()),
        });
    }
    match channels {
        Channels::Gray => {
            for (dst, &byte) in planes[0].iter_mut().zip(&data[..expected]) {
                *dst = f64::from(byte);
            }
        }
        Channels::Rgb => {
            for (i, px) in data[..expected].chunks_exact(3).enumerate() {
                planes[0][i] = f64::from(px[0]);
                planes[1][i] = f64::from(px[1]);
                planes[2][i] = f64::from(px[2]);
            }
        }
    }
    Image::from_planes(width, height, channels, planes)
}

/// Writes an image to `path`, picking PGM for grayscale and PPM for RGB.
///
/// # Errors
///
/// Propagates any I/O error.
pub fn write_pnm_file(img: &Image, path: impl AsRef<Path>) -> Result<(), ImagingError> {
    let bytes = match img.channels() {
        Channels::Gray => encode_pgm(img),
        Channels::Rgb => encode_ppm(img),
    };
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Reads a PGM/PPM image from `path`.
///
/// # Errors
///
/// Propagates I/O errors and decode failures.
pub fn read_pnm_file(path: impl AsRef<Path>) -> Result<Image, ImagingError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_pnm(&bytes)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws_and_comments(&mut self) -> Result<(), ImagingError> {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.bytes.len() && self.bytes[self.pos] == b'#' {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return Ok(());
            }
        }
    }

    fn token(&mut self) -> Result<String, ImagingError> {
        self.skip_ws_and_comments()?;
        let start = self.pos;
        while self.pos < self.bytes.len() && !self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ImagingError::Decode { message: "unexpected end of header".into() });
        }
        String::from_utf8(self.bytes[start..self.pos].to_vec())
            .map_err(|_| ImagingError::Decode { message: "non-utf8 header token".into() })
    }

    fn number(&mut self) -> Result<usize, ImagingError> {
        let tok = self.token()?;
        tok.parse()
            .map_err(|_| ImagingError::Decode { message: format!("expected number, got {tok:?}") })
    }

    fn expect_single_whitespace(&mut self) -> Result<(), ImagingError> {
        if self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
            Ok(())
        } else {
            Err(ImagingError::Decode { message: "missing separator before pixel data".into() })
        }
    }

    fn rest(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip() {
        let img = Image::from_fn_gray(7, 5, |x, y| ((x * 37 + y * 11) % 256) as f64);
        let back = decode_pnm(&encode_pgm(&img)).unwrap();
        assert_eq!(back.channels(), Channels::Gray);
        assert!(back.approx_eq(&img, 0.5));
    }

    #[test]
    fn ppm_roundtrip() {
        let img = Image::from_fn_rgb(5, 4, |x, y| {
            [(x * 50 % 256) as f64, (y * 60 % 256) as f64, ((x + y) * 20 % 256) as f64]
        });
        let back = decode_pnm(&encode_ppm(&img)).unwrap();
        assert_eq!(back.channels(), Channels::Rgb);
        assert!(back.approx_eq(&img, 0.5));
    }

    #[test]
    fn encode_pgm_converts_rgb_to_luma() {
        let img = Image::from_fn_rgb(2, 2, |_, _| [255.0, 0.0, 0.0]);
        let back = decode_pnm(&encode_pgm(&img)).unwrap();
        assert_eq!(back.channels(), Channels::Gray);
        assert!((back.get(0, 0, 0) - (0.299f64 * 255.0).round()).abs() < 1.0);
    }

    #[test]
    fn decoder_skips_comments() {
        let mut bytes = b"P5\n# a comment\n2 1\n# another\n255\n".to_vec();
        bytes.extend_from_slice(&[7u8, 9u8]);
        let img = decode_pnm(&bytes).unwrap();
        assert_eq!(img.plane(0), &[7.0, 9.0]);
    }

    #[test]
    fn ascii_p2_decodes() {
        let img = decode_pnm(b"P2\n# plain gray\n3 2\n255\n0 10 20\n30 40 255\n").unwrap();
        assert_eq!(img.channels(), Channels::Gray);
        assert_eq!(img.plane(0), &[0.0, 10.0, 20.0, 30.0, 40.0, 255.0]);
    }

    #[test]
    fn ascii_p3_decodes() {
        let img = decode_pnm(b"P3\n1 2\n255\n1 2 3  4 5 6\n").unwrap();
        assert_eq!(img.channels(), Channels::Rgb);
        assert_eq!(img.to_interleaved(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn ascii_rejects_oversized_samples_and_truncation() {
        assert!(decode_pnm(b"P2\n1 1\n255\n300\n").is_err());
        assert!(decode_pnm(b"P2\n2 2\n255\n1 2 3\n").is_err());
    }

    #[test]
    fn decoder_rejects_bad_magic() {
        assert!(matches!(decode_pnm(b"P7\n1 1\n255\n\x00"), Err(ImagingError::Decode { .. })));
    }

    #[test]
    fn decoder_rejects_bad_maxval() {
        assert!(decode_pnm(b"P5\n1 1\n65535\n\x00\x00").is_err());
    }

    #[test]
    fn decoder_rejects_truncated_data() {
        assert!(decode_pnm(b"P5\n2 2\n255\n\x00\x01").is_err());
    }

    #[test]
    fn decoder_rejects_garbage_header() {
        assert!(decode_pnm(b"P5\nxx yy\n255\n\x00").is_err());
        assert!(decode_pnm(b"P5").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("decamouflage-imaging-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pgm");
        let img = Image::from_fn_gray(3, 3, |x, y| (x + y) as f64 * 20.0);
        write_pnm_file(&img, &path).unwrap();
        let back = read_pnm_file(&path).unwrap();
        assert!(back.approx_eq(&img, 0.5));
        std::fs::remove_file(&path).ok();
    }
}
