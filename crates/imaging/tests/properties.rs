//! Property-based tests (proptest) for the imaging substrate.

use decamouflage_imaging::codec::{decode_bmp, decode_pnm, encode_bmp, encode_pgm, encode_ppm};
use decamouflage_imaging::filter::{
    box_mean, maximum_filter, minimum_filter, rank_filter, IntegralImage, RankKind,
};
use decamouflage_imaging::filter::{
    convolve_separable, convolve_separable_with_scratch, gaussian_kernel, ConvScratch,
};
use decamouflage_imaging::scale::{CoeffMatrix, ScaleAlgorithm, Scaler, ScalerCache};
use decamouflage_imaging::transform::{
    flip_horizontal, flip_vertical, rotate180, rotate90_ccw, rotate90_cw, transpose,
};
use decamouflage_imaging::{Channels, Image, Rect, Size};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = Image> {
    (2usize..=20, 2usize..=20).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap())
    })
}

fn arb_algorithm() -> impl Strategy<Value = ScaleAlgorithm> {
    prop_oneof![
        Just(ScaleAlgorithm::Nearest),
        Just(ScaleAlgorithm::Bilinear),
        Just(ScaleAlgorithm::Bicubic),
        Just(ScaleAlgorithm::Area),
        Just(ScaleAlgorithm::Lanczos3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn scaler_equals_separate_matrix_application(
        img in arb_image(),
        algo in arb_algorithm(),
        dw in 1usize..12,
        dh in 1usize..12,
    ) {
        // The 2-D scaler must equal applying the 1-D coefficient matrices
        // manually: columns then rows.
        let scaler = Scaler::new(img.size(), Size::new(dw, dh), algo).unwrap();
        let direct = scaler.apply(&img).unwrap();

        let v = CoeffMatrix::build(algo, img.height(), dh).unwrap();
        let hmat = CoeffMatrix::build(algo, img.width(), dw).unwrap();
        let mut mid = vec![0.0; img.width() * dh];
        for x in 0..img.width() {
            let col: Vec<f64> = (0..img.height()).map(|y| img.get(x, y, 0)).collect();
            for (y, val) in v.apply(&col).into_iter().enumerate() {
                mid[y * img.width() + x] = val;
            }
        }
        for y in 0..dh {
            let row: Vec<f64> = (0..img.width()).map(|x| mid[y * img.width() + x]).collect();
            for (x, val) in hmat.apply(&row).into_iter().enumerate() {
                prop_assert!(
                    (direct.get(x, y, 0) - val).abs() < 1e-9,
                    "({x},{y}): {} vs {val}",
                    direct.get(x, y, 0)
                );
            }
        }
    }

    #[test]
    fn transform_group_relations(img in arb_image()) {
        prop_assert_eq!(rotate180(&img), flip_horizontal(&flip_vertical(&img)));
        prop_assert_eq!(rotate90_ccw(&rotate90_cw(&img)), img.clone());
        prop_assert_eq!(transpose(&transpose(&img)), img.clone());
        // Transpose swaps the two flips.
        prop_assert_eq!(
            transpose(&flip_horizontal(&img)),
            flip_vertical(&transpose(&img))
        );
    }

    #[test]
    fn codec_roundtrips(img in arb_image()) {
        let back = decode_pnm(&encode_pgm(&img)).unwrap();
        prop_assert!(back.approx_eq(&img, 0.5));
        let rgb = img.to_rgb();
        let back = decode_pnm(&encode_ppm(&rgb)).unwrap();
        prop_assert!(back.approx_eq(&rgb, 0.5));
        let back = decode_bmp(&encode_bmp(&rgb)).unwrap();
        prop_assert!(back.approx_eq(&rgb, 0.5));
    }

    #[test]
    fn erosion_dilation_duality(img in arb_image(), window in 1usize..5) {
        // min(-I) == -max(I) (up to the sample negation).
        let neg = img.map(|v| 255.0 - v);
        let min_of_neg = minimum_filter(&neg, window).unwrap();
        let max_then_neg = maximum_filter(&img, window).unwrap().map(|v| 255.0 - v);
        prop_assert!(min_of_neg.approx_eq(&max_then_neg, 1e-9));
    }

    #[test]
    fn repeated_erosion_never_grows(img in arb_image()) {
        let once = minimum_filter(&img, 3).unwrap();
        let twice = minimum_filter(&once, 3).unwrap();
        for (a, b) in twice.planes().iter().flatten().zip(once.planes().iter().flatten()) {
            prop_assert!(a <= b);
        }
    }

    #[test]
    fn median_is_bracketed_by_extrema(img in arb_image(), window in 1usize..4) {
        let lo = minimum_filter(&img, window).unwrap();
        let mid = rank_filter(&img, window, RankKind::Median).unwrap();
        let hi = maximum_filter(&img, window).unwrap();
        for ((l, m), h) in lo
            .planes()
            .iter()
            .flatten()
            .zip(mid.planes().iter().flatten())
            .zip(hi.planes().iter().flatten())
        {
            prop_assert!(l <= m && m <= h);
        }
    }

    #[test]
    fn integral_rect_sums_match_naive(
        img in arb_image(),
        x in 0usize..16,
        y in 0usize..16,
        w in 1usize..10,
        h in 1usize..10,
    ) {
        let integral = IntegralImage::new(&img);
        let rect = Rect::new(x, y, w, h);
        let mut naive = 0.0;
        if let Some(clipped) = rect.clamp_to(img.size()) {
            for yy in clipped.y..clipped.bottom() {
                for xx in clipped.x..clipped.right() {
                    naive += img.get(xx, yy, 0);
                }
            }
        }
        prop_assert!((integral.rect_sum(rect, 0) - naive).abs() < 1e-6);
    }

    #[test]
    fn box_mean_stays_within_hull(img in arb_image(), window in 1usize..6) {
        let blurred = box_mean(&img, window).unwrap();
        prop_assert!(blurred.min_sample() >= img.min_sample() - 1e-9);
        prop_assert!(blurred.max_sample() <= img.max_sample() + 1e-9);
    }

    #[test]
    fn cached_scaler_is_bit_identical_to_cold_built(
        img in arb_image(),
        algo in arb_algorithm(),
        dw in 1usize..23,
        dh in 1usize..23,
    ) {
        // The engine's plan cache must not change results: a plan fetched
        // from the cache (cold and warm hits alike) produces exactly the
        // bytes a freshly built scaler does, for every algorithm and for
        // non-power-of-two sizes.
        let dst = Size::new(dw, dh);
        let cold = Scaler::new(img.size(), dst, algo).unwrap().apply(&img).unwrap();
        let cache = ScalerCache::new();
        let miss = cache.get(img.size(), dst, algo).unwrap().apply(&img).unwrap();
        let hit = cache.get(img.size(), dst, algo).unwrap().apply(&img).unwrap();
        prop_assert_eq!(&miss, &cold);
        prop_assert_eq!(&hit, &cold);
        prop_assert_eq!(cache.len(), 1);
    }

    #[test]
    fn scratch_convolution_is_bit_identical_to_reference(
        img in arb_image(),
        sigma_h in 0.4f64..2.5,
        sigma_v in 0.4f64..2.5,
    ) {
        // The fast scratch-buffer convolution (the engine's SSIM blur path)
        // must match the reference implementation bit for bit.
        let horizontal = gaussian_kernel(sigma_h, None).unwrap();
        let vertical = gaussian_kernel(sigma_v, None).unwrap();
        let reference = convolve_separable(&img, &horizontal, &vertical).unwrap();
        let mut scratch = ConvScratch::default();
        let fast =
            convolve_separable_with_scratch(&img, &horizontal, &vertical, &mut scratch).unwrap();
        prop_assert_eq!(&fast, &reference);
    }

    #[test]
    fn quantized_images_are_integral_and_bounded(img in arb_image()) {
        let noisy = img.map(|v| v * 1.3 - 20.0);
        let q = noisy.quantized();
        for &v in q.planes().iter().flatten() {
            prop_assert!((0.0..=255.0).contains(&v));
            prop_assert_eq!(v, v.round());
        }
    }
}

// --- Vectorized-kernel equivalence suite -----------------------------------
//
// Every fast kernel behind the `simd` feature must be bit-identical to the
// plain scalar loop it replaced — including NaN payloads, signed zeros and
// overflow-range values. These properties run the public dispatchers (which
// take the AVX path when the feature and the CPU allow it) against scalar
// references written out verbatim, and compare `to_bits` per element.

use decamouflage_imaging::simd::{
    axpy, fold_max, fold_min, ssim_combine, weighted_sum_rows, WEIGHTED_SUM_MAX_ROWS,
};

/// Mostly-finite samples with occasional NaN / ±inf / −0.0 / near-overflow
/// poison, sized to cross the 4-lane and 16-element SIMD block boundaries.
fn arb_poisoned(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    // The compat `prop_oneof!` is unweighted; repeating the finite range
    // biases samples toward mostly-finite data with occasional poison.
    let finite = -1e3f64..1e3;
    let sample = prop_oneof![
        finite.clone(),
        finite.clone(),
        finite.clone(),
        finite.clone(),
        finite.clone(),
        finite,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0),
        Just(1e300),
        Just(-1e300),
    ];
    proptest::collection::vec(sample, len)
}

fn arb_poisoned_image() -> impl Strategy<Value = Image> {
    (3usize..=9, 3usize..=9).prop_flat_map(|(w, h)| {
        arb_poisoned(w * h..w * h + 1)
            .prop_map(move |data| Image::from_gray_plane(w, h, data).unwrap())
    })
}

/// Bit equality modulo NaN payloads: non-NaN results must match exactly;
/// NaN results must be NaN on both sides, but their payload bits are
/// unspecified — IEEE 754 leaves NaN propagation open and LLVM freely
/// commutes `fadd`/`fmul` operands, so two compilations of the *same*
/// scalar expression can already disagree on which quiet NaN comes out
/// (e.g. `NaN + (0.0 * inf)`). The engine never scores NaN pixels
/// (validation quarantines them), so scores are unaffected.
fn bits_match(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simd_axpy_and_folds_match_scalar_loops(
        dst0 in arb_poisoned(1..67),
        src0 in arb_poisoned(1..67),
        w in prop_oneof![-10.0f64..10.0, Just(f64::NAN), Just(0.0), Just(-0.0)],
    ) {
        let n = dst0.len().min(src0.len());
        let (dst0, src) = (&dst0[..n], &src0[..n]);

        let mut fast = dst0.to_vec();
        axpy(&mut fast, src, w);
        let mut reference = dst0.to_vec();
        for (d, &s) in reference.iter_mut().zip(src) {
            *d += w * s;
        }
        for (&a, &b) in fast.iter().zip(&reference) {
            prop_assert!(bits_match(a, b), "axpy: {a:?} vs {b:?}");
        }

        let mut fast = dst0.to_vec();
        fold_min(&mut fast, src);
        let mut reference = dst0.to_vec();
        for (d, &s) in reference.iter_mut().zip(src) {
            *d = d.min(s);
        }
        for (&a, &b) in fast.iter().zip(&reference) {
            prop_assert!(bits_match(a, b), "fold_min: {a:?} vs {b:?}");
        }

        let mut fast = dst0.to_vec();
        fold_max(&mut fast, src);
        let mut reference = dst0.to_vec();
        for (d, &s) in reference.iter_mut().zip(src) {
            *d = d.max(s);
        }
        for (&a, &b) in fast.iter().zip(&reference) {
            prop_assert!(bits_match(a, b), "fold_max: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn simd_weighted_sum_rows_matches_axpy_chain(
        rows in 1usize..=WEIGHTED_SUM_MAX_ROWS,
        len in 1usize..67,
        accumulate in any::<bool>(),
        pool in arb_poisoned(1200..1201),
        weights0 in arb_poisoned(16..17),
    ) {
        let srcs: Vec<&[f64]> = (0..rows).map(|k| &pool[k * len..(k + 1) * len]).collect();
        let weights = &weights0[..rows];
        let dst0 = &pool[1100..1100 + len];

        let mut fast = dst0.to_vec();
        weighted_sum_rows(&mut fast, &srcs, weights, accumulate);

        let mut reference = dst0.to_vec();
        if !accumulate {
            reference.fill(0.0);
        }
        for (s, &w) in srcs.iter().zip(weights) {
            for (d, &v) in reference.iter_mut().zip(*s) {
                *d += w * v;
            }
        }
        for (&a, &b) in fast.iter().zip(&reference) {
            prop_assert!(bits_match(a, b), "weighted_sum_rows: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn simd_ssim_combine_matches_scalar_formula(
        len in 1usize..67,
        pool in arb_poisoned(400..401),
        c1 in 1e-6f64..10.0,
        c2 in 1e-6f64..10.0,
    ) {
        let plane = |k: usize| &pool[k * len..(k + 1) * len];
        let (mu_a, mu_b, a_sq, b_sq, ab) = (plane(0), plane(1), plane(2), plane(3), plane(4));

        let mut fast = vec![0.0; len];
        ssim_combine(&mut fast, mu_a, mu_b, a_sq, b_sq, ab, c1, c2);

        // The historical per-pixel loop, op for op: `(2.0 * µa) * µb`
        // grouping, a `0.0 + q` accumulator seed, then `/ 1.0` for the
        // single-channel average.
        for i in 0..len {
            let (ma, mb) = (mu_a[i], mu_b[i]);
            let va = a_sq[i] - ma * ma;
            let vb = b_sq[i] - mb * mb;
            let cov = ab[i] - ma * mb;
            let numerator = (2.0 * ma * mb + c1) * (2.0 * cov + c2);
            let denominator = (ma * ma + mb * mb + c1) * (va + vb + c2);
            let mut acc = 0.0;
            acc += numerator / denominator;
            prop_assert!(bits_match(fast[i], acc / 1.0), "pixel {}: {:?} vs {:?}", i, fast[i], acc / 1.0);
        }
    }

    #[test]
    fn oversized_kernel_convolution_is_bit_identical(
        img in arb_image(),
        sigma in 0.8f64..4.0,
        extra in 0usize..6,
    ) {
        // Kernel radius at least half the image side (and beyond), so the
        // clamped border path dominates — the regime where a fast path
        // most easily diverges from the reference.
        let radius = img.width().max(img.height()) / 2 + extra;
        let kernel = gaussian_kernel(sigma, Some(radius)).unwrap();
        let reference = convolve_separable(&img, &kernel, &kernel).unwrap();
        let mut scratch = ConvScratch::default();
        let fast =
            convolve_separable_with_scratch(&img, &kernel, &kernel, &mut scratch).unwrap();
        prop_assert_eq!(&fast, &reference);
    }

    #[test]
    fn nan_poisoned_images_do_not_panic_and_stay_bit_identical(
        img in arb_poisoned_image(),
        algo in arb_algorithm(),
        window in 1usize..4,
        sigma in 0.5f64..2.0,
    ) {
        // No fast path may panic on (or silently diverge over) non-finite
        // samples; the engine quarantines such inputs, but the kernels
        // beneath it must stay total.
        let dst = Size::new(img.width().div_ceil(2), img.height().div_ceil(2));
        let _ = Scaler::new(img.size(), dst, algo).unwrap().apply(&img).unwrap();
        let _ = rank_filter(&img, window, RankKind::Median).unwrap();
        let _ = minimum_filter(&img, window).unwrap();
        let _ = maximum_filter(&img, window).unwrap();

        let kernel = gaussian_kernel(sigma, None).unwrap();
        let reference = convolve_separable(&img, &kernel, &kernel).unwrap();
        let mut scratch = ConvScratch::default();
        let fast =
            convolve_separable_with_scratch(&img, &kernel, &kernel, &mut scratch).unwrap();
        for (&a, &b) in fast.planes().iter().flatten().zip(reference.planes().iter().flatten()) {
            prop_assert!(bits_match(a, b), "conv: {a:?} vs {b:?}");
        }
    }
}
