//! Property-based tests (proptest) for the imaging substrate.

use decamouflage_imaging::codec::{decode_bmp, decode_pnm, encode_bmp, encode_pgm, encode_ppm};
use decamouflage_imaging::filter::{
    box_mean, maximum_filter, minimum_filter, rank_filter, IntegralImage, RankKind,
};
use decamouflage_imaging::filter::{
    convolve_separable, convolve_separable_with_scratch, gaussian_kernel, ConvScratch,
};
use decamouflage_imaging::scale::{CoeffMatrix, ScaleAlgorithm, Scaler, ScalerCache};
use decamouflage_imaging::transform::{
    flip_horizontal, flip_vertical, rotate180, rotate90_ccw, rotate90_cw, transpose,
};
use decamouflage_imaging::{Channels, Image, Rect, Size};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = Image> {
    (2usize..=20, 2usize..=20).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap())
    })
}

fn arb_algorithm() -> impl Strategy<Value = ScaleAlgorithm> {
    prop_oneof![
        Just(ScaleAlgorithm::Nearest),
        Just(ScaleAlgorithm::Bilinear),
        Just(ScaleAlgorithm::Bicubic),
        Just(ScaleAlgorithm::Area),
        Just(ScaleAlgorithm::Lanczos3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn scaler_equals_separate_matrix_application(
        img in arb_image(),
        algo in arb_algorithm(),
        dw in 1usize..12,
        dh in 1usize..12,
    ) {
        // The 2-D scaler must equal applying the 1-D coefficient matrices
        // manually: columns then rows.
        let scaler = Scaler::new(img.size(), Size::new(dw, dh), algo).unwrap();
        let direct = scaler.apply(&img).unwrap();

        let v = CoeffMatrix::build(algo, img.height(), dh).unwrap();
        let hmat = CoeffMatrix::build(algo, img.width(), dw).unwrap();
        let mut mid = vec![0.0; img.width() * dh];
        for x in 0..img.width() {
            let col: Vec<f64> = (0..img.height()).map(|y| img.get(x, y, 0)).collect();
            for (y, val) in v.apply(&col).into_iter().enumerate() {
                mid[y * img.width() + x] = val;
            }
        }
        for y in 0..dh {
            let row: Vec<f64> = (0..img.width()).map(|x| mid[y * img.width() + x]).collect();
            for (x, val) in hmat.apply(&row).into_iter().enumerate() {
                prop_assert!(
                    (direct.get(x, y, 0) - val).abs() < 1e-9,
                    "({x},{y}): {} vs {val}",
                    direct.get(x, y, 0)
                );
            }
        }
    }

    #[test]
    fn transform_group_relations(img in arb_image()) {
        prop_assert_eq!(rotate180(&img), flip_horizontal(&flip_vertical(&img)));
        prop_assert_eq!(rotate90_ccw(&rotate90_cw(&img)), img.clone());
        prop_assert_eq!(transpose(&transpose(&img)), img.clone());
        // Transpose swaps the two flips.
        prop_assert_eq!(
            transpose(&flip_horizontal(&img)),
            flip_vertical(&transpose(&img))
        );
    }

    #[test]
    fn codec_roundtrips(img in arb_image()) {
        let back = decode_pnm(&encode_pgm(&img)).unwrap();
        prop_assert!(back.approx_eq(&img, 0.5));
        let rgb = img.to_rgb();
        let back = decode_pnm(&encode_ppm(&rgb)).unwrap();
        prop_assert!(back.approx_eq(&rgb, 0.5));
        let back = decode_bmp(&encode_bmp(&rgb)).unwrap();
        prop_assert!(back.approx_eq(&rgb, 0.5));
    }

    #[test]
    fn erosion_dilation_duality(img in arb_image(), window in 1usize..5) {
        // min(-I) == -max(I) (up to the sample negation).
        let neg = img.map(|v| 255.0 - v);
        let min_of_neg = minimum_filter(&neg, window).unwrap();
        let max_then_neg = maximum_filter(&img, window).unwrap().map(|v| 255.0 - v);
        prop_assert!(min_of_neg.approx_eq(&max_then_neg, 1e-9));
    }

    #[test]
    fn repeated_erosion_never_grows(img in arb_image()) {
        let once = minimum_filter(&img, 3).unwrap();
        let twice = minimum_filter(&once, 3).unwrap();
        for (a, b) in twice.as_slice().iter().zip(once.as_slice()) {
            prop_assert!(a <= b);
        }
    }

    #[test]
    fn median_is_bracketed_by_extrema(img in arb_image(), window in 1usize..4) {
        let lo = minimum_filter(&img, window).unwrap();
        let mid = rank_filter(&img, window, RankKind::Median).unwrap();
        let hi = maximum_filter(&img, window).unwrap();
        for ((l, m), h) in lo.as_slice().iter().zip(mid.as_slice()).zip(hi.as_slice()) {
            prop_assert!(l <= m && m <= h);
        }
    }

    #[test]
    fn integral_rect_sums_match_naive(
        img in arb_image(),
        x in 0usize..16,
        y in 0usize..16,
        w in 1usize..10,
        h in 1usize..10,
    ) {
        let integral = IntegralImage::new(&img);
        let rect = Rect::new(x, y, w, h);
        let mut naive = 0.0;
        if let Some(clipped) = rect.clamp_to(img.size()) {
            for yy in clipped.y..clipped.bottom() {
                for xx in clipped.x..clipped.right() {
                    naive += img.get(xx, yy, 0);
                }
            }
        }
        prop_assert!((integral.rect_sum(rect, 0) - naive).abs() < 1e-6);
    }

    #[test]
    fn box_mean_stays_within_hull(img in arb_image(), window in 1usize..6) {
        let blurred = box_mean(&img, window).unwrap();
        prop_assert!(blurred.min_sample() >= img.min_sample() - 1e-9);
        prop_assert!(blurred.max_sample() <= img.max_sample() + 1e-9);
    }

    #[test]
    fn cached_scaler_is_bit_identical_to_cold_built(
        img in arb_image(),
        algo in arb_algorithm(),
        dw in 1usize..23,
        dh in 1usize..23,
    ) {
        // The engine's plan cache must not change results: a plan fetched
        // from the cache (cold and warm hits alike) produces exactly the
        // bytes a freshly built scaler does, for every algorithm and for
        // non-power-of-two sizes.
        let dst = Size::new(dw, dh);
        let cold = Scaler::new(img.size(), dst, algo).unwrap().apply(&img).unwrap();
        let cache = ScalerCache::new();
        let miss = cache.get(img.size(), dst, algo).unwrap().apply(&img).unwrap();
        let hit = cache.get(img.size(), dst, algo).unwrap().apply(&img).unwrap();
        prop_assert_eq!(miss.as_slice(), cold.as_slice());
        prop_assert_eq!(hit.as_slice(), cold.as_slice());
        prop_assert_eq!(cache.len(), 1);
    }

    #[test]
    fn scratch_convolution_is_bit_identical_to_reference(
        img in arb_image(),
        sigma_h in 0.4f64..2.5,
        sigma_v in 0.4f64..2.5,
    ) {
        // The fast scratch-buffer convolution (the engine's SSIM blur path)
        // must match the reference implementation bit for bit.
        let horizontal = gaussian_kernel(sigma_h, None).unwrap();
        let vertical = gaussian_kernel(sigma_v, None).unwrap();
        let reference = convolve_separable(&img, &horizontal, &vertical).unwrap();
        let mut scratch = ConvScratch::default();
        let fast =
            convolve_separable_with_scratch(&img, &horizontal, &vertical, &mut scratch).unwrap();
        prop_assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn quantized_images_are_integral_and_bounded(img in arb_image()) {
        let noisy = img.map(|v| v * 1.3 - 20.0);
        let q = noisy.quantized();
        for &v in q.as_slice() {
            prop_assert!((0.0..=255.0).contains(&v));
            prop_assert_eq!(v, v.round());
        }
    }
}
