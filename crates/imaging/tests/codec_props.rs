//! Totality and round-trip properties for the codec subsystem.
//!
//! The decoders are the trust boundary of the whole pipeline: they take
//! attacker-controlled bytes. Every property here drives them with
//! hostile inputs — truncations, bit flips, spliced garbage, pure
//! noise — and requires a typed `Result`, never a panic and never an
//! oversized allocation.

use decamouflage_imaging::codec::{
    decode_auto, decode_bmp, decode_jpeg, decode_png, decode_pnm, encode_bmp, encode_jpeg,
    encode_pgm, encode_png, encode_ppm, inflate, zlib_compress, zlib_decompress,
};
use decamouflage_imaging::{Channels, Image};
use proptest::prelude::*;

fn arb_gray() -> impl Strategy<Value = Image> {
    (1usize..=17, 1usize..=13).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap())
    })
}

fn arb_rgb() -> impl Strategy<Value = Image> {
    (1usize..=13, 1usize..=11).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h * 3)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Rgb, &data).unwrap())
    })
}

/// A valid encoded file in one of the four supported containers.
fn arb_encoded() -> impl Strategy<Value = Vec<u8>> {
    (arb_rgb(), 0usize..5).prop_map(|(img, container)| match container {
        0 => encode_bmp(&img),
        1 => encode_ppm(&img),
        2 => encode_pgm(&img),
        3 => encode_png(&img),
        _ => encode_jpeg(&img, 85),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- round trips ----------------------------------------------------

    #[test]
    fn png_round_trips_rgb_bit_exactly(img in arb_rgb()) {
        let decoded = decode_png(&encode_png(&img)).unwrap();
        prop_assert_eq!(decoded.planes(), img.planes());
    }

    #[test]
    fn png_round_trips_gray_bit_exactly(img in arb_gray()) {
        let decoded = decode_png(&encode_png(&img)).unwrap();
        prop_assert_eq!(decoded.channels(), Channels::Gray);
        prop_assert_eq!(decoded.planes(), img.planes());
    }

    #[test]
    fn zlib_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let stream = zlib_compress(&data);
        let back = zlib_decompress(&stream, data.len().max(1)).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn jpeg_round_trip_stays_within_lossy_tolerance(img in arb_rgb()) {
        // Quality 95 on arbitrary noise: JPEG is lossy, but decoded
        // samples must stay plausible (in range, right geometry).
        let decoded = decode_jpeg(&encode_jpeg(&img, 95)).unwrap();
        prop_assert_eq!((decoded.width(), decoded.height()), (img.width(), img.height()));
        for &v in decoded.planes().iter().flatten() {
            prop_assert!((0.0..=255.0).contains(&v), "sample {v} out of range");
        }
    }

    // ---- totality: every decoder returns, never panics ------------------

    #[test]
    fn truncations_of_valid_files_never_panic(
        file in arb_encoded(),
        frac in 0.0f64..1.0,
    ) {
        let cut = ((file.len() as f64) * frac) as usize;
        // Success is allowed (e.g. trailing bytes were padding); a panic
        // or hang is the only failure mode under test.
        let _ = decode_auto(&file[..cut.min(file.len())]);
    }

    #[test]
    fn bit_flips_in_valid_files_never_panic(
        file in arb_encoded(),
        offset in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut mutated = file;
        if !mutated.is_empty() {
            let at = offset % mutated.len();
            mutated[at] ^= 1 << bit;
        }
        let _ = decode_auto(&mutated);
    }

    #[test]
    fn spliced_garbage_never_panics(
        file in arb_encoded(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
        offset in any::<usize>(),
    ) {
        let mut mutated = file;
        let at = offset % (mutated.len() + 1);
        mutated.splice(at..at, garbage);
        let _ = decode_auto(&mutated);
    }

    #[test]
    fn pure_noise_never_panics_any_decoder(
        noise in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_auto(&noise);
        // Also force each codec directly, bypassing the sniff gate —
        // a caller may hand any decoder any bytes.
        let _ = decode_bmp(&noise);
        let _ = decode_pnm(&noise);
        let _ = decode_png(&noise);
        let _ = decode_jpeg(&noise);
        let _ = inflate(&noise, 1 << 16);
        let _ = zlib_decompress(&noise, 1 << 16);
    }

    #[test]
    fn noise_with_real_magic_never_panics(
        noise in proptest::collection::vec(any::<u8>(), 0..256),
        which in 0usize..4,
    ) {
        // The hardest hostile shape: a correct signature followed by
        // attacker bytes reaches deep into each parser.
        let magic: &[u8] = match which {
            0 => &[137, 80, 78, 71, 13, 10, 26, 10],
            1 => &[0xFF, 0xD8],
            2 => b"BM",
            _ => b"P6",
        };
        let mut bytes = magic.to_vec();
        bytes.extend(noise);
        let _ = decode_auto(&bytes);
    }
}

#[test]
fn hostile_headers_do_not_allocate_unbounded() {
    // A PNM header declaring a huge raster must be rejected before the
    // sample buffer is allocated (the other codecs share the budget).
    let huge = b"P5\n999999999 999999999\n255\n\x00";
    assert!(decode_pnm(huge).is_err());
    // A zlib bomb must stop at the output cap, not inflate forever.
    let bomb = zlib_compress(&vec![0u8; 1 << 16]);
    assert!(zlib_decompress(&bomb, 1 << 10).is_err());
}
