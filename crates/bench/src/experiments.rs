//! One function per paper artefact: each returns a Markdown fragment that
//! the `repro` binary prints (and that `EXPERIMENTS.md` records).

use crate::corpus::{
    ExperimentContext, IDX_COLORHIST, IDX_FILTERING_MSE, IDX_FILTERING_PSNR, IDX_FILTERING_SSIM,
    IDX_PEAK_EXCESS, IDX_SCALING_MSE, IDX_SCALING_PSNR, IDX_SCALING_SSIM, IDX_STEGANALYSIS,
};
use decamouflage_core::pipeline::{
    evaluate_ensemble, evaluate_threshold, run_blackbox, run_whitebox,
};
use decamouflage_core::report::{number, percent, MarkdownTable};
use decamouflage_core::threshold::Direction;
use decamouflage_core::{EvalMetrics, ModelInputSize, SteganalysisDetector};
use decamouflage_datasets::SampleGenerator;
use decamouflage_imaging::scale::ScaleAlgorithm;
use decamouflage_metrics::{Histogram, SampleSummary};

/// All experiment identifiers, in presentation order.
pub const ALL_EXPERIMENTS: [&str; 18] = [
    "table1",
    "fig4",
    "fig7",
    "fig8",
    "table2",
    "fig9",
    "table3",
    "fig10",
    "table4",
    "fig11",
    "table5",
    "fig12",
    "table6",
    "table7",
    "table8",
    "fig15",
    "fig16",
    "ablate-colorhist",
];

/// Extended (non-paper-table) ablations, runnable individually or via
/// `repro ablations`.
pub const ABLATIONS: [&str; 8] = [
    "ablate-robust-scaler",
    "ablate-adaptive",
    "ablate-prevention",
    "ablate-csp-sensitivity",
    "ablate-factor",
    "ablate-backdoor",
    "table9-missed",
    "roc",
];

/// Dispatches an experiment by id.
///
/// # Errors
///
/// Returns a human-readable error string for unknown ids or experiment
/// failures.
pub fn run_experiment(id: &str, ctx: &ExperimentContext) -> Result<String, String> {
    match id {
        "table1" => Ok(table1()),
        "fig4" => Ok(fig4(ctx)),
        "fig7" => fig7(ctx).map_err(|e| e.to_string()),
        "fig8" => Ok(distribution_figure(
            ctx,
            "Figure 8 — scaling detection score distributions (white-box, training profile)",
            IDX_SCALING_MSE,
            IDX_SCALING_SSIM,
        )),
        "table2" => whitebox_table(
            ctx,
            "Table 2 — scaling detection, white-box",
            IDX_SCALING_MSE,
            IDX_SCALING_SSIM,
        )
        .map_err(|e| e.to_string()),
        "fig9" => benign_distribution_figure(
            ctx,
            "Figure 9 — benign scaling score distributions with percentiles (black-box)",
            IDX_SCALING_MSE,
            IDX_SCALING_SSIM,
        )
        .map_err(|e| e.to_string()),
        "table3" => blackbox_table(
            ctx,
            "Table 3 — scaling detection, black-box percentiles",
            IDX_SCALING_MSE,
            IDX_SCALING_SSIM,
        )
        .map_err(|e| e.to_string()),
        "fig10" => Ok(distribution_figure(
            ctx,
            "Figure 10 — filtering detection score distributions (white-box, training profile)",
            IDX_FILTERING_MSE,
            IDX_FILTERING_SSIM,
        )),
        "table4" => whitebox_table(
            ctx,
            "Table 4 — filtering detection, white-box",
            IDX_FILTERING_MSE,
            IDX_FILTERING_SSIM,
        )
        .map_err(|e| e.to_string()),
        "fig11" => benign_distribution_figure(
            ctx,
            "Figure 11 — benign filtering score distributions with percentiles (black-box)",
            IDX_FILTERING_MSE,
            IDX_FILTERING_SSIM,
        )
        .map_err(|e| e.to_string()),
        "table5" => blackbox_table(
            ctx,
            "Table 5 — filtering detection, black-box percentiles",
            IDX_FILTERING_MSE,
            IDX_FILTERING_SSIM,
        )
        .map_err(|e| e.to_string()),
        "fig12" => Ok(fig12(ctx)),
        "table6" => table6(ctx).map_err(|e| e.to_string()),
        "table7" => Ok(crate::runtime::table7(ctx)),
        "table8" => table8(ctx).map_err(|e| e.to_string()),
        "fig15" => Ok(psnr_figure(
            ctx,
            "Figure 15 — PSNR is not separable (scaling detection, Appendix A)",
            IDX_SCALING_PSNR,
        )),
        "fig16" => Ok(psnr_figure(
            ctx,
            "Figure 16 — PSNR is not separable (filtering detection, Appendix A)",
            IDX_FILTERING_PSNR,
        )),
        "ablate-colorhist" => Ok(ablate_colorhist(ctx)),
        "ablate-robust-scaler" => Ok(ablate_robust_scaler(ctx)),
        "ablate-adaptive" => ablate_adaptive(ctx).map_err(|e| e.to_string()),
        "ablate-prevention" => ablate_prevention(ctx).map_err(|e| e.to_string()),
        "table9-missed" => table9_missed(ctx).map_err(|e| e.to_string()),
        "ablate-factor" => ablate_factor(ctx).map_err(|e| e.to_string()),
        "ablate-backdoor" => ablate_backdoor(ctx).map_err(|e| e.to_string()),
        "ablate-csp-sensitivity" => Ok(ablate_csp_sensitivity(ctx)),
        "roc" => roc_table(ctx).map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown experiment {other:?}; known: {} + {}",
            ALL_EXPERIMENTS.join(", "),
            ABLATIONS.join(", ")
        )),
    }
}

fn metrics_row(label: &str, m: &EvalMetrics) -> Vec<String> {
    vec![
        label.to_string(),
        percent(m.accuracy),
        percent(m.precision),
        percent(m.recall),
        percent(m.far),
        percent(m.frr),
    ]
}

/// Table 1 — the static CNN input-size catalogue.
pub fn table1() -> String {
    let mut t = MarkdownTable::new(vec!["Model", "Size (pixels)"]);
    for entry in ModelInputSize::TABLE {
        t.push_row(vec![
            entry.model.to_string(),
            format!("{} x {}", entry.input.width, entry.input.height),
        ]);
    }
    format!("## Table 1 — input sizes of popular CNN models\n\n{t}")
}

/// Figure 7 — the white-box threshold-search traces for the scaling method.
fn fig7(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    let train = ctx.train();
    let mut out =
        String::from("## Figure 7 — threshold search traces, scaling detection (white-box)\n\n");
    for (idx, direction, label) in [
        (IDX_SCALING_MSE, Direction::AboveIsAttack, "MSE"),
        (IDX_SCALING_SSIM, Direction::BelowIsAttack, "SSIM"),
    ] {
        let corpus = train.of(idx);
        let search = decamouflage_core::threshold::search_whitebox(
            &corpus.benign,
            &corpus.attack,
            direction,
        )?;
        out.push_str(&format!(
            "### {label}: best threshold {} (train accuracy {})\n\n",
            number(search.threshold.value()),
            percent(search.train_accuracy)
        ));
        let mut t = MarkdownTable::new(vec!["candidate threshold", "accuracy"]);
        // Subsample the trace to ~25 representative points.
        let step = (search.trace.len() / 25).max(1);
        for point in search.trace.iter().step_by(step) {
            t.push_row(vec![number(point.threshold), percent(point.accuracy)]);
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    Ok(out)
}

/// Shared benign-vs-attack histogram figure.
fn distribution_figure(
    ctx: &ExperimentContext,
    title: &str,
    idx_mse: usize,
    idx_ssim: usize,
) -> String {
    let train = ctx.train();
    let mut out = format!("## {title}\n");
    for (idx, label, bins) in [(idx_mse, "MSE", 20), (idx_ssim, "SSIM", 20)] {
        let corpus = train.of(idx);
        out.push_str(&format!("\n### {label} — benign\n```\n"));
        out.push_str(&render_hist(&corpus.benign, bins));
        out.push_str("```\n");
        out.push_str(&format!("\n### {label} — attack\n```\n"));
        out.push_str(&render_hist(&corpus.attack, bins));
        out.push_str("```\n");
    }
    out
}

/// Shared benign-only histogram + percentile-marker figure (black-box).
fn benign_distribution_figure(
    ctx: &ExperimentContext,
    title: &str,
    idx_mse: usize,
    idx_ssim: usize,
) -> Result<String, decamouflage_core::DetectError> {
    let train = ctx.train();
    let mut out = format!("## {title}\n");
    for (idx, direction, label) in
        [(idx_mse, Direction::AboveIsAttack, "MSE"), (idx_ssim, Direction::BelowIsAttack, "SSIM")]
    {
        let corpus = train.of(idx);
        let summary = corpus.benign_summary()?;
        out.push_str(&format!(
            "\n### {label} — benign only (mean {}, std {})\n```\n",
            number(summary.mean),
            number(summary.std_dev)
        ));
        out.push_str(&render_hist(&corpus.benign, 20));
        out.push_str("```\n");
        for tail in [1.0, 2.0, 3.0] {
            let t =
                decamouflage_core::threshold::percentile_blackbox(&corpus.benign, tail, direction)?;
            out.push_str(&format!("- {tail}% percentile threshold: {}\n", number(t.value())));
        }
    }
    Ok(out)
}

fn render_hist(samples: &[f64], bins: usize) -> String {
    match Histogram::from_samples(samples, bins, None) {
        Ok(h) => h.render_ascii(40),
        Err(e) => format!("(histogram unavailable: {e})\n"),
    }
}

/// Shared white-box table (scaling or filtering).
fn whitebox_table(
    ctx: &ExperimentContext,
    title: &str,
    idx_mse: usize,
    idx_ssim: usize,
) -> Result<String, decamouflage_core::DetectError> {
    let mut t =
        MarkdownTable::new(vec!["Metric", "Acc.", "Prec.", "Rec.", "FAR", "FRR", "Threshold"]);
    for (idx, direction, label) in
        [(idx_mse, Direction::AboveIsAttack, "MSE"), (idx_ssim, Direction::BelowIsAttack, "SSIM")]
    {
        let out = run_whitebox(ctx.train().of(idx), ctx.eval().of(idx), direction)?;
        let mut row = metrics_row(label, &out.eval);
        row.push(number(out.threshold.value()));
        t.push_row(row);
    }
    Ok(format!(
        "## {title}\n\n(thresholds selected on `{}`, evaluated on `{}`, {} images per class)\n\n{t}",
        ctx.train_profile.name, ctx.eval_profile.name, ctx.config.count
    ))
}

/// Shared black-box percentile table (scaling or filtering).
fn blackbox_table(
    ctx: &ExperimentContext,
    title: &str,
    idx_mse: usize,
    idx_ssim: usize,
) -> Result<String, decamouflage_core::DetectError> {
    let mut t = MarkdownTable::new(vec![
        "Metric",
        "Percentile",
        "Acc.",
        "Prec.",
        "Rec.",
        "FAR",
        "FRR",
        "Mean",
        "STD",
    ]);
    for (idx, direction, label) in
        [(idx_mse, Direction::AboveIsAttack, "MSE"), (idx_ssim, Direction::BelowIsAttack, "SSIM")]
    {
        let train = ctx.train().of(idx);
        let summary = train.benign_summary()?;
        for tail in [1.0, 2.0, 3.0] {
            let out = run_blackbox(&train.benign, ctx.eval().of(idx), tail, direction)?;
            let mut row = vec![label.to_string(), format!("{tail}%")];
            row.extend(metrics_row("", &out.eval).into_iter().skip(1));
            row.push(number(summary.mean));
            row.push(number(summary.std_dev));
            t.push_row(row);
        }
    }
    Ok(format!(
        "## {title}\n\n(benign-only percentile thresholds from `{}`, evaluated on `{}`)\n\n{t}",
        ctx.train_profile.name, ctx.eval_profile.name
    ))
}

/// Figure 12 — the CSP count distributions.
fn fig12(ctx: &ExperimentContext) -> String {
    let corpus = ctx.train().of(IDX_STEGANALYSIS);
    let count_of = |scores: &[f64], v: f64| scores.iter().filter(|&&s| s == v).count();
    let mut t = MarkdownTable::new(vec!["CSP count", "benign images", "attack images"]);
    let max_csp =
        corpus.benign.iter().chain(corpus.attack.iter()).cloned().fold(0.0f64, f64::max) as usize;
    for v in 0..=max_csp.min(12) {
        t.push_row(vec![
            v.to_string(),
            count_of(&corpus.benign, v as f64).to_string(),
            count_of(&corpus.attack, v as f64).to_string(),
        ]);
    }
    let single_benign = count_of(&corpus.benign, 1.0) as f64 / corpus.benign.len() as f64;
    let multi_attack =
        corpus.attack.iter().filter(|&&s| s >= 2.0).count() as f64 / corpus.attack.len() as f64;
    format!(
        "## Figure 12 — CSP distributions (white-box, training profile)\n\n{t}\n\
         {} of benign images have exactly 1 CSP; {} of attack images have >= 2.\n",
        percent(single_benign),
        percent(multi_attack)
    )
}

/// Table 6 — steganalysis detection with the universal CSP threshold.
fn table6(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    let threshold = SteganalysisDetector::universal_threshold();
    let eval = evaluate_threshold(ctx.eval().of(IDX_STEGANALYSIS), threshold)?;
    // White-box search should land on the same CSP_T = 2.
    let corpus = ctx.train().of(IDX_STEGANALYSIS);
    let search = decamouflage_core::threshold::search_whitebox(
        &corpus.benign,
        &corpus.attack,
        Direction::AboveIsAttack,
    )?;
    let mut t = MarkdownTable::new(vec!["Metric", "Acc.", "Prec.", "Rec.", "FAR", "FRR"]);
    t.push_row(metrics_row("CSP", &eval));
    Ok(format!(
        "## Table 6 — steganalysis detection (fixed CSP_T = 2, no calibration needed)\n\n{t}\n\
         For reference, an unconstrained white-box search on `{}` would select threshold {} \
         (training accuracy {}); the paper's fixed CSP_T = 2 needs no such calibration and \
         trades a little FRR for zero FAR.\n",
        ctx.train_profile.name,
        number(search.threshold.value()),
        percent(search.train_accuracy)
    ))
}

/// Table 8 — the majority-vote ensembles, with and without the
/// peak-excess member.
fn table8(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    use decamouflage_core::MethodId;
    let train = ctx.train();
    let eval = ctx.eval();

    // White-box member thresholds (best metric per method, as in the paper:
    // scaling/MSE, filtering/SSIM, steganalysis/CSP), plus the promoted
    // peak-excess method under its registry direction.
    let scaling_t = run_whitebox(
        train.of(IDX_SCALING_MSE),
        eval.of(IDX_SCALING_MSE),
        Direction::AboveIsAttack,
    )?
    .threshold;
    let filtering_t = run_whitebox(
        train.of(IDX_FILTERING_SSIM),
        eval.of(IDX_FILTERING_SSIM),
        Direction::BelowIsAttack,
    )?
    .threshold;
    let stego_t = SteganalysisDetector::universal_threshold();
    let peak_t = run_whitebox(
        train.of(IDX_PEAK_EXCESS),
        eval.of(IDX_PEAK_EXCESS),
        MethodId::PeakExcess.direction(),
    )?
    .threshold;
    let whitebox = evaluate_ensemble(&[
        (eval.of(IDX_SCALING_MSE), scaling_t),
        (eval.of(IDX_FILTERING_SSIM), filtering_t),
        (eval.of(IDX_STEGANALYSIS), stego_t),
    ])?;
    let whitebox_peak = evaluate_ensemble(&[
        (eval.of(IDX_SCALING_MSE), scaling_t),
        (eval.of(IDX_FILTERING_SSIM), filtering_t),
        (eval.of(IDX_STEGANALYSIS), stego_t),
        (eval.of(IDX_PEAK_EXCESS), peak_t),
    ])?;

    // Black-box member thresholds (1% benign percentile + fixed CSP; the
    // peak-excess member gets the same benign percentile treatment because
    // the registry gives it no universal threshold).
    let scaling_bb = decamouflage_core::threshold::percentile_blackbox(
        &train.of(IDX_SCALING_MSE).benign,
        1.0,
        Direction::AboveIsAttack,
    )?;
    let filtering_bb = decamouflage_core::threshold::percentile_blackbox(
        &train.of(IDX_FILTERING_SSIM).benign,
        1.0,
        Direction::BelowIsAttack,
    )?;
    let peak_bb = decamouflage_core::threshold::percentile_blackbox(
        &train.of(IDX_PEAK_EXCESS).benign,
        1.0,
        MethodId::PeakExcess.direction(),
    )?;
    let blackbox = evaluate_ensemble(&[
        (eval.of(IDX_SCALING_MSE), scaling_bb),
        (eval.of(IDX_FILTERING_SSIM), filtering_bb),
        (eval.of(IDX_STEGANALYSIS), stego_t),
    ])?;
    let blackbox_peak = evaluate_ensemble(&[
        (eval.of(IDX_SCALING_MSE), scaling_bb),
        (eval.of(IDX_FILTERING_SSIM), filtering_bb),
        (eval.of(IDX_STEGANALYSIS), stego_t),
        (eval.of(IDX_PEAK_EXCESS), peak_bb),
    ])?;

    let mut t = MarkdownTable::new(vec!["Setting", "Acc.", "Prec.", "Rec.", "FAR", "FRR"]);
    t.push_row(metrics_row("White-box ensemble", &whitebox));
    t.push_row(metrics_row("White-box ensemble + peak-excess", &whitebox_peak));
    t.push_row(metrics_row("Black-box ensemble", &blackbox));
    t.push_row(metrics_row("Black-box ensemble + peak-excess", &blackbox_peak));
    Ok(format!(
        "## Table 8 — Decamouflage as a majority-vote ensemble\n\n\
         (paper members: scaling/MSE, filtering/SSIM, steganalysis/CSP; the `+ peak-excess` \
         rows add the promoted steganalysis/peak-excess method as a fourth voter, which \
         raises the majority bar from 2-of-3 to 3-of-4; evaluated on `{}`)\n\n{t}",
        ctx.eval_profile.name
    ))
}

/// Appendix figures 15/16 — PSNR distributions overlap.
fn psnr_figure(ctx: &ExperimentContext, title: &str, idx: usize) -> String {
    let corpus = ctx.train().of(idx);
    let overlap = overlap_fraction(&corpus.benign, &corpus.attack);
    let mut out = format!("## {title}\n\n### benign PSNR\n```\n");
    out.push_str(&render_hist(&finite_only(&corpus.benign), 20));
    out.push_str("```\n\n### attack PSNR\n```\n");
    out.push_str(&render_hist(&finite_only(&corpus.attack), 20));
    out.push_str(&format!(
        "```\n\nFraction of benign PSNR values inside the attack range: {} — the \
         distributions overlap instead of separating (compare the `roc` experiment's AUC \
         column), which is why the paper rejects PSNR as a detection metric.\n",
        percent(overlap)
    ));
    out
}

fn finite_only(samples: &[f64]) -> Vec<f64> {
    samples.iter().copied().filter(|s| s.is_finite()).collect()
}

/// Fraction of benign samples lying inside the attack range (a quick
/// separability indicator; ~0 for MSE/SSIM, large for PSNR/colorhist).
fn overlap_fraction(benign: &[f64], attack: &[f64]) -> f64 {
    let attack = finite_only(attack);
    let benign = finite_only(benign);
    if benign.is_empty() || attack.is_empty() {
        return 0.0;
    }
    let lo = attack.iter().cloned().fold(f64::MAX, f64::min);
    let hi = attack.iter().cloned().fold(f64::MIN, f64::max);
    benign.iter().filter(|&&b| b >= lo && b <= hi).count() as f64 / benign.len() as f64
}

/// §3.1 negative result: colour-histogram similarity does not separate.
fn ablate_colorhist(ctx: &ExperimentContext) -> String {
    let corpus = ctx.train().of(IDX_COLORHIST);
    let overlap = overlap_fraction(&corpus.benign, &corpus.attack);
    let b = SampleSummary::from_samples(&corpus.benign);
    let a = SampleSummary::from_samples(&corpus.attack);
    let mut t = MarkdownTable::new(vec!["Class", "mean", "std", "min", "max"]);
    if let (Ok(b), Ok(a)) = (b, a) {
        t.push_row(vec![
            "benign".into(),
            number(b.mean),
            number(b.std_dev),
            number(b.min),
            number(b.max),
        ]);
        t.push_row(vec![
            "attack".into(),
            number(a.mean),
            number(a.std_dev),
            number(a.min),
            number(a.max),
        ]);
    }
    format!(
        "## Ablation — colour-histogram similarity (Xiao et al.'s proposed metric, §3.1)\n\n\
         Histogram-intersection similarity between the input and its scaling round trip:\n\n{t}\n\
         Benign-inside-attack-range overlap: {} — consistent with the paper's finding that \
         the colour histogram is not a valid detection metric.\n",
        percent(overlap)
    )
}

/// Related-work ablation: attack success per scaling algorithm (area
/// scaling is the robust baseline).
fn ablate_robust_scaler(ctx: &ExperimentContext) -> String {
    use decamouflage_attack::{verify_attack, VerifyConfig};
    let count = ctx.config.count.clamp(1, 30);
    let mut t = MarkdownTable::new(vec![
        "Scaler",
        "attacks succeeded",
        "scales to target",
        "visually stealthy",
        "mean perturbation MSE",
    ]);
    for algo in [ScaleAlgorithm::Nearest, ScaleAlgorithm::Bilinear, ScaleAlgorithm::Area] {
        let g = SampleGenerator::new(ctx.train_profile.clone(), algo);
        let mut success = 0usize;
        let mut hits_target = 0usize;
        let mut stealthy = 0usize;
        let mut mse_sum = 0.0;
        for i in 0..count {
            let crafted = g.attack(i as u64).expect("crafting runs to completion");
            let v = verify_attack(
                &g.benign(i as u64),
                &crafted.image,
                &g.target(i as u64),
                &g.scaler(i as u64),
                &VerifyConfig::default(),
            )
            .expect("shapes are consistent");
            success += usize::from(v.is_successful());
            hits_target += usize::from(v.scales_to_target);
            stealthy += usize::from(v.visually_stealthy);
            mse_sum += v.perturbation_mse;
        }
        t.push_row(vec![
            algo.name().to_string(),
            format!("{success}/{count}"),
            format!("{hits_target}/{count}"),
            format!("{stealthy}/{count}"),
            number(mse_sum / count as f64),
        ]);
    }

    // Second robust-scaling variant: serve bilinear attacks to a deployment
    // that anti-aliases before resizing. The attack was crafted for the
    // plain kernel, so the payload never reaches the model.
    {
        use decamouflage_imaging::scale::resize_antialiased;
        let g = SampleGenerator::new(ctx.train_profile.clone(), ScaleAlgorithm::Bilinear);
        let mut survives = 0usize;
        let mut mse_sum = 0.0;
        for i in 0..count as u64 {
            let crafted = g.attack(i).expect("crafting runs to completion");
            let target = g.target(i);
            let down = resize_antialiased(
                &crafted.image,
                target.width(),
                target.height(),
                ScaleAlgorithm::Bilinear,
            )
            .expect("profile sizes are valid");
            let linf = down
                .planes()
                .iter()
                .flatten()
                .zip(target.planes().iter().flatten())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            survives += usize::from(linf <= VerifyConfig::default().target_tolerance_linf);
            mse_sum += decamouflage_metrics::mse(&down, &target).expect("same shape");
        }
        t.push_row(vec![
            "bilinear + anti-alias prefilter (defense)".into(),
            format!("{survives}/{count}"),
            format!("{survives}/{count}"),
            "n/a (attack unchanged)".into(),
            number(mse_sum / count as f64),
        ]);
    }
    format!(
        "## Ablation — attack success per scaling algorithm (robust-scaler defense)\n\n\
         An attack *succeeds* when it both reaches the target after downscaling and stays \
         visually stealthy. Area scaling forces the perturbation to be visible, and an \
         anti-aliasing prefilter (last row; perturbation column shows the payload's distance \
         from the target after the defense) destroys an existing attack's payload outright — \
         the two robust-scaling defenses discussed in the paper's related work.\n\n{t}"
    )
}

/// Discussion-section ablation: adaptive attacks vs. the ensemble.
fn ablate_adaptive(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    use crate::corpus::DetectorSet;
    use decamouflage_attack::adaptive::jitter_camouflage;
    use decamouflage_core::Detector;

    let count = ctx.config.count.clamp(1, 25);
    let train = ctx.train();
    let scaling_t = decamouflage_core::threshold::search_whitebox(
        &train.of(IDX_SCALING_MSE).benign,
        &train.of(IDX_SCALING_MSE).attack,
        Direction::AboveIsAttack,
    )?
    .threshold;
    let filtering_t = decamouflage_core::threshold::search_whitebox(
        &train.of(IDX_FILTERING_SSIM).benign,
        &train.of(IDX_FILTERING_SSIM).attack,
        Direction::BelowIsAttack,
    )?
    .threshold;
    let stego_t = SteganalysisDetector::universal_threshold();

    let detectors = DetectorSet::new(&ctx.train_profile);
    let g = SampleGenerator::new(ctx.train_profile.clone(), ScaleAlgorithm::Bilinear);

    let mut t = MarkdownTable::new(vec![
        "Jitter strength",
        "scaling/mse detects",
        "filtering/ssim detects",
        "steganalysis detects",
        "ensemble detects",
    ]);
    for strength in [0.0, 6.0, 12.0, 24.0] {
        let mut hits = [0usize; 4];
        for i in 0..count {
            let crafted = g.attack(i as u64).expect("crafting succeeds");
            let image = jitter_camouflage(&crafted.image, &g.scaler(i as u64), strength, i as u64)
                .expect("jitter parameters are valid");
            let votes = [
                scaling_t.is_attack(
                    detectors.scaling(decamouflage_core::MetricKind::Mse).score(&image)?,
                ),
                filtering_t.is_attack(
                    detectors.filtering(decamouflage_core::MetricKind::Ssim).score(&image)?,
                ),
                stego_t.is_attack(detectors.steganalysis().score(&image)?),
            ];
            for (k, &v) in votes.iter().enumerate() {
                hits[k] += usize::from(v);
            }
            let majority = votes.iter().filter(|&&v| v).count() >= 2;
            hits[3] += usize::from(majority);
        }
        t.push_row(vec![
            format!("{strength}"),
            format!("{}/{count}", hits[0]),
            format!("{}/{count}", hits[1]),
            format!("{}/{count}", hits[2]),
            format!("{}/{count}", hits[3]),
        ]);
    }
    Ok(format!(
        "## Ablation — adaptive jitter camouflage vs. the ensemble (§6 discussion)\n\n\
         The attacker adds noise to the pixels the scaler ignores, trying to mask the \
         periodic CSP peaks. The noise leaves `scale(A)` untouched but *increases* the \
         round-trip and filter residuals, so the spatial detectors get stronger as the \
         spectral one is attacked — the defense-in-depth argument for the ensemble.\n\n{t}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::HarnessConfig;
    use decamouflage_datasets::DatasetProfile;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::with_profiles(
            HarnessConfig::smoke(6),
            DatasetProfile::tiny(),
            DatasetProfile::tiny(),
        )
    }

    #[test]
    fn table1_lists_all_models() {
        let s = table1();
        assert!(s.contains("LeNet-5"));
        assert!(s.contains("224 x 224"));
        assert!(s.contains("DAVE-2"));
    }

    #[test]
    fn unknown_experiment_is_reported() {
        let ctx = tiny_ctx();
        let err = run_experiment("table99", &ctx).unwrap_err();
        assert!(err.contains("unknown experiment"));
        assert!(err.contains("table1"));
    }

    #[test]
    fn whitebox_tables_render_on_tiny_profile() {
        let ctx = tiny_ctx();
        for id in ["table2", "table4"] {
            let s = run_experiment(id, &ctx).unwrap();
            assert!(s.contains("MSE"), "{id}: {s}");
            assert!(s.contains("SSIM"));
            assert!(s.contains('%'));
        }
    }

    #[test]
    fn blackbox_tables_render_on_tiny_profile() {
        let ctx = tiny_ctx();
        for id in ["table3", "table5"] {
            let s = run_experiment(id, &ctx).unwrap();
            assert!(s.contains("1%"));
            assert!(s.contains("3%"));
        }
    }

    #[test]
    fn figures_render_on_tiny_profile() {
        let ctx = tiny_ctx();
        for id in ["fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig15", "fig16"] {
            let s = run_experiment(id, &ctx).unwrap();
            assert!(!s.is_empty(), "{id} rendered empty");
        }
    }

    #[test]
    fn ensemble_and_stego_tables_render() {
        let ctx = tiny_ctx();
        let s6 = run_experiment("table6", &ctx).unwrap();
        assert!(s6.contains("CSP"));
        let s8 = run_experiment("table8", &ctx).unwrap();
        assert!(s8.contains("White-box ensemble"));
        assert!(s8.contains("Black-box ensemble"));
        assert!(s8.contains("White-box ensemble + peak-excess"));
        assert!(s8.contains("Black-box ensemble + peak-excess"));
    }

    #[test]
    fn extension_ablations_render_on_tiny_profile() {
        let ctx = tiny_ctx();
        let prevention = run_experiment("ablate-prevention", &ctx).unwrap();
        assert!(prevention.contains("quality cost"));
        let sensitivity = run_experiment("ablate-csp-sensitivity", &ctx).unwrap();
        assert!(sensitivity.contains("0.66"));
        let roc = run_experiment("roc", &ctx).unwrap();
        assert!(roc.contains("AUC"));
        assert!(roc.contains("scaling/mse"));
        assert!(roc.contains("steganalysis/peak-excess"));
        let missed = run_experiment("table9-missed", &ctx).unwrap();
        assert!(missed.contains("alpha"));
    }

    #[test]
    fn overlap_fraction_behaviour() {
        assert_eq!(overlap_fraction(&[1.0, 2.0], &[10.0, 20.0]), 0.0);
        assert_eq!(overlap_fraction(&[15.0, 2.0], &[10.0, 20.0]), 0.5);
        assert_eq!(overlap_fraction(&[], &[1.0]), 0.0);
        // Infinite PSNR samples (identical images) are ignored.
        assert_eq!(overlap_fraction(&[f64::INFINITY, 15.0], &[10.0, 20.0]), 1.0);
    }
}

/// Prevention-vs-detection ablation: Quiring-style image reconstruction
/// neutralises the attack but rewrites benign pixels too (the quality cost
/// that motivates detection-only defenses).
fn ablate_prevention(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    use decamouflage_core::prevention::{prevention_quality_cost, reconstruct_sampled_pixels};
    let count = ctx.config.count.clamp(1, 20);
    let g = SampleGenerator::new(ctx.train_profile.clone(), ScaleAlgorithm::Bilinear);

    let mut payload_before = 0.0; // MSE(scale(A), T): small = attack works
    let mut payload_after = 0.0; // MSE(scale(sanitised A), T): large = defused
    let mut benign_cost = 0.0; // MSE(benign, sanitised benign): quality loss
    for i in 0..count as u64 {
        let scaler = g.scaler(i);
        let target = g.target(i);
        let attack = g.attack_image(i).expect("crafting succeeds");
        let mse_to_target = |img: &decamouflage_imaging::Image| {
            let down = scaler.apply(img).expect("sizes match");
            decamouflage_metrics::mse(&down, &target).expect("same shape")
        };
        payload_before += mse_to_target(&attack);
        let sanitised = reconstruct_sampled_pixels(&attack, &scaler, 2)?;
        payload_after += mse_to_target(&sanitised);
        benign_cost += prevention_quality_cost(&g.benign(i), &scaler, 2)?;
    }
    let n = count as f64;
    let mut t = MarkdownTable::new(vec!["Quantity", "Mean over corpus"]);
    t.push_row(vec![
        "MSE(scale(attack), target) — before prevention".into(),
        number(payload_before / n),
    ]);
    t.push_row(vec![
        "MSE(scale(sanitised attack), target) — after prevention".into(),
        number(payload_after / n),
    ]);
    t.push_row(vec![
        "MSE(benign, sanitised benign) — quality cost on clean images".into(),
        number(benign_cost / n),
    ]);
    Ok(format!(
        "## Ablation — prevention (image reconstruction) vs. detection\n\n\
         Reconstruction destroys the attack payload (second row must be much larger than the \
         first) but also rewrites every image it touches, including benign ones (third row > 0) \
         — the degradation the paper's detection-only design avoids.\n\n{t}"
    ))
}

/// CSP parameter-sensitivity sweep: detection quality across binarisation
/// thresholds, with the fixed `CSP_T = 2` decision rule.
fn ablate_csp_sensitivity(ctx: &ExperimentContext) -> String {
    use decamouflage_core::Detector;
    use decamouflage_core::SteganalysisDetector;
    let count = ctx.config.count.clamp(1, 30);
    let g = crate::corpus::MixedAttackGenerator::new(ctx.train_profile.clone());
    let target = ctx.train_profile.target_size;

    let mut t = MarkdownTable::new(vec![
        "binarize threshold",
        "benign flagged (FRR)",
        "attacks caught (recall)",
    ]);
    for thr in [0.58, 0.62, 0.66, 0.70, 0.74] {
        let mut det = SteganalysisDetector::for_target(target);
        let mut cfg = det.config().clone();
        cfg.binarize_threshold = thr;
        det = SteganalysisDetector::with_config(cfg);
        let rule = SteganalysisDetector::universal_threshold();
        let mut frr = 0usize;
        let mut caught = 0usize;
        for i in 0..count as u64 {
            frr += usize::from(rule.is_attack(det.score(&g.benign(i)).expect("csp works")));
            caught += usize::from(rule.is_attack(det.score(&g.attack(i)).expect("csp works")));
        }
        t.push_row(vec![format!("{thr}"), format!("{frr}/{count}"), format!("{caught}/{count}")]);
    }
    format!(
        "## Ablation — CSP binarisation-threshold sensitivity\n\n\
         The fixed decision rule CSP_T = 2 tolerates a wide band of binarisation thresholds: \
         too low fragments the benign central blob (FRR rises), too high extinguishes weak \
         attack peaks (recall falls). The shipped default is 0.66.\n\n{t}"
    )
}

/// Threshold-free comparison of all scorers: ROC AUC on the training
/// profile, including the negative-result metrics.
fn roc_table(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    use crate::corpus::{IDX_FILTERING_PSNR, IDX_SCALING_PSNR, SCORER_NAMES};
    use decamouflage_core::roc::roc_curve;
    use decamouflage_core::MethodId;
    let train = ctx.train();
    let mut t = MarkdownTable::new(vec!["Scorer", "AUC (train profile)", "verdict"]);
    // Every registry method sweeps under its registry direction; the three
    // negative-result scorers are appended with the orientation under which
    // they would have to work. A newly registered method is swept with no
    // change here.
    let mut entries: Vec<(usize, Direction)> =
        MethodId::ALL.iter().map(|&id| (id as usize, id.direction())).collect();
    entries.extend([
        (IDX_SCALING_PSNR, Direction::BelowIsAttack),
        (IDX_FILTERING_PSNR, Direction::BelowIsAttack),
        (IDX_COLORHIST, Direction::BelowIsAttack),
    ]);
    for (idx, direction) in entries {
        let corpus = train.of(idx);
        // PSNR of identical images is +inf; clamp for the sweep.
        let clamp = |v: &f64| if v.is_finite() { *v } else { 1e6 };
        let benign: Vec<f64> = corpus.benign.iter().map(clamp).collect();
        let attack: Vec<f64> = corpus.attack.iter().map(clamp).collect();
        let auc = roc_curve(&benign, &attack, direction)?.auc();
        let verdict = match idx {
            IDX_SCALING_PSNR | IDX_FILTERING_PSNR => {
                "inherits MSE's ranking (monotone transform) — see note"
            }
            _ if auc >= 0.99 => "separates cleanly",
            _ if auc >= 0.9 => "usable",
            _ => "not a valid detection metric",
        };
        t.push_row(vec![SCORER_NAMES[idx].to_string(), format!("{auc:.4}"), verdict.into()]);
    }
    Ok(format!(
        "## ROC analysis — threshold-free comparison of every scorer\n\n\
         MSE/SSIM/CSP achieve near-perfect AUC; the colour histogram does not. Note on PSNR: \
         because `PSNR = 10 log10(255² / MSE)` is a strictly monotone transform of MSE, its ROC \
         is *identical* to MSE's by construction. The paper's Appendix-A rejection of PSNR is \
         about the legibility of a fixed threshold — the log compression squeezes the benign \
         and attack histograms together (see fig15/fig16) and makes the boundary unstable — \
         not about ranking power.\n\n{t}"
    ))
}

/// Figure 4 — which rank filter reveals the embedded target best.
///
/// The paper's wolf-in-sheep example hides a payload *darker* than its
/// host, which the minimum filter reveals; a brighter payload is the
/// mirror case for the maximum filter. Both regimes are measured.
pub fn fig4(ctx: &ExperimentContext) -> String {
    use decamouflage_imaging::filter::{rank_filter, RankKind};
    use decamouflage_imaging::scale::Scaler;

    let count = ctx.config.count.clamp(2, 12);
    let g = SampleGenerator::new(ctx.train_profile.clone(), ScaleAlgorithm::Bilinear);
    let kinds = [RankKind::Minimum, RankKind::Median, RankKind::Maximum];
    let mut t = MarkdownTable::new(vec![
        "Payload regime",
        "Filter",
        "MSE(filtered attack, upscaled target) — lower = revealed",
    ]);
    for (regime, shift) in [("dark payload (paper's example)", -70.0), ("bright payload", 70.0)] {
        let mut sums = [0.0f64; 3];
        for i in 0..count as u64 {
            let original = g.benign(i);
            let scaler = g.scaler(i);
            // Compress the target's contrast and shift it relative to the
            // host image's mean to construct the regime.
            let target =
                g.target(i).map(|v| (v * 0.4 + original.mean_sample() + shift).clamp(0.0, 255.0));
            let attack = decamouflage_attack::craft_attack(
                &original,
                &target,
                &scaler,
                &decamouflage_attack::AttackConfig::default(),
            )
            .expect("crafting succeeds")
            .image;
            let up = Scaler::new(scaler.dst_size(), scaler.src_size(), ScaleAlgorithm::Nearest)
                .expect("profile sizes valid")
                .apply(&target)
                .expect("sizes match");
            for (k, kind) in kinds.iter().enumerate() {
                let filtered = rank_filter(&attack, 2, *kind).expect("window 2 is valid");
                sums[k] += decamouflage_metrics::mse(&filtered, &up).expect("same shape");
            }
        }
        for (k, kind) in kinds.iter().enumerate() {
            t.push_row(vec![
                regime.to_string(),
                kind.name().to_string(),
                number(sums[k] / count as f64),
            ]);
        }
    }
    format!(
        "## Figure 4 — rank-filter comparison on attack images\n\n\
         A payload darker than its host (the paper's wolf-in-sheep) is revealed best by the \
         minimum filter; a brighter payload is the symmetric case for the maximum filter. The \
         filtering-detection method is insensitive to the direction because it compares the \
         filtered image with the input, not with the payload.\n\n{t}"
    )
}

/// Table 9 / Appendix B — do the attacks that evade Decamouflage still
/// work?
///
/// The paper inspects the few attack images its system misses and finds
/// that commercial classifiers no longer recognise the hidden target: an
/// evasive attack image has lost its purpose. We reproduce the mechanism
/// with partial-strength attacks: sweeping the blend factor `alpha` from
/// full strength towards benign, detection and attack efficacy collapse
/// *together*.
pub fn table9_missed(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    use crate::corpus::DetectorSet;
    use decamouflage_attack::adaptive::blend_target;
    use decamouflage_attack::{craft_attack, verify_attack, AttackConfig, VerifyConfig};
    use decamouflage_core::Detector;

    let count = ctx.config.count.clamp(2, 20);
    let train = ctx.train();
    let scaling_t = decamouflage_core::threshold::search_whitebox(
        &train.of(IDX_SCALING_MSE).benign,
        &train.of(IDX_SCALING_MSE).attack,
        Direction::AboveIsAttack,
    )?
    .threshold;
    let filtering_t = decamouflage_core::threshold::search_whitebox(
        &train.of(IDX_FILTERING_SSIM).benign,
        &train.of(IDX_FILTERING_SSIM).attack,
        Direction::BelowIsAttack,
    )?
    .threshold;
    let stego_t = SteganalysisDetector::universal_threshold();
    let detectors = DetectorSet::new(&ctx.train_profile);
    let g = SampleGenerator::new(ctx.train_profile.clone(), ScaleAlgorithm::Bilinear);

    let mut t = MarkdownTable::new(vec![
        "attack strength (alpha)",
        "ensemble detects",
        "still delivers target",
        "evades AND still works",
    ]);
    for alpha in [1.0, 0.6, 0.4, 0.2] {
        let mut detected = 0usize;
        let mut effective = 0usize;
        let mut dangerous = 0usize;
        for i in 0..count as u64 {
            let original = g.benign(i);
            let full_target = g.target(i);
            let scaler = g.scaler(i);
            let weak = blend_target(&original, &full_target, &scaler, alpha).map_err(|e| {
                decamouflage_core::DetectError::InvalidConfig { message: e.to_string() }
            })?;
            let crafted = craft_attack(&original, &weak, &scaler, &AttackConfig::default())
                .map_err(|e| decamouflage_core::DetectError::InvalidConfig {
                    message: e.to_string(),
                })?;
            let votes = [
                scaling_t.is_attack(
                    detectors.scaling(decamouflage_core::MetricKind::Mse).score(&crafted.image)?,
                ),
                filtering_t.is_attack(
                    detectors
                        .filtering(decamouflage_core::MetricKind::Ssim)
                        .score(&crafted.image)?,
                ),
                stego_t.is_attack(detectors.steganalysis().score(&crafted.image)?),
            ];
            let flagged = votes.iter().filter(|&&v| v).count() >= 2;
            // Efficacy is judged against the attacker's *real* goal: the
            // full-strength target.
            let verdict = verify_attack(
                &original,
                &crafted.image,
                &full_target,
                &scaler,
                &VerifyConfig::default(),
            )
            .map_err(|e| decamouflage_core::DetectError::InvalidConfig {
                message: e.to_string(),
            })?;
            detected += usize::from(flagged);
            effective += usize::from(verdict.scales_to_target);
            dangerous += usize::from(!flagged && verdict.scales_to_target);
        }
        t.push_row(vec![
            format!("{alpha}"),
            format!("{detected}/{count}"),
            format!("{effective}/{count}"),
            format!("{dangerous}/{count}"),
        ]);
    }
    Ok(format!(
        "## Table 9 / Appendix B — evasive attack images lose their purpose\n\n\
         Weakening the attack to slip past the ensemble also stops it from delivering its \
         payload: the last column (undetected AND still effective) should stay at zero across \
         the sweep — the paper's conclusion about the images that got away.\n\n{t}"
    ))
}

/// Downscale-factor sweep: how attack stealth and detectability change
/// with the ratio between source and CNN input size.
///
/// The paper notes the attack needs enough "spare" pixels to hide its
/// payload (factor >= ~2-3 for interpolating scalers). This sweep makes
/// that quantitative: at factor 2 bilinear scaling reads *every* source
/// pixel, so the perturbation is enormous and trivially visible; from
/// factor 3 upward the attack is stealthy — and every Decamouflage method
/// still detects it.
pub fn ablate_factor(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    use crate::corpus::DetectorSet;
    use decamouflage_attack::{verify_attack, VerifyConfig};
    use decamouflage_core::Detector;
    use decamouflage_imaging::Size;

    let count = ctx.config.count.clamp(2, 8);
    let target = ctx.train_profile.target_size.width; // square target
    let mut t = MarkdownTable::new(vec![
        "factor",
        "source size",
        "stealthy attacks",
        "perturbation MSE",
        "scaling-MSE score ratio (attack/benign)",
        "CSP >= 2",
    ]);
    for factor in [2usize, 3, 4, 5, 6] {
        let mut profile = ctx.train_profile.clone();
        profile.source_sizes = vec![Size::square(target * factor)];
        let detectors = DetectorSet::new(&profile);
        let g = SampleGenerator::new(profile, ScaleAlgorithm::Bilinear);
        let mut stealthy = 0usize;
        let mut perturbation = 0.0f64;
        let mut ratio_sum = 0.0f64;
        let mut csp_hits = 0usize;
        for i in 0..count as u64 {
            let original = g.benign(i);
            let crafted = g.attack(i).expect("crafting succeeds");
            let v = verify_attack(
                &original,
                &crafted.image,
                &g.target(i),
                &g.scaler(i),
                &VerifyConfig::default(),
            )
            .expect("shapes are consistent");
            stealthy += usize::from(v.visually_stealthy);
            perturbation += v.perturbation_mse;
            let sd = detectors.scaling(decamouflage_core::MetricKind::Mse);
            let benign_score = sd.score(&original)?.max(1e-9);
            ratio_sum += sd.score(&crafted.image)? / benign_score;
            let csp = detectors.steganalysis().score(&crafted.image)?;
            csp_hits += usize::from(csp >= 2.0);
        }
        let n = count as f64;
        t.push_row(vec![
            format!("{factor}x"),
            format!("{0}x{0}", target * factor),
            format!("{stealthy}/{count}"),
            number(perturbation / n),
            format!("{:.1}", ratio_sum / n),
            format!("{csp_hits}/{count}"),
        ]);
    }
    Ok(format!(
        "## Ablation — attack stealth and detectability vs. downscale factor\n\n\
         At factor 2 the bilinear kernel reads every source pixel, so the \"attack\" \
         degenerates into overwriting the whole image with the target (perturbation MSE an \
         order of magnitude above the stealthy regime, no periodic structure, round-trip \
         ratio near 1): there is no camouflage left for Decamouflage to detect, and none \
         needed — a human reviewer sees the payload directly. The threat model the paper \
         defends against starts at factor ~3, where the attack becomes stealthy and every \
         detection signal is strong.\n\n{t}"
    ))
}

/// §2.2 scenario at corpus scale: backdoor-poison triage.
///
/// Poison samples hide trigger-stamped victim images inside benign-looking
/// originals. Decamouflage triages the submission queue offline; a single
/// missed poison plants the backdoor, so the FAR on poison samples is the
/// security-critical number.
pub fn ablate_backdoor(ctx: &ExperimentContext) -> Result<String, decamouflage_core::DetectError> {
    use crate::corpus::DetectorSet;
    use decamouflage_core::Detector;
    use decamouflage_datasets::backdoor::{craft_poison_sample, Trigger};

    let count = ctx.config.count.clamp(2, 25);
    let train = ctx.train();
    let scaling_t = decamouflage_core::threshold::search_whitebox(
        &train.of(IDX_SCALING_MSE).benign,
        &train.of(IDX_SCALING_MSE).attack,
        Direction::AboveIsAttack,
    )?
    .threshold;
    let filtering_t = decamouflage_core::threshold::search_whitebox(
        &train.of(IDX_FILTERING_SSIM).benign,
        &train.of(IDX_FILTERING_SSIM).attack,
        Direction::BelowIsAttack,
    )?
    .threshold;
    let stego_t = SteganalysisDetector::universal_threshold();
    let detectors = DetectorSet::new(&ctx.train_profile);
    let g = SampleGenerator::new(ctx.train_profile.clone(), ScaleAlgorithm::Bilinear);
    let trigger = Trigger::default();

    let mut quarantined = 0usize;
    let mut payload_confirmed = 0usize;
    for i in 0..count as u64 {
        let poison = craft_poison_sample(&g, &trigger, i)
            .map_err(|e| decamouflage_core::DetectError::InvalidConfig { message: e.to_string() })?
            .image;
        // Confirm the poison actually carries the trigger for the model.
        let model_view = g.scaler(i).apply(&poison)?;
        payload_confirmed += usize::from(trigger.is_present(&model_view));
        let votes = [
            scaling_t
                .is_attack(detectors.scaling(decamouflage_core::MetricKind::Mse).score(&poison)?),
            filtering_t.is_attack(
                detectors.filtering(decamouflage_core::MetricKind::Ssim).score(&poison)?,
            ),
            stego_t.is_attack(detectors.steganalysis().score(&poison)?),
        ];
        quarantined += usize::from(votes.iter().filter(|&&v| v).count() >= 2);
    }
    let mut t = MarkdownTable::new(vec!["Quantity", "Count"]);
    t.push_row(vec![
        "poison samples with a working trigger payload".into(),
        format!("{payload_confirmed}/{count}"),
    ]);
    t.push_row(vec![
        "poison samples quarantined by the ensemble".into(),
        format!("{quarantined}/{count}"),
    ]);
    Ok(format!(
        "## Ablation — backdoor-poison triage (§2.2 scenario at corpus scale)\n\n\
         Trigger-stamped victim images are camouflaged inside benign-looking originals and run \
         through a white-box-calibrated ensemble. Every sample with a working payload should be \
         quarantined: a single miss plants the backdoor.\n\n{t}"
    ))
}
