//! Run-time overhead measurement (the paper's Table 7).
//!
//! The Criterion benches in `benches/` give publication-grade numbers; this
//! module provides an in-process variant so `repro table7` produces the
//! table in one run without a separate `cargo bench` invocation.

use crate::corpus::{DetectorSet, MixedAttackGenerator};
use crate::ExperimentContext;
use decamouflage_core::report::{number, MarkdownTable};
use decamouflage_core::MethodId;
use decamouflage_imaging::Image;
use decamouflage_telemetry::Histogram;
use std::time::Instant;

/// Measures mean and standard deviation of per-image wall time, in
/// milliseconds, for one scoring closure over a set of images.
///
/// The samples go through a telemetry [`Histogram`] (the same
/// log-bucketed latency histogram the live pipeline records into), whose
/// exact sum / sum-of-squares moments reproduce the mean and population
/// standard deviation the old per-sample vector computed.
pub fn time_per_image(images: &[Image], mut score: impl FnMut(&Image)) -> (f64, f64) {
    let histogram = Histogram::latency_seconds();
    for img in images {
        let start = Instant::now();
        score(img);
        histogram.record(start.elapsed().as_secs_f64());
    }
    let snapshot = histogram.snapshot();
    (snapshot.mean() * 1000.0, snapshot.stddev() * 1000.0)
}

fn title_case(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Derives the paper's Method / Metric table labels from a registry name:
/// `scaling/mse` → `("Scaling", "MSE")`, `steganalysis/peak-excess` →
/// `("Steganalysis", "Peak excess")`. A newly registered method gets a
/// readable label with no change here.
fn method_metric_labels(id: MethodId) -> (String, String) {
    let name = id.name();
    let (family, metric) = name.split_once('/').unwrap_or((name, name));
    let metric = match metric {
        "mse" | "ssim" | "csp" => metric.to_uppercase(),
        other => title_case(&other.replace('-', " ")),
    };
    (title_case(family), metric)
}

/// Table 7 — run-time overhead of each detection method. The rows come
/// straight from the method registry ([`MethodId::ALL`]) plus one
/// all-methods engine row.
pub fn table7(ctx: &ExperimentContext) -> String {
    let repeats = ctx.config.count.clamp(3, 30);
    let generator = MixedAttackGenerator::new(ctx.train_profile.clone());
    let detectors = DetectorSet::new(&ctx.train_profile);
    let images: Vec<Image> = (0..repeats).map(|i| generator.benign(i as u64)).collect();

    let mut t = MarkdownTable::new(vec![
        "Method",
        "Metric",
        "Run-time overhead (ms)",
        "Standard deviation (ms)",
    ]);
    let mut push = |method: &str, metric: &str, stats: (f64, f64)| {
        t.push_row(vec![method.to_string(), metric.to_string(), number(stats.0), number(stats.1)]);
    };

    for &id in MethodId::ALL {
        let (method, metric) = method_metric_labels(id);
        let detector = detectors.engine().build_detector(id);
        push(
            &method,
            &metric,
            time_per_image(&images, |img| {
                let _ = detector.score(img);
            }),
        );
    }
    // Beyond the paper: every registry score from one shared-intermediate
    // engine pass, the cost a deployment running the full ensemble pays.
    push(
        "Engine (all methods)",
        "All registry methods",
        time_per_image(&images, |img| {
            let _ = detectors.engine().score(img);
        }),
    );
    // The same pass behind the quarantine layer (input validation plus the
    // catch_unwind isolation boundary) — what screening untrusted uploads
    // with fault isolation costs over the raw engine.
    push(
        "Engine (resilient)",
        "All registry methods",
        time_per_image(&images, |img| {
            let _ = detectors.engine().score_resilient(img);
        }),
    );

    format!(
        "## Table 7 — run-time overheads of the detection methods\n\n\
         (per-image wall time over {repeats} `{}` images on this machine; \
         see `cargo bench -p decamouflage-bench` for Criterion-grade numbers)\n\n{t}",
        ctx.train_profile.name
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::HarnessConfig;
    use decamouflage_datasets::DatasetProfile;

    #[test]
    fn time_per_image_returns_positive_mean() {
        let images = vec![Image::from_fn_gray(32, 32, |x, y| (x * y) as f64)];
        let (mean, std) = time_per_image(&images, |img| {
            let _ = img.mean_sample();
        });
        assert!(mean >= 0.0);
        assert!(std >= 0.0);
    }

    #[test]
    fn table7_renders_all_methods() {
        let ctx = ExperimentContext::with_profiles(
            HarnessConfig::smoke(3),
            DatasetProfile::tiny(),
            DatasetProfile::tiny(),
        );
        let s = table7(&ctx);
        assert!(s.contains("Scaling"));
        assert!(s.contains("Filtering"));
        assert!(s.contains("Steganalysis"));
        assert!(s.contains("SSIM"));
        assert!(s.contains("Peak excess"));
        assert!(s.contains("Engine (all methods)"));
        assert!(s.contains("Engine (resilient)"));
    }

    #[test]
    fn labels_derive_from_registry_names() {
        assert_eq!(
            method_metric_labels(MethodId::ScalingMse),
            ("Scaling".to_string(), "MSE".to_string())
        );
        assert_eq!(
            method_metric_labels(MethodId::PeakExcess),
            ("Steganalysis".to_string(), "Peak excess".to_string())
        );
    }
}
