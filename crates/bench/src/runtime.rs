//! Run-time overhead measurement (the paper's Table 7).
//!
//! The Criterion benches in `benches/` give publication-grade numbers; this
//! module provides an in-process variant so `repro table7` produces the
//! table in one run without a separate `cargo bench` invocation.

use crate::corpus::{DetectorSet, MixedAttackGenerator};
use crate::ExperimentContext;
use decamouflage_core::report::{number, MarkdownTable};
use decamouflage_core::{Detector, MetricKind};
use decamouflage_imaging::Image;
use std::time::Instant;

/// Measures mean and standard deviation of per-image wall time, in
/// milliseconds, for one scoring closure over a set of images.
pub fn time_per_image(images: &[Image], mut score: impl FnMut(&Image)) -> (f64, f64) {
    let mut samples = Vec::with_capacity(images.len());
    for img in images {
        let start = Instant::now();
        score(img);
        samples.push(start.elapsed().as_secs_f64() * 1000.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

/// Table 7 — run-time overhead of each detection method.
pub fn table7(ctx: &ExperimentContext) -> String {
    let repeats = ctx.config.count.clamp(3, 30);
    let generator = MixedAttackGenerator::new(ctx.train_profile.clone());
    let detectors = DetectorSet::new(&ctx.train_profile);
    let images: Vec<Image> = (0..repeats).map(|i| generator.benign(i as u64)).collect();

    let mut t = MarkdownTable::new(vec![
        "Method",
        "Metric",
        "Run-time overhead (ms)",
        "Standard deviation (ms)",
    ]);
    let mut push = |method: &str, metric: &str, stats: (f64, f64)| {
        t.push_row(vec![method.to_string(), metric.to_string(), number(stats.0), number(stats.1)]);
    };

    push(
        "Scaling",
        "MSE",
        time_per_image(&images, |img| {
            let _ = detectors.scaling(MetricKind::Mse).score(img);
        }),
    );
    push(
        "Scaling",
        "SSIM",
        time_per_image(&images, |img| {
            let _ = detectors.scaling(MetricKind::Ssim).score(img);
        }),
    );
    push(
        "Filtering",
        "MSE",
        time_per_image(&images, |img| {
            let _ = detectors.filtering(MetricKind::Mse).score(img);
        }),
    );
    push(
        "Filtering",
        "SSIM",
        time_per_image(&images, |img| {
            let _ = detectors.filtering(MetricKind::Ssim).score(img);
        }),
    );
    push(
        "Steganalysis",
        "CSP",
        time_per_image(&images, |img| {
            let _ = detectors.steganalysis().score(img);
        }),
    );
    // Beyond the paper: all five scores from one shared-intermediate engine
    // pass, the cost a deployment running the full ensemble actually pays.
    push(
        "Engine (all methods)",
        "MSE+SSIM+CSP",
        time_per_image(&images, |img| {
            let _ = detectors.engine().score(img);
        }),
    );

    format!(
        "## Table 7 — run-time overheads of the detection methods\n\n\
         (per-image wall time over {repeats} `{}` images on this machine; \
         see `cargo bench -p decamouflage-bench` for Criterion-grade numbers)\n\n{t}",
        ctx.train_profile.name
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::HarnessConfig;
    use decamouflage_datasets::DatasetProfile;

    #[test]
    fn time_per_image_returns_positive_mean() {
        let images = vec![Image::from_fn_gray(32, 32, |x, y| (x * y) as f64)];
        let (mean, std) = time_per_image(&images, |img| {
            let _ = img.mean_sample();
        });
        assert!(mean >= 0.0);
        assert!(std >= 0.0);
    }

    #[test]
    fn table7_renders_all_methods() {
        let ctx = ExperimentContext::with_profiles(
            HarnessConfig::smoke(3),
            DatasetProfile::tiny(),
            DatasetProfile::tiny(),
        );
        let s = table7(&ctx);
        assert!(s.contains("Scaling"));
        assert!(s.contains("Filtering"));
        assert!(s.contains("Steganalysis"));
        assert!(s.contains("SSIM"));
        assert!(s.contains("Engine (all methods)"));
    }
}
