//! Reproduction harness for the Decamouflage paper.
//!
//! Everything needed to regenerate the paper's tables and figures lives
//! here, shared between the `repro` binary (one subcommand per artefact)
//! and the Criterion micro-benchmarks (the run-time overhead table).
//!
//! The harness scores each corpus **once** per detector — all experiments
//! (white-box, black-box percentiles, ensemble, figures) reuse the cached
//! score vectors, mirroring the paper's offline calibration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod experiments;
pub mod runtime;

pub use corpus::{ExperimentContext, HarnessConfig, MixedAttackGenerator, ScoreSet};
