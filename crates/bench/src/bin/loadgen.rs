//! `loadgen` — the service robustness benchmark.
//!
//! Spawns an in-process detection server deliberately undersized for
//! the offered load, then storms it with a closed- or open-loop fleet
//! mixing valid requests with malformed bodies, oversized declarations
//! and slow-loris connections. The run verifies the ISSUE's overload
//! contract and writes `BENCH_service.json`:
//!
//! * every request **completes, sheds (`503`) or times out
//!   (`408`/`504`)** — zero requests stall past the deadline plus a
//!   scheduling grace,
//! * after a graceful drain the in-flight gauge returns to `0`,
//! * client-observed latency quantiles (p50/p99/p999) come from the
//!   telemetry histogram, not an ad-hoc percentile sort.
//!
//! The exit code is the verdict: `0` when every robustness assertion
//! held, `1` otherwise — wire it straight into CI.
//!
//! ```text
//! loadgen [--workers N] [--requests N] [--deadline-ms N] [--mode closed|open]
//!         [--interval-ms N] [-o FILE]
//! ```

use decamouflage_core::persist::ThresholdSet;
use decamouflage_core::{DegradePolicy, Direction, MethodId, Threshold};
use decamouflage_imaging::codec::encode_pgm;
use decamouflage_imaging::{Image, Size};
use decamouflage_serve::flags::{parse_bounded_ms, parse_bounded_usize};
use decamouflage_serve::json;
use decamouflage_serve::{DetectionService, Server, ServerConfig};
use decamouflage_telemetry::Histogram;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Wall-clock slack allowed past the request deadline before a request
/// counts as stalled: covers connect/accept queueing and scheduler
/// jitter on small machines, not server-side processing.
const STALL_GRACE: Duration = Duration::from_millis(1500);

struct LoadConfig {
    workers: usize,
    requests_per_worker: usize,
    deadline: Duration,
    open_loop: bool,
    interval: Duration,
    out: String,
}

fn parse_cli() -> Result<LoadConfig, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LoadConfig {
        workers: 8,
        requests_per_worker: 4,
        deadline: Duration::from_millis(1000),
        open_loop: false,
        interval: Duration::from_millis(25),
        out: "BENCH_service.json".to_string(),
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value =
            || iter.next().map(String::as_str).ok_or_else(|| format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--workers" => config.workers = parse_bounded_usize(flag, value()?, 1, 256)?,
            "--requests" => {
                config.requests_per_worker = parse_bounded_usize(flag, value()?, 1, 10_000)?;
            }
            "--deadline-ms" => config.deadline = parse_bounded_ms(flag, value()?, 50, 60_000)?,
            "--interval-ms" => config.interval = parse_bounded_ms(flag, value()?, 1, 10_000)?,
            "--mode" => {
                config.open_loop = match value()? {
                    "open" => true,
                    "closed" => false,
                    other => return Err(format!("--mode: expected open|closed, got {other:?}")),
                }
            }
            "-o" | "--out" => config.out = value()?.to_string(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(config)
}

fn thresholds() -> ThresholdSet {
    let mut set = ThresholdSet::new();
    set.insert(MethodId::ScalingMse, Threshold::new(400.0, Direction::AboveIsAttack));
    set.insert(MethodId::FilteringSsim, Threshold::new(0.55, Direction::BelowIsAttack));
    set.insert(MethodId::Csp, Threshold::new(10.0, Direction::AboveIsAttack));
    set
}

/// The request mix, rotated per request so every worker exercises every
/// fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Valid,
    Malformed,
    Oversized,
    SlowLoris,
}

const MIX: [Kind; 8] = [
    Kind::Valid,
    Kind::Valid,
    Kind::Malformed,
    Kind::Valid,
    Kind::Oversized,
    Kind::Valid,
    Kind::SlowLoris,
    Kind::Valid,
];

struct Sample {
    kind: Kind,
    status: String,
    latency: Duration,
}

/// One request/response exchange; `status` is the numeric code or
/// `"closed"` when the server hung up without a response.
fn exchange(addr: SocketAddr, request: &[u8], read_timeout: Duration) -> String {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return "connect-failed".to_string();
    };
    let _ = stream.set_read_timeout(Some(read_timeout));
    if stream.write_all(request).is_err() {
        return "closed".to_string();
    }
    let mut response = Vec::new();
    match stream.read_to_end(&mut response) {
        Ok(_) if response.is_empty() => "closed".to_string(),
        Ok(_) => String::from_utf8_lossy(&response)
            .split_whitespace()
            .nth(1)
            .unwrap_or("closed")
            .to_string(),
        Err(_) => "client-timeout".to_string(),
    }
}

fn run_one(addr: SocketAddr, kind: Kind, body: &[u8], deadline: Duration) -> Sample {
    let started = Instant::now();
    // Client patience: past the deadline the server owes us *something*
    // (a 504 or a close); double-plus-grace means a stall shows up as a
    // client-timeout sample instead of hanging the worker forever.
    let patience = deadline * 2 + STALL_GRACE;
    let status = match kind {
        Kind::Valid => {
            let mut request = format!(
                "POST /check HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            request.extend_from_slice(body);
            exchange(addr, &request, patience)
        }
        Kind::Malformed => {
            let garbage = b"this is not any image format";
            let mut request = format!(
                "POST /check HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
                garbage.len()
            )
            .into_bytes();
            request.extend_from_slice(garbage);
            exchange(addr, &request, patience)
        }
        Kind::Oversized => {
            // Declared far past the body cap: the server must answer
            // 413 without waiting for bytes that will never come.
            let request = format!(
                "POST /check HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
                1usize << 33
            );
            exchange(addr, request.as_bytes(), patience)
        }
        Kind::SlowLoris => {
            // A partial head, then silence: the server's socket
            // deadline must reap the connection (408/504/close).
            exchange(addr, b"POST /check HTTP/1.1\r\nHost: loa", patience)
        }
    };
    Sample { kind, status, latency: started.elapsed() }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let load = parse_cli()?;
    let _ = decamouflage_telemetry::install_global(decamouflage_telemetry::Telemetry::enabled());
    let telemetry = decamouflage_telemetry::global();

    // An undersized server: 2 handlers + a queue of 2 means the storm
    // below offers well over 2x the worker-pool capacity.
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        handlers: 2,
        queue_limit: 2,
        deadline: load.deadline,
        drain_deadline: load.deadline * 4 + Duration::from_secs(2),
        lame_duck: Duration::from_millis(100),
        max_body_bytes: 4 * 1024 * 1024,
        ..ServerConfig::default()
    };
    let service =
        DetectionService::new(Size::square(16), &thresholds(), DegradePolicy::MajorityOfAvailable)?;
    let server = Server::bind(server_config.clone(), service).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let body =
        Arc::new(encode_pgm(&Image::from_fn_gray(48, 48, |x, y| ((x * 3 + y * 5) % 61) as f64)));
    let total_requests = load.workers * load.requests_per_worker;
    eprintln!(
        "storm: {} workers x {} requests ({} mode) against {addr} \
         (2 handlers + queue 2, deadline {:?})",
        load.workers,
        load.requests_per_worker,
        if load.open_loop { "open" } else { "closed" },
        load.deadline
    );

    // Storm phase.
    let storm_started = Instant::now();
    let (tx, rx) = mpsc::channel::<Sample>();
    let sequence = Arc::new(AtomicUsize::new(0));
    let mut storm_threads = Vec::new();
    for worker in 0..load.workers {
        let tx = tx.clone();
        let body = Arc::clone(&body);
        let sequence = Arc::clone(&sequence);
        let deadline = load.deadline;
        let open_loop = load.open_loop;
        let interval = load.interval;
        let per_worker = load.requests_per_worker;
        storm_threads.push(std::thread::spawn(move || {
            for i in 0..per_worker {
                if open_loop {
                    // Open loop: fire on the global cadence regardless
                    // of how long the previous request took.
                    std::thread::sleep(interval * worker.min(4) as u32);
                }
                let slot = sequence.fetch_add(1, Ordering::Relaxed);
                let kind = MIX[(slot + worker + i) % MIX.len()];
                let sample = run_one(addr, kind, &body, deadline);
                let _ = tx.send(sample);
            }
        }));
    }
    drop(tx);
    let latency = Histogram::latency_seconds();
    let mut status_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut kind_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut stalled = 0u64;
    let mut worst = Duration::ZERO;
    for sample in rx {
        latency.record(sample.latency.as_secs_f64());
        *status_counts.entry(sample.status.clone()).or_default() += 1;
        let kind = match sample.kind {
            Kind::Valid => "valid",
            Kind::Malformed => "malformed",
            Kind::Oversized => "oversized",
            Kind::SlowLoris => "slow-loris",
        };
        *kind_counts.entry(kind).or_default() += 1;
        worst = worst.max(sample.latency);
        // The robustness contract: the server resolves every request —
        // verdict, typed rejection, shed or timeout — within the
        // deadline plus grace. A client-timeout is an automatic stall.
        let budget = match sample.kind {
            // A loris deliberately idles until the server reaps it at
            // the deadline, so its budget starts there.
            Kind::SlowLoris => load.deadline + STALL_GRACE,
            _ => load.deadline + STALL_GRACE,
        };
        if sample.latency > budget || sample.status == "client-timeout" {
            stalled += 1;
            eprintln!("STALL: {kind} request took {:?} (status {})", sample.latency, sample.status);
        }
    }
    for thread in storm_threads {
        thread.join().map_err(|_| "storm worker panicked".to_string())?;
    }
    let storm_elapsed = storm_started.elapsed();
    let snapshot = latency.snapshot();

    // Post-storm calm phase: the server must serve normally again once
    // the burst subsides (brief 503s while the backlog unwinds are
    // fine, so poll).
    let mut post_storm_ok = 0usize;
    let post_storm_probes = 5usize;
    for _ in 0..post_storm_probes {
        for _ in 0..40 {
            let mut request = format!(
                "POST /check HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            request.extend_from_slice(&body);
            if exchange(addr, &request, load.deadline * 2) == "200" {
                post_storm_ok += 1;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // Drain.
    handle.shutdown();
    let report = server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server run: {e}"))?;
    let in_flight_after = telemetry.gauge("decam_http_in_flight", &[]).value();
    let shed_overload =
        telemetry.counter("decam_http_shed_total", &[("reason", "overload")]).value();
    let deadline_expired = telemetry.counter("decam_http_deadline_expired_total", &[]).value();

    // Render BENCH_service.json.
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"workers\": {}, \"requests_per_worker\": {}, \"mode\": \"{}\", \
         \"handlers\": {}, \"queue_limit\": {}, \"deadline_ms\": {}, \"stall_grace_ms\": {}}},\n",
        load.workers,
        load.requests_per_worker,
        if load.open_loop { "open" } else { "closed" },
        server_config.handlers,
        server_config.queue_limit,
        load.deadline.as_millis(),
        STALL_GRACE.as_millis(),
    ));
    out.push_str(&format!(
        "  \"storm\": {{\"requests\": {total_requests}, \"elapsed_seconds\": {}, ",
        json::number(storm_elapsed.as_secs_f64())
    ));
    out.push_str("\"status_counts\": {");
    let rendered: Vec<String> = status_counts
        .iter()
        .map(|(status, count)| format!("\"{}\": {count}", json::escape(status)))
        .collect();
    out.push_str(&rendered.join(", "));
    out.push_str("}, \"kind_counts\": {");
    let rendered: Vec<String> =
        kind_counts.iter().map(|(kind, count)| format!("\"{kind}\": {count}")).collect();
    out.push_str(&rendered.join(", "));
    out.push_str(&format!(
        "}}, \"stalled_past_deadline\": {stalled}, \"worst_latency_seconds\": {}, ",
        json::number(worst.as_secs_f64())
    ));
    out.push_str(&format!(
        "\"latency_seconds\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}}}}},\n",
        snapshot.count(),
        json::number(snapshot.p50().unwrap_or(f64::NAN)),
        json::number(snapshot.p99().unwrap_or(f64::NAN)),
        json::number(snapshot.p999().unwrap_or(f64::NAN)),
    ));
    out.push_str(&format!(
        "  \"post_storm\": {{\"probes\": {post_storm_probes}, \"ok\": {post_storm_ok}}},\n"
    ));
    out.push_str(&format!(
        "  \"drain\": {{\"drained\": {}, \"in_flight_at_exit\": {}, \
         \"in_flight_gauge_after_drain\": {}}},\n",
        report.drained,
        report.in_flight_at_exit,
        json::number(in_flight_after)
    ));
    out.push_str(&format!(
        "  \"server\": {{\"shed_overload\": {shed_overload}, \
         \"deadline_expired_504\": {deadline_expired}}}\n}}\n"
    ));
    std::fs::write(&load.out, &out).map_err(|e| format!("cannot write {}: {e}", load.out))?;
    eprintln!(
        "storm done in {storm_elapsed:?}: {total_requests} requests, {stalled} stalled, \
         {shed_overload} shed, drained={} — wrote {}",
        report.drained, load.out
    );

    // The verdict.
    let healthy = stalled == 0
        && report.drained
        && in_flight_after == 0.0
        && post_storm_ok == post_storm_probes;
    if !healthy {
        eprintln!(
            "FAIL: stalled={stalled} drained={} gauge={} post_storm={post_storm_ok}/{post_storm_probes}",
            report.drained, in_flight_after
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
