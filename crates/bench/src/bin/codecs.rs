//! `codecs` — decode-stage latency per container format.
//!
//! Writes a synthetic corpus to disk once per format (BMP, PNM, PNG,
//! JPEG), then streams each directory through [`DirectorySource`] so
//! the numbers come from the production decode path: magic-byte sniff,
//! `decode_into` a pooled buffer, and the
//! `decam_engine_stage_seconds{stage="decode"}` timer that production
//! telemetry already records. Results land in `BENCH_codecs.json` as
//! µs/image per format, alongside the per-format byte sizes (the
//! compression each container buys on this corpus).
//!
//! Exits non-zero if any format fails to decode its own corpus or the
//! decode counter shows an error — the bench doubles as a smoke test
//! that every encoder's output survives its decoder at corpus scale.
//!
//! Usage: `codecs [images] [repeats] [-o FILE]` (default 48 images,
//! 3 passes, `BENCH_codecs.json`).

use decamouflage_bench::corpus::MixedAttackGenerator;
use decamouflage_core::stream::{BufferPool, DirectorySource, ImageSource};
use decamouflage_datasets::DatasetProfile;
use decamouflage_imaging::codec::{encode_bmp, encode_jpeg, encode_png, encode_ppm};
use decamouflage_imaging::{Image, Size};
use decamouflage_telemetry::Telemetry;
use std::path::PathBuf;
use std::process::ExitCode;

const FORMATS: [&str; 4] = ["bmp", "pnm", "png", "jpeg"];

fn encode(format: &str, image: &Image) -> Vec<u8> {
    match format {
        "bmp" => encode_bmp(image),
        "pnm" => encode_ppm(image),
        "png" => encode_png(image),
        "jpeg" => encode_jpeg(image, 90),
        other => unreachable!("unknown format {other}"),
    }
}

fn extension(format: &str) -> &'static str {
    match format {
        "bmp" => "bmp",
        "pnm" => "ppm",
        "png" => "png",
        _ => "jpg",
    }
}

struct FormatResult {
    format: &'static str,
    decode_us_per_image: f64,
    corpus_bytes: u64,
    images: usize,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals = Vec::new();
    let mut out = String::from("BENCH_codecs.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "-o" {
            match iter.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("-o needs a file path");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            positionals.push(arg.clone());
        }
    }
    let images: usize = positionals.first().and_then(|a| a.parse().ok()).unwrap_or(48);
    let repeats: usize = positionals.get(1).and_then(|a| a.parse().ok()).unwrap_or(3);

    // The corpus mirrors the detector bench: half benign, half attack,
    // at a realistic source size so decode cost is not noise.
    let mut profile = DatasetProfile::tiny();
    profile.name = "codec-bench";
    profile.source_sizes = vec![Size::square(128)];
    profile.target_size = Size::square(32);
    let generator = MixedAttackGenerator::new(profile);
    let corpus: Vec<Image> = (0..images.div_ceil(2) as u64)
        .flat_map(|i| [generator.benign(i).to_rgb(), generator.attack(i).to_rgb()])
        .take(images)
        .collect();

    let root =
        std::env::temp_dir().join(format!("decamouflage-codec-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mut results = Vec::new();
    for format in FORMATS {
        let dir: PathBuf = root.join(format);
        std::fs::create_dir_all(&dir).expect("create bench dir");
        let mut corpus_bytes = 0u64;
        for (i, image) in corpus.iter().enumerate() {
            let bytes = encode(format, image);
            corpus_bytes += bytes.len() as u64;
            std::fs::write(dir.join(format!("{i:04}.{}", extension(format))), bytes)
                .expect("write bench file");
        }

        let telemetry = Telemetry::enabled();
        let mut pool = BufferPool::with_telemetry(4, &telemetry);
        let mut decoded = 0usize;
        for _ in 0..repeats {
            let mut source =
                DirectorySource::with_telemetry(&dir, &telemetry).expect("open bench dir");
            while let Some(item) = source.next_image(&mut pool) {
                match item {
                    Ok(image) => {
                        decoded += 1;
                        pool.recycle(image);
                    }
                    Err(err) => {
                        eprintln!("{format}: decode failed mid-corpus: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        if decoded != images * repeats {
            eprintln!("{format}: decoded {decoded}, expected {}", images * repeats);
            return ExitCode::FAILURE;
        }
        let ok = telemetry
            .counter("decam_codec_decode_total", &[("format", format), ("outcome", "ok")])
            .value();
        if ok as usize != decoded {
            eprintln!("{format}: decode counter {ok} disagrees with {decoded} decodes");
            return ExitCode::FAILURE;
        }

        let snapshot = telemetry
            .histogram("decam_engine_stage_seconds", &[("stage", "decode")])
            .snapshot()
            .expect("telemetry enabled");
        let decode_us_per_image = snapshot.sum() / decoded as f64 * 1e6;
        println!(
            "{format:<5} {decode_us_per_image:8.1} µs/image decode   \
             {:7.1} KiB corpus ({images} images)",
            corpus_bytes as f64 / 1024.0
        );
        results.push(FormatResult { format, decode_us_per_image, corpus_bytes, images });
    }
    let _ = std::fs::remove_dir_all(&root);

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{\"decode_us_per_image\": {:.3}, \"corpus_bytes\": {}, \
                 \"images\": {}}}",
                r.format, r.decode_us_per_image, r.corpus_bytes, r.images
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"config\": {{\"images\": {images}, \"repeats\": {repeats}, \
         \"source_size\": 128}},\n  \"formats\": {{\n{}\n  }}\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
