//! Per-stage latency profile of the detection engine, read from its own
//! telemetry timers over a synthetic corpus.
//!
//! Prints µs/image for every shared stage and per-method increment, plus
//! the SSIM share of total engine time. Used by `ci.sh` as the stage-share
//! gate: exits non-zero if the SSIM pipeline (reference build + both SSIM
//! method increments) consumes [`SSIM_SHARE_LIMIT`] or more of an engine
//! pass — the vectorized-kernel tentpole's promise that SSIM no longer
//! dominates scoring.
//!
//! Usage: `stage_profile [repeats]` (default 5 passes over 64 images).

use decamouflage_bench::corpus::{DetectorSet, MixedAttackGenerator};
use decamouflage_datasets::DatasetProfile;
use decamouflage_imaging::{Image, Size};
use decamouflage_telemetry::Telemetry;

/// Ceiling on the SSIM share of one engine pass.
const SSIM_SHARE_LIMIT: f64 = 0.50;

/// Images per class (64 images total), mirroring the detectors bench.
const CORPUS_PER_CLASS: usize = 32;

fn main() {
    let repeats: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5);

    let mut profile = DatasetProfile::tiny();
    profile.name = "stage-profile";
    profile.source_sizes = vec![Size::square(128)];
    profile.target_size = Size::square(32);
    let generator = MixedAttackGenerator::new(profile.clone());
    let detectors = DetectorSet::new(&profile);
    let telemetry = Telemetry::enabled();
    let engine = detectors.engine().clone().with_telemetry(telemetry.clone());

    let images: Vec<Image> = (0..CORPUS_PER_CLASS as u64)
        .flat_map(|i| [generator.benign(i), generator.attack(i)])
        .collect();
    for _ in 0..repeats {
        for image in &images {
            let _ = engine.score(image).expect("synthetic corpus scores cleanly");
        }
    }

    let per_image = |name: &str, labels: &[(&str, &str)]| -> f64 {
        let snapshot = telemetry.histogram(name, labels).snapshot().expect("telemetry enabled");
        if snapshot.count() == 0 {
            0.0
        } else {
            snapshot.sum() / (repeats * images.len()) as f64 * 1e6
        }
    };

    let total = per_image("decam_engine_score_seconds", &[]);
    println!("engine total: {total:.1} µs/image over {} images x {repeats} passes", images.len());
    println!("-- shared stages --");
    let mut ssim_us = 0.0;
    for stage in ["validate", "scale_round_trip", "rank_filter", "ssim_reference", "dft"] {
        let us = per_image("decam_engine_stage_seconds", &[("stage", stage)]);
        println!("  {stage:<18} {us:8.1} µs/image");
        if stage == "ssim_reference" {
            ssim_us += us;
        }
    }
    println!("-- per-method increments --");
    for method in decamouflage_core::MethodId::ALL {
        let us = per_image("decam_method_score_seconds", &[("method", method.name())]);
        println!("  {:<18} {us:8.1} µs/image", method.name());
        if matches!(method.name(), "scaling/ssim" | "filtering/ssim") {
            ssim_us += us;
        }
    }

    let share = if total > 0.0 { ssim_us / total } else { 0.0 };
    println!(
        "SSIM share (reference + scaling/ssim + filtering/ssim): {:.1}% of engine pass \
         (gate {:.0}%)",
        share * 100.0,
        SSIM_SHARE_LIMIT * 100.0
    );
    if share >= SSIM_SHARE_LIMIT {
        eprintln!("FAIL: SSIM stage share exceeds the {SSIM_SHARE_LIMIT:.2} gate");
        std::process::exit(1);
    }
}
