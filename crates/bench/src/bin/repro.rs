//! `repro` — regenerate the Decamouflage paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--count N] [--threads N]
//! repro all            # every paper table and figure
//! repro ablations      # the extension experiments
//! repro list           # show available experiment ids
//! ```
//!
//! The paper uses 1000 images per class; `--count` trades fidelity for
//! speed (e.g. `--count 100` for a quick pass). Output is Markdown on
//! stdout. The default worker count honours the `DECAM_THREADS`
//! environment variable; `--threads` overrides both.

use decamouflage_bench::experiments::{run_experiment, ABLATIONS, ALL_EXPERIMENTS};
use decamouflage_bench::{ExperimentContext, HarnessConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut config = HarnessConfig::default();

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.count = n,
                _ => return usage("--count expects a positive integer"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.threads = n,
                _ => return usage("--threads expects a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            "list" => {
                println!("paper artefacts: {}", ALL_EXPERIMENTS.join(", "));
                println!("ablations:       {}", ABLATIONS.join(", "));
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(ABLATIONS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => ids.push(other.to_string()),
        }
    }

    if ids.is_empty() {
        return usage("no experiment requested");
    }

    eprintln!(
        "# decamouflage repro: {} experiment(s), {} images/class, {} threads",
        ids.len(),
        config.count,
        config.threads
    );
    let ctx = ExperimentContext::new(config);
    let started = std::time::Instant::now();
    for id in &ids {
        eprintln!("# running {id} ...");
        match run_experiment(id, &ctx) {
            Ok(report) => {
                println!("{report}");
            }
            Err(err) => {
                eprintln!("error running {id}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("# done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: repro <experiment>... [--count N] [--threads N]\n       \
         repro all | ablations | list\n\n\
         --threads defaults to DECAM_THREADS (if set) or the machine's \
         available parallelism\n\n\
         paper artefacts: {}\nablations:       {}",
        ALL_EXPERIMENTS.join(", "),
        ABLATIONS.join(", ")
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
