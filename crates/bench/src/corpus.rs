//! Corpus construction and one-pass multi-detector scoring.

use decamouflage_core::engine::EngineDetectors;
use decamouflage_core::parallel::{default_threads, parallel_map_indices};
use decamouflage_core::peak_excess::PeakExcessDetector;
use decamouflage_core::pipeline::ScoredCorpus;
use decamouflage_core::stream::ChunkDriver;
use decamouflage_core::{
    DetectionEngine, FilteringDetector, FnSource, MethodId, MetricKind, ScalingDetector,
    ScoreError, SteganalysisDetector, StreamConfig,
};
use decamouflage_datasets::{DatasetProfile, SampleGenerator};
use decamouflage_imaging::scale::ScaleAlgorithm;
use decamouflage_imaging::Image;
use decamouflage_metrics::{histogram_intersection, psnr};

/// Attack images drawn from a round-robin mix of vulnerable scaling
/// algorithms — the realistic "attacks in the wild" mix the defender faces.
#[derive(Debug, Clone)]
pub struct MixedAttackGenerator {
    generators: Vec<SampleGenerator>,
}

impl MixedAttackGenerator {
    /// Builds the default mix (nearest + bilinear attacks) over a profile.
    pub fn new(profile: DatasetProfile) -> Self {
        let algorithms = [ScaleAlgorithm::Nearest, ScaleAlgorithm::Bilinear];
        Self {
            generators: algorithms
                .iter()
                .map(|&a| SampleGenerator::new(profile.clone(), a))
                .collect(),
        }
    }

    /// The generator responsible for sample `index`.
    pub fn generator_for(&self, index: u64) -> &SampleGenerator {
        &self.generators[(index as usize) % self.generators.len()]
    }

    /// The benign original of sample `index` (same across algorithms).
    pub fn benign(&self, index: u64) -> Image {
        self.generators[0].benign(index)
    }

    /// The attack image of sample `index`.
    ///
    /// # Panics
    ///
    /// Panics if crafting fails, which the built-in profiles never trigger.
    pub fn attack(&self, index: u64) -> Image {
        self.generator_for(index)
            .attack_image(index)
            .expect("attack crafting on built-in profiles cannot fail")
    }
}

/// Every registered engine method ([`MethodId::ALL`], in registry order)
/// plus the three negative-result scorers the paper rejects:
/// `scaling/psnr` (Appendix A), `filtering/psnr` (Appendix A) and
/// `scaling/colorhist` (§3.1).
#[derive(Debug)]
pub struct DetectorSet {
    engine: DetectionEngine,
    detectors: EngineDetectors,
}

/// Index of `scaling/mse` in a [`ScoreSet`].
pub const IDX_SCALING_MSE: usize = MethodId::ScalingMse as usize;
/// Index of `scaling/ssim` in a [`ScoreSet`].
pub const IDX_SCALING_SSIM: usize = MethodId::ScalingSsim as usize;
/// Index of `filtering/mse` in a [`ScoreSet`].
pub const IDX_FILTERING_MSE: usize = MethodId::FilteringMse as usize;
/// Index of `filtering/ssim` in a [`ScoreSet`].
pub const IDX_FILTERING_SSIM: usize = MethodId::FilteringSsim as usize;
/// Index of `steganalysis/csp` in a [`ScoreSet`].
pub const IDX_STEGANALYSIS: usize = MethodId::Csp as usize;
/// Index of `steganalysis/peak-excess` in a [`ScoreSet`].
pub const IDX_PEAK_EXCESS: usize = MethodId::PeakExcess as usize;
/// Index of `scaling/psnr` (negative result, Appendix A).
pub const IDX_SCALING_PSNR: usize = MethodId::COUNT;
/// Index of `filtering/psnr` (negative result, Appendix A).
pub const IDX_FILTERING_PSNR: usize = MethodId::COUNT + 1;
/// Index of `scaling/colorhist` (negative result, §3.1).
pub const IDX_COLORHIST: usize = MethodId::COUNT + 2;
/// Number of scorers in a [`ScoreSet`]: the whole method registry plus
/// the three negative-result scorers.
pub const SCORER_COUNT: usize = MethodId::COUNT + 3;

/// Human-readable scorer names, aligned with the `IDX_*` constants. The
/// registry slots come straight from [`MethodId::name`], so a newly
/// registered method is named here automatically.
pub const SCORER_NAMES: [&str; SCORER_COUNT] = {
    let mut names = [""; SCORER_COUNT];
    let mut i = 0;
    while i < MethodId::COUNT {
        names[i] = MethodId::ALL[i].name();
        i += 1;
    }
    names[IDX_SCALING_PSNR] = "scaling/psnr";
    names[IDX_FILTERING_PSNR] = "filtering/psnr";
    names[IDX_COLORHIST] = "scaling/colorhist";
    names
};

impl DetectorSet {
    /// Builds the detector set for a profile's CNN input size. The
    /// defender's round trip uses bilinear scaling (a deployment choice,
    /// independent of the attacker's algorithm).
    pub fn new(profile: &DatasetProfile) -> Self {
        let engine = DetectionEngine::new(profile.target_size);
        let detectors = engine.detectors();
        Self { engine, detectors }
    }

    /// The shared-intermediate engine behind [`DetectorSet::score_all`].
    pub fn engine(&self) -> &DetectionEngine {
        &self.engine
    }

    /// The scaling detector with the given metric.
    pub fn scaling(&self, metric: MetricKind) -> &ScalingDetector {
        match metric {
            MetricKind::Mse => &self.detectors.scaling_mse,
            MetricKind::Ssim => &self.detectors.scaling_ssim,
        }
    }

    /// The filtering detector with the given metric.
    pub fn filtering(&self, metric: MetricKind) -> &FilteringDetector {
        match metric {
            MetricKind::Mse => &self.detectors.filtering_mse,
            MetricKind::Ssim => &self.detectors.filtering_ssim,
        }
    }

    /// The steganalysis detector.
    pub fn steganalysis(&self) -> &SteganalysisDetector {
        &self.detectors.steganalysis
    }

    /// The Fourier peak-excess detector.
    pub fn peak_excess(&self) -> &PeakExcessDetector {
        &self.detectors.peak_excess
    }

    /// Scores one image with all scorers in `IDX_*` order, in one engine
    /// pass: every registry method comes from
    /// [`DetectionEngine::score_with_artifacts`] (bit-identical to the
    /// individual detectors), and the PSNR / colour-histogram negative
    /// results reuse the engine's round-tripped and filtered intermediates.
    ///
    /// # Panics
    ///
    /// Panics on a scoring failure, which generated images never trigger;
    /// for untrusted inputs use [`DetectorSet::try_score_all`].
    pub fn score_all(&self, image: &Image) -> [f64; SCORER_COUNT] {
        self.try_score_all(image).expect("engine scoring on generated images cannot fail")
    }

    /// The fault-isolating variant of [`DetectorSet::score_all`]: validates
    /// the image through the engine's quarantine layer first and returns a
    /// typed [`ScoreError`] instead of panicking on anything unusable.
    ///
    /// # Errors
    ///
    /// Returns the quarantine [`ScoreError`] for invalid inputs and any
    /// scoring failure (index `0`; batch callers re-address it).
    pub fn try_score_all(&self, image: &Image) -> Result<[f64; SCORER_COUNT], ScoreError> {
        self.engine.validate_image(image)?;
        let artifacts =
            self.engine.score_with_artifacts(image).map_err(|err| ScoreError::detect(0, err))?;
        let round = &artifacts.round_tripped;
        let filtered = &artifacts.filtered;
        let mut row = [f64::NAN; SCORER_COUNT];
        for (id, score) in artifacts.scores.iter() {
            row[id as usize] = score;
        }
        let metric = |err: decamouflage_metrics::MetricError| {
            ScoreError::detect(0, decamouflage_core::DetectError::from(err))
        };
        row[IDX_SCALING_PSNR] = psnr(image, round).map_err(metric)?;
        row[IDX_FILTERING_PSNR] = psnr(image, filtered).map_err(metric)?;
        row[IDX_COLORHIST] = histogram_intersection(image, round, 64).map_err(metric)?;
        Ok(row)
    }
}

/// Per-scorer scored corpora for one dataset profile.
#[derive(Debug, Clone)]
pub struct ScoreSet {
    /// `corpora[idx]` is the scored corpus for scorer `IDX_*`.
    pub corpora: Vec<ScoredCorpus>,
    /// Images dropped by the quarantine layer while scoring the profile
    /// (zero for the built-in generated profiles). Quarantined images are
    /// absent from every corpus.
    pub quarantined: usize,
}

impl ScoreSet {
    /// The scored corpus of one scorer.
    pub fn of(&self, idx: usize) -> &ScoredCorpus {
        &self.corpora[idx]
    }
}

/// Harness configuration: corpus size and parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Benign (and attack) images per corpus. The paper uses 1000.
    pub count: usize,
    /// Worker threads for scoring.
    pub threads: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self { count: 1000, threads: default_threads() }
    }
}

impl HarnessConfig {
    /// A reduced configuration for fast smoke runs and tests.
    pub fn smoke(count: usize) -> Self {
        Self { count, threads: default_threads() }
    }
}

/// Lazily scored corpora for the training and evaluation profiles —
/// computed once, shared by every experiment.
pub struct ExperimentContext {
    /// Harness configuration.
    pub config: HarnessConfig,
    /// Training profile (threshold selection).
    pub train_profile: DatasetProfile,
    /// Evaluation profile (unseen dataset).
    pub eval_profile: DatasetProfile,
    train_scores: std::sync::OnceLock<ScoreSet>,
    eval_scores: std::sync::OnceLock<ScoreSet>,
}

impl ExperimentContext {
    /// Creates the paper's default context: calibrate on
    /// [`DatasetProfile::neurips_like`], evaluate on
    /// [`DatasetProfile::caltech_like`].
    pub fn new(config: HarnessConfig) -> Self {
        Self {
            config,
            train_profile: DatasetProfile::neurips_like(),
            eval_profile: DatasetProfile::caltech_like(),
            train_scores: std::sync::OnceLock::new(),
            eval_scores: std::sync::OnceLock::new(),
        }
    }

    /// Creates a context over custom profiles (used by tests with
    /// [`DatasetProfile::tiny`]).
    pub fn with_profiles(
        config: HarnessConfig,
        train_profile: DatasetProfile,
        eval_profile: DatasetProfile,
    ) -> Self {
        Self {
            config,
            train_profile,
            eval_profile,
            train_scores: std::sync::OnceLock::new(),
            eval_scores: std::sync::OnceLock::new(),
        }
    }

    /// Scores (or returns cached scores for) the training profile.
    pub fn train(&self) -> &ScoreSet {
        self.train_scores.get_or_init(|| score_profile(&self.train_profile, self.config))
    }

    /// Scores (or returns cached scores for) the evaluation profile.
    pub fn eval(&self) -> &ScoreSet {
        self.eval_scores.get_or_init(|| score_profile(&self.eval_profile, self.config))
    }
}

/// Scores a whole profile with every scorer in one pass per image. The
/// corpus streams through the core [`ChunkDriver`] as one synthetic
/// [`FnSource`] (benign indices first, then attacks), pulled as a single
/// `2 * count` chunk so the whole corpus is still one fan-out over the
/// worker pool.
///
/// Each image is fault-isolated: a slot whose generation or scoring fails
/// (or panics) is quarantined and dropped from every corpus, counted in
/// [`ScoreSet::quarantined`], instead of aborting the whole profile —
/// generation panics are caught at pull time by the driver, scoring
/// panics inside the fan-out.
pub fn score_profile(profile: &DatasetProfile, config: HarnessConfig) -> ScoreSet {
    let detectors = DetectorSet::new(profile);
    let generator = MixedAttackGenerator::new(profile.clone());

    let count = config.count;
    let mut source = FnSource::new(2 * count, |i| {
        if (i as usize) < count {
            generator.benign(i)
        } else {
            generator.attack(i - count as u64)
        }
    });
    let stream_config = StreamConfig::default()
        .with_chunk_size((2 * count).max(1))
        .with_threads(config.threads)
        .with_pool_capacity(0);
    let telemetry = decamouflage_telemetry::global();
    let mut driver = ChunkDriver::new(&mut source, &stream_config, &telemetry);
    let mut rows: Vec<Result<[f64; SCORER_COUNT], ScoreError>> = Vec::with_capacity(2 * count);
    while let Some(chunk) = driver.next_chunk() {
        let scored = parallel_map_indices(chunk.len(), config.threads, |offset| {
            let index = chunk.base() + offset;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                chunk.take(offset).and_then(|image| detectors.try_score_all(&image))
            }))
            .unwrap_or_else(|payload| Err(ScoreError::panicked(index, payload)))
            .map_err(|err| err.at_index(index))
        });
        rows.extend(scored);
        driver.finish_chunk();
    }
    let attack_rows: Vec<Result<[f64; SCORER_COUNT], ScoreError>> = rows.split_off(count);
    let benign_rows: Vec<Result<[f64; SCORER_COUNT], ScoreError>> = rows;

    let quarantined = benign_rows.iter().chain(&attack_rows).filter(|r| r.is_err()).count();
    let column = |rows: &[Result<[f64; SCORER_COUNT], ScoreError>], idx: usize| -> Vec<f64> {
        rows.iter().filter_map(|r| r.as_ref().ok()).map(|row| row[idx]).collect()
    };
    let corpora = (0..SCORER_COUNT)
        .map(|idx| ScoredCorpus {
            benign: column(&benign_rows, idx),
            attack: column(&attack_rows, idx),
        })
        .collect();
    ScoreSet { corpora, quarantined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_core::Detector;

    fn tiny_context(count: usize) -> ExperimentContext {
        ExperimentContext::with_profiles(
            HarnessConfig::smoke(count),
            DatasetProfile::tiny(),
            DatasetProfile::tiny(),
        )
    }

    #[test]
    fn mixed_generator_alternates_algorithms() {
        let g = MixedAttackGenerator::new(DatasetProfile::tiny());
        assert_eq!(g.generator_for(0).algorithm(), ScaleAlgorithm::Nearest);
        assert_eq!(g.generator_for(1).algorithm(), ScaleAlgorithm::Bilinear);
        assert_eq!(g.generator_for(2).algorithm(), ScaleAlgorithm::Nearest);
    }

    #[test]
    fn score_all_returns_finite_scores() {
        let profile = DatasetProfile::tiny();
        let detectors = DetectorSet::new(&profile);
        let g = MixedAttackGenerator::new(profile);
        let scores = detectors.score_all(&g.benign(0));
        for (i, s) in scores.iter().enumerate() {
            assert!(s.is_finite(), "{} produced {s}", SCORER_NAMES[i]);
        }
    }

    #[test]
    fn attack_scores_separate_from_benign_on_tiny_profile() {
        let ctx = tiny_context(6);
        let scores = ctx.train();
        let mse = scores.of(IDX_SCALING_MSE);
        let worst_benign = mse.benign.iter().cloned().fold(f64::MIN, f64::max);
        let best_attack = mse.attack.iter().cloned().fold(f64::MAX, f64::min);
        assert!(best_attack > worst_benign, "benign max {worst_benign}, attack min {best_attack}");
    }

    #[test]
    fn context_caches_scores() {
        let ctx = tiny_context(2);
        let first = ctx.train() as *const ScoreSet;
        let second = ctx.train() as *const ScoreSet;
        assert_eq!(first, second);
    }

    #[test]
    fn scorer_names_align_with_count() {
        assert_eq!(SCORER_NAMES.len(), SCORER_COUNT);
        assert_eq!(SCORER_NAMES[IDX_STEGANALYSIS], "steganalysis/csp");
        assert_eq!(SCORER_NAMES[IDX_PEAK_EXCESS], "steganalysis/peak-excess");
        assert_eq!(SCORER_NAMES[IDX_COLORHIST], "scaling/colorhist");
        // Registry slots come first and carry registry names.
        for (i, &id) in MethodId::ALL.iter().enumerate() {
            assert_eq!(SCORER_NAMES[i], id.name());
        }
    }

    #[test]
    fn try_score_all_quarantines_poisoned_images() {
        let profile = DatasetProfile::tiny();
        let detectors = DetectorSet::new(&profile);
        let g = MixedAttackGenerator::new(profile);
        let mut poisoned = g.benign(0);
        poisoned.set(1, 1, 0, f64::NAN);
        let err = detectors.try_score_all(&poisoned).unwrap_err();
        assert!(err.to_string().contains("non-finite pixel"), "{err}");
        // Clean images agree with the panicking facade.
        let clean = g.benign(0);
        assert_eq!(detectors.try_score_all(&clean).unwrap(), detectors.score_all(&clean));
    }

    #[test]
    fn generated_profiles_score_without_quarantine() {
        let ctx = tiny_context(3);
        let scores = ctx.train();
        assert_eq!(scores.quarantined, 0);
        assert_eq!(scores.of(IDX_SCALING_MSE).benign.len(), 3);
        assert_eq!(scores.of(IDX_SCALING_MSE).attack.len(), 3);
    }

    #[test]
    fn score_all_matches_standalone_peak_excess() {
        let profile = DatasetProfile::tiny();
        let detectors = DetectorSet::new(&profile);
        let g = MixedAttackGenerator::new(profile);
        let image = g.benign(1);
        let row = detectors.score_all(&image);
        let standalone = detectors.peak_excess().score(&image).unwrap();
        assert_eq!(row[IDX_PEAK_EXCESS], standalone);
    }
}
