//! Criterion benchmarks for the attack substrate: end-to-end crafting cost
//! per algorithm (closed-form fast paths vs. the projected-gradient
//! fallback) and 1-D QP solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decamouflage_attack::{craft_attack, solve_1d_attack, AttackConfig, QpConfig};
use decamouflage_datasets::{synthesize, SynthesisParams};
use decamouflage_imaging::scale::{CoeffMatrix, ScaleAlgorithm, Scaler};
use decamouflage_imaging::{Image, Size};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn original(n: usize) -> Image {
    let params = SynthesisParams {
        width: n,
        height: n,
        base_cell: (n / 4).max(4),
        ..SynthesisParams::default()
    };
    synthesize(&params, &mut StdRng::seed_from_u64(7))
}

fn target(n: usize) -> Image {
    let params = SynthesisParams {
        width: n,
        height: n,
        base_cell: (n / 4).max(4),
        ..SynthesisParams::default()
    };
    synthesize(&params, &mut StdRng::seed_from_u64(8))
}

fn bench_craft(c: &mut Criterion) {
    let o = original(448);
    let t = target(112);
    let mut group = c.benchmark_group("craft_448_to_112");
    group.sample_size(10);
    for algo in [ScaleAlgorithm::Nearest, ScaleAlgorithm::Bilinear] {
        let scaler = Scaler::new(Size::square(448), Size::square(112), algo).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &scaler, |b, s| {
            b.iter(|| craft_attack(&o, &t, s, &AttackConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_qp_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("qp_1d");
    group.sample_size(10);

    // Closed-form disjoint path: bilinear factor 4.
    let disjoint = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 448, 112).unwrap();
    let src: Vec<f64> = (0..448).map(|i| 100.0 + (i % 37) as f64).collect();
    let dst: Vec<f64> = (0..112).map(|i| ((i * 53) % 256) as f64).collect();
    group.bench_function("disjoint_closed_form_448", |b| {
        b.iter(|| solve_1d_attack(&disjoint, &src, &dst, &QpConfig::default()).unwrap())
    });

    // Projected-gradient path: bilinear factor 1.6 (overlapping taps).
    let overlapping = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 448, 280).unwrap();
    let hidden: Vec<f64> = (0..448).map(|i| ((i * 29) % 200) as f64 + 20.0).collect();
    let feasible = overlapping.apply(&hidden);
    group.bench_function("projected_gradient_448", |b| {
        b.iter(|| solve_1d_attack(&overlapping, &src, &feasible, &QpConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_craft, bench_qp_paths);
criterion_main!(benches);
