//! Criterion benchmarks for the paper's run-time overhead table (Table 7):
//! per-image latency of each detection method and metric, the full
//! majority-vote ensemble, and the shared-intermediate [`DetectionEngine`].
//!
//! Unlike the other benches this one has a hand-written `main`: after the
//! Criterion groups it runs a throughput comparison — cold per-detector
//! scoring versus one engine pass versus the batch `score_images` API over a
//! 64-image synthetic corpus — verifies the engine scores are bit-identical
//! to the naive detectors, and writes the numbers to `BENCH_detectors.json`
//! at the repository root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use decamouflage_bench::corpus::{DetectorSet, MixedAttackGenerator};
use decamouflage_core::ensemble::Ensemble;
use decamouflage_core::parallel::default_threads;
use decamouflage_core::{
    Detector, Direction, EngineScores, MethodId, MetricKind, SliceSource, SteganalysisDetector,
    StreamConfig, Threshold,
};
use decamouflage_datasets::DatasetProfile;
use decamouflage_imaging::{Image, Size};
use decamouflage_telemetry::Telemetry;
use std::time::Instant;

/// `scaling/mse` → `scaling_mse`: registry names as JSON/Criterion labels.
fn bench_label(id: MethodId) -> String {
    id.name().replace(['/', '-'], "_")
}

fn bench_detection_methods(c: &mut Criterion) {
    let profile = DatasetProfile::neurips_like();
    let generator = MixedAttackGenerator::new(profile.clone());
    let detectors = DetectorSet::new(&profile);
    // One representative image per source size in the profile.
    let images: Vec<_> = (0..3u64).map(|i| generator.benign(i)).collect();

    let mut group = c.benchmark_group("table7");
    group.sample_size(10);
    for image in &images {
        let label = format!("{}x{}", image.width(), image.height());
        for &id in MethodId::ALL {
            let det = detectors.engine().build_detector(id);
            group.bench_with_input(BenchmarkId::new(bench_label(id), &label), image, |b, img| {
                b.iter(|| det.score(img).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("engine_all_methods", &label), image, |b, img| {
            b.iter(|| detectors.engine().score(img).unwrap())
        });
    }
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let profile = DatasetProfile::neurips_like();
    let generator = MixedAttackGenerator::new(profile.clone());
    let detectors = DetectorSet::new(&profile);
    let image = generator.benign(0);

    let ensemble = Ensemble::new()
        .with_member(
            detectors.scaling(MetricKind::Mse).clone(),
            Threshold::new(100.0, Direction::AboveIsAttack),
        )
        .with_member(
            detectors.filtering(MetricKind::Ssim).clone(),
            Threshold::new(0.6, Direction::BelowIsAttack),
        )
        .with_member(
            SteganalysisDetector::for_target(profile.target_size),
            SteganalysisDetector::universal_threshold(),
        );

    let mut group = c.benchmark_group("ensemble");
    group.sample_size(10);
    group.bench_function("majority_vote_full_system", |b| {
        b.iter(|| ensemble.is_attack(&image).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_detection_methods, bench_ensemble);

/// Images per class in the throughput corpus (64 images total).
const CORPUS_PER_CLASS: usize = 32;

/// The profile behind the throughput corpus: 128×128 sources scaled to the
/// 32×32 CNN input, i.e. a mid-size workload between `tiny` and the paper
/// profiles.
fn throughput_profile() -> DatasetProfile {
    let mut profile = DatasetProfile::tiny();
    profile.name = "bench-throughput";
    profile.source_sizes = vec![Size::square(128)];
    profile.target_size = Size::square(32);
    profile
}

/// Wall time of one full pass of `score` over `images`, best of `repeats`.
fn time_pass(images: &[Image], repeats: usize, mut score: impl FnMut(&[Image])) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        score(images);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One standalone detector per registry method, built once (so timing
/// measures scoring, not construction).
fn naive_detectors(detectors: &DetectorSet) -> Vec<(MethodId, Box<dyn Detector>)> {
    MethodId::ALL.iter().map(|&id| (id, detectors.engine().build_detector(id))).collect()
}

/// Scores one image the pre-engine way: each naive detector from scratch.
fn cold_scores(naive: &[(MethodId, Box<dyn Detector>)], image: &Image) -> EngineScores {
    let mut scores = EngineScores::splat(f64::NAN);
    for (id, det) in naive {
        scores.set(*id, det.score(image).unwrap());
    }
    scores
}

struct Throughput {
    corpus_images: usize,
    per_detector_s: Vec<(String, f64)>,
    cold_s: f64,
    engine_s: f64,
    batch_s: f64,
    threads: usize,
}

/// Times cold per-detector scoring against the engine over a 64-image
/// corpus, asserting bit-identical scores along the way.
fn run_throughput() -> Throughput {
    let profile = throughput_profile();
    let generator = MixedAttackGenerator::new(profile.clone());
    let detectors = DetectorSet::new(&profile);
    let engine = detectors.engine();

    let images: Vec<Image> = (0..CORPUS_PER_CLASS as u64)
        .flat_map(|i| [generator.benign(i), generator.attack(i)])
        .collect();

    let naive = naive_detectors(&detectors);

    // Correctness gate: the engine's shared-intermediate path must match
    // the naive detectors exactly on every corpus image — including the
    // peak-excess score, which the engine derives from the spectrum it
    // already planned for CSP.
    for image in &images {
        assert_eq!(
            engine.score(image).unwrap(),
            cold_scores(&naive, image),
            "engine diverged from the naive detectors"
        );
    }

    let repeats = 5;
    // Per-detector cold latency, one detector at a time, straight off the
    // method registry.
    let per_detector_s: Vec<(String, f64)> = naive
        .iter()
        .map(|(id, det)| {
            let secs = time_pass(&images, repeats, |imgs| {
                for img in imgs {
                    let _ = det.score(img).unwrap();
                }
            });
            (bench_label(*id), secs)
        })
        .collect();

    // Every registry score per image: cold (standalone detectors) vs one
    // engine pass.
    let cold_s = time_pass(&images, repeats, |imgs| {
        for img in imgs {
            let _ = cold_scores(&naive, img);
        }
    });
    let engine_s = time_pass(&images, repeats, |imgs| {
        for img in imgs {
            let _ = engine.score(img).unwrap();
        }
    });

    // Batch fan-out bookkeeping over the same resident corpus: the
    // zero-copy slice API scores `images` in place, so the series differs
    // from the engine loop only by the per-slot quarantine (validation +
    // unwind guard) and the fan-out plumbing — exactly what the
    // `BATCH_OVERHEAD_LIMIT` gate is meant to bound. (Timing the
    // closure-based `score_corpus` here instead would charge the API for
    // one 128 KiB image clone per slot — memcpy, not bookkeeping — which
    // at sub-1.5 ms scoring costs several percent on its own.)
    let threads = default_threads();
    let batch_s = time_pass(&images, repeats, |imgs| {
        for result in engine.score_images(imgs, threads) {
            let _ = result.unwrap();
        }
    });

    Throughput { corpus_images: images.len(), per_detector_s, cold_s, engine_s, batch_s, threads }
}

/// Ceiling on the streaming engine's overhead versus the eager batch
/// path: chunked `score_stream` must stay within 2% of
/// `score_corpus_resilient` on the same corpus.
const STREAMING_OVERHEAD_LIMIT: f64 = 1.02;

/// Chunk size for the streaming comparison — half the corpus, so the
/// stream pays at least one real chunk boundary.
const STREAMING_CHUNK_SIZE: usize = 32;

/// Result of the streaming-vs-eager guardrail.
struct StreamingOverhead {
    /// Streaming-over-eager wall-time ratio (best of several attempts).
    ratio: f64,
    /// Streaming wall time of one corpus pass, seconds (best observed).
    stream_s: f64,
}

/// The streaming tentpole's two hard guarantees, asserted on every bench
/// run: chunked scoring is bit-identical to the eager batch (in stream
/// order), and costs less than [`STREAMING_OVERHEAD_LIMIT`] over it.
fn run_streaming_overhead() -> StreamingOverhead {
    let profile = throughput_profile();
    let generator = MixedAttackGenerator::new(profile.clone());
    let detectors = DetectorSet::new(&profile);
    let engine = detectors.engine();
    let threads = default_threads();

    let benign: Vec<Image> = (0..CORPUS_PER_CLASS as u64).map(|i| generator.benign(i)).collect();
    let attack: Vec<Image> = (0..CORPUS_PER_CLASS as u64).map(|i| generator.attack(i)).collect();
    let all: Vec<Image> = benign.iter().chain(attack.iter()).cloned().collect();
    let config =
        StreamConfig::default().with_chunk_size(STREAMING_CHUNK_SIZE).with_threads(threads);

    // Bit-identity gate: the chunked stream must reproduce the eager
    // batch exactly, slot by slot in stream order.
    let outcome = engine.score_corpus_resilient(
        |i| benign[i as usize].clone(),
        |i| attack[i as usize].clone(),
        CORPUS_PER_CLASS,
        threads,
    );
    let eager: Vec<_> = outcome.benign.iter().chain(outcome.attack.iter()).collect();
    let mut streamed = Vec::with_capacity(all.len());
    engine.score_stream(&mut SliceSource::new(&all), &config, |_, result| streamed.push(result));
    assert_eq!(streamed.len(), eager.len());
    for (i, (s, e)) in streamed.iter().zip(eager.iter()).enumerate() {
        let (s, e) = match (s, e) {
            (Ok(s), Ok(e)) => (s, e),
            other => panic!("slot {i} outcome diverged: {other:?}"),
        };
        for &id in MethodId::ALL {
            assert_eq!(
                s.get(id).to_bits(),
                e.get(id).to_bits(),
                "streaming perturbed {id} at slot {i}"
            );
        }
    }

    let repeats = 5;
    let mut best_ratio = f64::INFINITY;
    let mut best_stream_s = f64::INFINITY;
    for _ in 0..TELEMETRY_OVERHEAD_ATTEMPTS {
        let eager_s = time_pass(&all, repeats, |_| {
            let _ = engine.score_corpus_resilient(
                |i| benign[i as usize].clone(),
                |i| attack[i as usize].clone(),
                CORPUS_PER_CLASS,
                threads,
            );
        });
        let stream_s = time_pass(&all, repeats, |imgs| {
            engine.score_stream(&mut SliceSource::new(imgs), &config, |_, result| {
                let _ = result;
            });
        });
        best_stream_s = best_stream_s.min(stream_s);
        best_ratio = best_ratio.min(stream_s / eager_s);
        if best_ratio < STREAMING_OVERHEAD_LIMIT {
            break;
        }
    }
    assert!(
        best_ratio < STREAMING_OVERHEAD_LIMIT,
        "streaming overhead {best_ratio:.4}x exceeds the {STREAMING_OVERHEAD_LIMIT}x budget"
    );
    StreamingOverhead { ratio: best_ratio, stream_s: best_stream_s }
}

/// Result of the telemetry overhead guardrail.
struct TelemetryOverhead {
    /// Enabled-over-disabled wall-time ratio (best of several attempts).
    ratio: f64,
    /// Prometheus exposition captured from the instrumented run.
    prometheus_text: String,
}

/// Ceiling on the fully-enabled telemetry overhead: the instrumented
/// engine must stay within 2% of the silent one.
const TELEMETRY_OVERHEAD_LIMIT: f64 = 1.02;

/// Timing attempts before the overhead assertion gives up: wall-clock
/// ratios on a shared machine are noisy, so the guardrail requires the
/// budget to hold on *some* attempt, not on every one.
const TELEMETRY_OVERHEAD_ATTEMPTS: usize = 5;

/// The tentpole's two hard guarantees, asserted on every bench run:
/// fully-enabled telemetry leaves each score bit-identical, and costs
/// less than [`TELEMETRY_OVERHEAD_LIMIT`] over the silent engine.
fn run_telemetry_overhead() -> TelemetryOverhead {
    let profile = throughput_profile();
    let generator = MixedAttackGenerator::new(profile.clone());
    let detectors = DetectorSet::new(&profile);
    let silent = detectors.engine();
    let telemetry = Telemetry::enabled();
    let observed = detectors.engine().clone().with_telemetry(telemetry.clone());

    let images: Vec<Image> = (0..CORPUS_PER_CLASS as u64)
        .flat_map(|i| [generator.benign(i), generator.attack(i)])
        .collect();

    // Bit-identity gate: recording must never perturb a score.
    for image in &images {
        let baseline = silent.score(image).unwrap();
        let recorded = observed.score(image).unwrap();
        for &id in MethodId::ALL {
            assert_eq!(
                baseline.get(id).to_bits(),
                recorded.get(id).to_bits(),
                "telemetry perturbed {id}"
            );
        }
    }

    let repeats = 5;
    let mut best_ratio = f64::INFINITY;
    for _ in 0..TELEMETRY_OVERHEAD_ATTEMPTS {
        let silent_s = time_pass(&images, repeats, |imgs| {
            for img in imgs {
                let _ = silent.score(img).unwrap();
            }
        });
        let observed_s = time_pass(&images, repeats, |imgs| {
            for img in imgs {
                let _ = observed.score(img).unwrap();
            }
        });
        best_ratio = best_ratio.min(observed_s / silent_s);
        if best_ratio < TELEMETRY_OVERHEAD_LIMIT {
            break;
        }
    }
    assert!(
        best_ratio < TELEMETRY_OVERHEAD_LIMIT,
        "telemetry overhead {best_ratio:.4}x exceeds the {TELEMETRY_OVERHEAD_LIMIT}x budget"
    );

    let prometheus_text = telemetry.prometheus_text().expect("telemetry enabled");
    decamouflage_telemetry::parse_prometheus_text(&prometheus_text)
        .expect("bench exposition must round-trip through the strict parser");
    TelemetryOverhead { ratio: best_ratio, prometheus_text }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_report(
    c: &Criterion,
    t: &Throughput,
    overhead: &TelemetryOverhead,
    stream: &StreamingOverhead,
) {
    let n = t.corpus_images as f64;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"detectors\",\n");
    out.push_str(&format!(
        "  \"corpus\": {{\"images\": {}, \"source_size\": \"128x128\", \"target_size\": \"32x32\"}},\n",
        t.corpus_images
    ));
    out.push_str(&format!("  \"threads\": {},\n", t.threads));

    out.push_str("  \"per_detector\": {\n");
    for (i, (name, secs)) in t.per_detector_s.iter().enumerate() {
        let comma = if i + 1 < t.per_detector_s.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{name}\": {{\"us_per_image\": {:.2}, \"images_per_sec\": {:.2}}}{comma}\n",
            secs / n * 1e6,
            n / secs
        ));
    }
    out.push_str("  },\n");

    out.push_str(&format!(
        "  \"all_methods_cold\": {{\"us_per_image\": {:.2}, \"images_per_sec\": {:.2}}},\n",
        t.cold_s / n * 1e6,
        n / t.cold_s
    ));
    out.push_str(&format!(
        "  \"engine\": {{\"us_per_image\": {:.2}, \"images_per_sec\": {:.2}, \
         \"latency_gate_us\": {ENGINE_LATENCY_GATE_US}}},\n",
        t.engine_s / n * 1e6,
        n / t.engine_s
    ));
    out.push_str(&format!(
        "  \"engine_batch\": {{\"us_per_image\": {:.2}, \"images_per_sec\": {:.2}, \
         \"overhead_vs_engine_ratio\": {:.4}, \"budget_ratio\": {BATCH_OVERHEAD_LIMIT}}},\n",
        t.batch_s / n * 1e6,
        n / t.batch_s,
        t.batch_s / t.engine_s
    ));
    out.push_str(&format!(
        "  \"engine_stream\": {{\"chunk_size\": {STREAMING_CHUNK_SIZE}, \
         \"us_per_image\": {:.2}, \"images_per_sec\": {:.2}, \
         \"overhead_vs_eager_ratio\": {:.4}, \"budget_ratio\": {STREAMING_OVERHEAD_LIMIT}, \
         \"scores_bit_identical\": true}},\n",
        stream.stream_s / n * 1e6,
        n / stream.stream_s,
        stream.ratio
    ));
    out.push_str(&format!("  \"speedup_engine_vs_cold\": {:.2},\n", t.cold_s / t.engine_s));
    out.push_str("  \"scores_bit_identical_to_naive_detectors\": true,\n");
    out.push_str(&format!(
        "  \"telemetry\": {{\"overhead_ratio\": {:.4}, \"budget_ratio\": {TELEMETRY_OVERHEAD_LIMIT}, \
         \"scores_bit_identical\": true, \"exposition\": \"BENCH_telemetry.prom\"}},\n",
        overhead.ratio
    ));

    out.push_str("  \"criterion\": [\n");
    for (i, r) in c.results.iter().enumerate() {
        let comma = if i + 1 < c.results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"label\": \"{}\", \"mean_us\": {:.3}, \"std_us\": {:.3}}}{comma}\n",
            json_escape(&r.group),
            json_escape(&r.label),
            r.mean_ns / 1e3,
            r.std_ns / 1e3
        ));
    }
    out.push_str("  ]\n}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_detectors.json");
    std::fs::write(&path, &out).expect("failed to write BENCH_detectors.json");
    println!("wrote {}", path.display());

    let prom = root.join("BENCH_telemetry.prom");
    std::fs::write(&prom, &overhead.prometheus_text).expect("failed to write BENCH_telemetry.prom");
    println!("wrote {}", prom.display());
}

/// Per-image engine latency ceiling (µs) asserted on every bench run: the
/// vectorized-kernel tentpole's "< 1.5 ms/image single-thread" gate.
const ENGINE_LATENCY_GATE_US: f64 = 1500.0;

/// Ceiling on `engine_batch` relative to the plain `engine` loop: the
/// fan-out bookkeeping must cost at most 5% on a single thread.
const BATCH_OVERHEAD_LIMIT: f64 = 1.05;

/// Attempts for the wall-clock perf gates; like the telemetry budget, the
/// gates must hold on *some* attempt (shared-machine noise).
const PERF_GATE_ATTEMPTS: usize = 5;

fn main() {
    // BENCH_SMOKE=1 runs only the throughput/overhead gates (the perf
    // smoke used by ci.sh) and leaves the recorded BENCH_detectors.json —
    // which includes the full Criterion table — untouched.
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let mut c = Criterion::default();
    if !smoke {
        benches(&mut c);
    }

    println!("-- throughput (64-image corpus, cold detectors vs engine) --");
    let mut t = run_throughput();
    let per_image_us = |secs: f64| secs / t.corpus_images as f64 * 1e6;
    for attempt in 1.. {
        let engine_us = per_image_us(t.engine_s);
        let batch_ratio = t.batch_s / t.engine_s;
        if engine_us < ENGINE_LATENCY_GATE_US && batch_ratio <= BATCH_OVERHEAD_LIMIT {
            break;
        }
        assert!(
            attempt < PERF_GATE_ATTEMPTS,
            "perf gate failed after {attempt} attempts: engine {engine_us:.2} µs/image \
             (gate {ENGINE_LATENCY_GATE_US}), batch ratio {batch_ratio:.4} \
             (gate {BATCH_OVERHEAD_LIMIT})"
        );
        let again = run_throughput();
        // Keep the best observation of each series across attempts.
        t.cold_s = t.cold_s.min(again.cold_s);
        t.engine_s = t.engine_s.min(again.engine_s);
        t.batch_s = t.batch_s.min(again.batch_s);
        for (ours, theirs) in t.per_detector_s.iter_mut().zip(again.per_detector_s) {
            ours.1 = ours.1.min(theirs.1);
        }
    }
    let n = t.corpus_images as f64;
    println!(
        "cold detectors: {:.1} images/s | engine: {:.1} images/s | batch (threads={}): {:.1} images/s | speedup {:.2}x",
        n / t.cold_s,
        n / t.engine_s,
        t.threads,
        n / t.batch_s,
        t.cold_s / t.engine_s
    );
    println!(
        "engine {:.2} µs/image (gate {ENGINE_LATENCY_GATE_US} µs) | batch ratio {:.4} \
         (gate {BATCH_OVERHEAD_LIMIT}x)",
        per_image_us(t.engine_s),
        t.batch_s / t.engine_s
    );

    println!("-- streaming overhead (chunked score_stream vs eager batch) --");
    let stream = run_streaming_overhead();
    println!(
        "streaming overhead {:.4}x at chunk size {STREAMING_CHUNK_SIZE} \
         (budget {STREAMING_OVERHEAD_LIMIT}x), scores bit-identical",
        stream.ratio
    );

    println!("-- telemetry overhead (fully instrumented engine vs silent) --");
    let overhead = run_telemetry_overhead();
    println!(
        "telemetry overhead {:.4}x (budget {TELEMETRY_OVERHEAD_LIMIT}x), scores bit-identical",
        overhead.ratio
    );
    if smoke {
        println!("BENCH_SMOKE set: gates passed, report left untouched");
    } else {
        write_report(&c, &t, &overhead, &stream);
    }
}
