//! Criterion benchmarks for the paper's run-time overhead table (Table 7):
//! per-image latency of each detection method and metric, plus the full
//! majority-vote ensemble.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decamouflage_bench::corpus::{DetectorSet, MixedAttackGenerator};
use decamouflage_core::ensemble::Ensemble;
use decamouflage_core::{Detector, Direction, MetricKind, SteganalysisDetector, Threshold};
use decamouflage_datasets::DatasetProfile;

fn bench_detection_methods(c: &mut Criterion) {
    let profile = DatasetProfile::neurips_like();
    let generator = MixedAttackGenerator::new(profile.clone());
    let detectors = DetectorSet::new(&profile);
    // One representative image per source size in the profile.
    let images: Vec<_> = (0..3u64).map(|i| generator.benign(i)).collect();

    let mut group = c.benchmark_group("table7");
    group.sample_size(10);
    for image in &images {
        let label = format!("{}x{}", image.width(), image.height());
        group.bench_with_input(BenchmarkId::new("scaling_mse", &label), image, |b, img| {
            b.iter(|| detectors.scaling(MetricKind::Mse).score(img).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scaling_ssim", &label), image, |b, img| {
            b.iter(|| detectors.scaling(MetricKind::Ssim).score(img).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("filtering_mse", &label), image, |b, img| {
            b.iter(|| detectors.filtering(MetricKind::Mse).score(img).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("filtering_ssim", &label),
            image,
            |b, img| b.iter(|| detectors.filtering(MetricKind::Ssim).score(img).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("steganalysis_csp", &label),
            image,
            |b, img| b.iter(|| detectors.steganalysis().score(img).unwrap()),
        );
    }
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let profile = DatasetProfile::neurips_like();
    let generator = MixedAttackGenerator::new(profile.clone());
    let detectors = DetectorSet::new(&profile);
    let image = generator.benign(0);

    let ensemble = Ensemble::new()
        .with_member(
            detectors.scaling(MetricKind::Mse).clone(),
            Threshold::new(100.0, Direction::AboveIsAttack),
        )
        .with_member(
            detectors.filtering(MetricKind::Ssim).clone(),
            Threshold::new(0.6, Direction::BelowIsAttack),
        )
        .with_member(
            SteganalysisDetector::for_target(profile.target_size),
            SteganalysisDetector::universal_threshold(),
        );

    let mut group = c.benchmark_group("ensemble");
    group.sample_size(10);
    group.bench_function("majority_vote_full_system", |b| {
        b.iter(|| ensemble.is_attack(&image).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_detection_methods, bench_ensemble);
criterion_main!(benches);
