//! Criterion benchmarks for the substrate layers: scalers, rank filters,
//! SSIM, FFT/CSP and the synthetic generator. These are not paper tables —
//! they document where the detection milliseconds go and guard against
//! performance regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decamouflage_datasets::{synthesize, DatasetProfile, SampleGenerator, SynthesisParams};
use decamouflage_imaging::filter::{gaussian_blur, minimum_filter};
use decamouflage_imaging::scale::{resize, ScaleAlgorithm, Scaler};
use decamouflage_imaging::{Image, Size};
use decamouflage_metrics::{mse, ssim, SsimConfig};
use decamouflage_spectral::csp::{count_csp, CspConfig};
use decamouflage_spectral::dft2d::dft2;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_image(n: usize) -> Image {
    let params = SynthesisParams {
        width: n,
        height: n,
        base_cell: (n / 4).max(4),
        ..SynthesisParams::default()
    };
    synthesize(&params, &mut StdRng::seed_from_u64(42))
}

fn bench_scalers(c: &mut Criterion) {
    let img = test_image(448);
    let mut group = c.benchmark_group("scale_448_to_112");
    group.sample_size(10);
    for algo in ScaleAlgorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &algo| {
            b.iter(|| resize(&img, 112, 112, algo).unwrap())
        });
    }
    // Prebuilt scaler amortises coefficient construction.
    let scaler =
        Scaler::new(Size::square(448), Size::square(112), ScaleAlgorithm::Bilinear).unwrap();
    group.bench_function("bilinear_prebuilt", |b| b.iter(|| scaler.apply(&img).unwrap()));
    group.finish();
}

fn bench_filters(c: &mut Criterion) {
    let img = test_image(448);
    let mut group = c.benchmark_group("filter_448");
    group.sample_size(10);
    group.bench_function("minimum_2x2", |b| b.iter(|| minimum_filter(&img, 2).unwrap()));
    group.bench_function("minimum_3x3", |b| b.iter(|| minimum_filter(&img, 3).unwrap()));
    group.bench_function("gaussian_sigma1.5", |b| b.iter(|| gaussian_blur(&img, 1.5).unwrap()));
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let a = test_image(448);
    let b_img = a.map(|v| (v + 3.0).min(255.0));
    let mut group = c.benchmark_group("metrics_448");
    group.sample_size(10);
    group.bench_function("mse", |b| b.iter(|| mse(&a, &b_img).unwrap()));
    group.bench_function("ssim", |b| b.iter(|| ssim(&a, &b_img, &SsimConfig::default()).unwrap()));
    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let pow2 = test_image(512); // radix-2 path
    let arb = test_image(448); // Bluestein path
    let mut group = c.benchmark_group("spectral");
    group.sample_size(10);
    group.bench_function("dft2_512_radix2", |b| b.iter(|| dft2(&pow2)));
    group.bench_function("dft2_448_bluestein", |b| b.iter(|| dft2(&arb)));
    group.bench_function("csp_448_full_pipeline", |b| {
        b.iter(|| count_csp(&arb, &CspConfig::default()))
    });
    group.finish();
}

fn bench_dataset_generation(c: &mut Criterion) {
    let generator = SampleGenerator::new(DatasetProfile::neurips_like(), ScaleAlgorithm::Bilinear);
    let mut group = c.benchmark_group("datasets");
    group.sample_size(10);
    group.bench_function("synthesize_448", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            generator.benign(i % 64)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scalers,
    bench_filters,
    bench_metrics,
    bench_spectral,
    bench_dataset_generation
);
criterion_main!(benches);
