//! Centered spectrum point (CSP) counting — the paper's steganalysis metric.
//!
//! Pipeline (paper §3.3 and §4.2): image → 2-D DFT → `fftshift` →
//! `log(1 + |F|)` normalised to `[0, 1]` → ideal low-pass mask of radius
//! `D_T` → brightness binarisation → connected-component (contour) count.
//! Benign natural images yield a single central blob; image-scaling attack
//! images add periodic side peaks and yield two or more.

use crate::components::{label_components, Component, Connectivity};
use crate::dft2d::{centered_spectrum, dft2_planned};
use crate::spectrum::{binarize, low_pass_mask};
use decamouflage_imaging::{Channels, Image};

/// Tuning parameters of the CSP counter.
///
/// The defaults are the values used throughout the reproduction; they were
/// chosen on the *training* dataset profile and — like the paper's fixed
/// `CSP_T = 2` — transfer unchanged to other datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct CspConfig {
    /// Brightness threshold in the normalised `[0, 1]` log-magnitude
    /// spectrum at and above which a sample counts as "bright".
    pub binarize_threshold: f64,
    /// Low-pass radius `D_T` expressed as a fraction of half of the smaller
    /// image dimension, so the mask scales with image size.
    pub low_pass_radius_frac: f64,
    /// Blobs smaller than this many pixels are ignored as specks.
    pub min_area: usize,
    /// Pixel connectivity for blob labelling.
    pub connectivity: Connectivity,
    /// Blobs whose centroid lies within this fraction of the half-minimum
    /// dimension from the spectrum centre are satellites of the central
    /// (DC) point and merge into it. Attack side peaks sit at
    /// `N / scale_factor` pixels from the centre — far outside this zone.
    pub center_merge_radius_frac: f64,
    /// Absolute override (in pixels) for the central merge radius. When the
    /// CNN input size is known, attack peaks always appear at least
    /// `min(target dims)` pixels from the centre, so a fixed pixel radius
    /// below that is the sharper choice
    /// (see `decamouflage_core::SteganalysisDetector::for_target`).
    pub center_merge_radius_px: Option<f64>,
}

impl Default for CspConfig {
    fn default() -> Self {
        Self {
            binarize_threshold: 0.72,
            low_pass_radius_frac: 0.9,
            min_area: 1,
            connectivity: Connectivity::Eight,
            center_merge_radius_frac: 0.2,
            center_merge_radius_px: None,
        }
    }
}

impl CspConfig {
    /// Absolute low-pass radius in pixels for an image of the given size.
    pub fn radius_for(&self, width: usize, height: usize) -> f64 {
        0.5 * width.min(height) as f64 * self.low_pass_radius_frac
    }
}

/// Result of a CSP analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CspReport {
    /// Number of centered spectrum points: one for the merged central (DC)
    /// blob cluster plus one per outlying blob.
    pub count: usize,
    /// The raw surviving blobs (before central merging), in scan order.
    pub components: Vec<Component>,
}

impl CspReport {
    /// Distance from each blob centroid to the spectrum centre, sorted
    /// ascending. The first entry is (for benign images) the DC blob.
    pub fn centroid_distances(&self, width: usize, height: usize) -> Vec<f64> {
        let cx = (width as f64 - 1.0) / 2.0;
        let cy = (height as f64 - 1.0) / 2.0;
        let mut d: Vec<f64> = self.components.iter().map(|c| c.distance_to(cx, cy)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
        d
    }
}

/// Intermediate artefacts of the CSP pipeline, for visualisation and
/// debugging (mirrors the panels of the paper's Figure on contour
/// detection).
#[derive(Debug, Clone, PartialEq)]
pub struct CspArtifacts {
    /// Normalised centred log-magnitude spectrum.
    pub centered: Image,
    /// Spectrum after the ideal low-pass mask.
    pub masked: Image,
    /// Binary spectrum fed to the component labeller.
    pub binary: Image,
    /// Final report.
    pub report: CspReport,
}

/// Labels the binary spectrum, drops specks, merges central satellites and
/// produces the final point count. Shared tail of [`analyze_csp`] and
/// [`count_csp_planned`].
fn report_from_binary(binary: &Image, config: &CspConfig) -> CspReport {
    let components: Vec<Component> = label_components(binary, config.connectivity)
        .into_iter()
        .filter(|c| c.area >= config.min_area)
        .collect();

    // Blobs inside the central merge zone are satellites of the DC point:
    // they count as one centered spectrum point together.
    let cx = (binary.width() as f64 - 1.0) / 2.0;
    let cy = (binary.height() as f64 - 1.0) / 2.0;
    let merge_radius = config.center_merge_radius_px.unwrap_or_else(|| {
        0.5 * binary.width().min(binary.height()) as f64 * config.center_merge_radius_frac
    });
    let central = components.iter().filter(|c| c.distance_to(cx, cy) <= merge_radius).count();
    let outlying = components.len() - central;
    let count = outlying + usize::from(central > 0);

    CspReport { count, components }
}

/// Runs the full CSP pipeline, returning all intermediate artefacts.
pub fn analyze_csp(img: &Image, config: &CspConfig) -> CspArtifacts {
    let centered = centered_spectrum(img);
    let radius = config.radius_for(centered.width(), centered.height());
    let masked = low_pass_mask(&centered, radius);
    let binary = binarize(&masked, config.binarize_threshold);
    let report = report_from_binary(&binary, config);
    CspArtifacts { centered, masked, binary, report }
}

/// Counts the centered spectrum points of an image (fast path without
/// keeping intermediate images alive).
pub fn count_csp(img: &Image, config: &CspConfig) -> CspReport {
    analyze_csp(img, config).report
}

/// [`count_csp`] on the planned DFT path, with the `fftshift`, log-magnitude
/// normalisation, low-pass mask and binarisation fused into one pass over
/// the frequency grid.
///
/// Every float operation matches the staged pipeline — the same
/// `ln(1 + |F|)` values, the same global maximum, the same
/// `value * scale >= threshold` predicate and the same centre-distance test
/// — so the resulting binary image, components and count are **bit-identical**
/// to [`count_csp`] (asserted by unit and property tests). Only the three
/// intermediate spectrum images and the shifted coefficient copy are gone.
pub fn count_csp_planned(img: &Image, config: &CspConfig) -> CspReport {
    count_csp_in_spectrum(&dft2_planned(img), config)
}

/// The fused CSP tail of [`count_csp_planned`] on an already-computed,
/// *unshifted* DFT. Lets an engine that needs the spectrum for several
/// methods (CSP counting, radial peak excess) run the transform once and
/// feed the same coefficients to each consumer.
pub fn count_csp_in_spectrum(spec: &crate::dft2d::Spectrum2D, config: &CspConfig) -> CspReport {
    count_csp_in_spectrum_with_mags(spec, &spec.log_magnitudes(), config)
}

/// [`count_csp_in_spectrum`] given the precomputed
/// [`crate::dft2d::Spectrum2D::log_magnitudes`] buffer of the spectrum —
/// the log of every coefficient is the expensive half of the fused pass,
/// and an engine also scoring peak excess shares one buffer between both.
///
/// # Panics
///
/// Panics if `mags` does not have one entry per coefficient.
pub fn count_csp_in_spectrum_with_mags(
    spec: &crate::dft2d::Spectrum2D,
    mags: &[f64],
    config: &CspConfig,
) -> CspReport {
    let (w, h) = (spec.width(), spec.height());
    assert_eq!(mags.len(), w * h, "log-magnitude buffer shape mismatch");
    let mut max = f64::MIN;
    for &m in mags {
        max = max.max(m);
    }
    let scale = if max > 0.0 { 1.0 / max } else { 0.0 };

    let radius = config.radius_for(w, h);
    let r2 = radius * radius;
    let cx = (w as f64 - 1.0) / 2.0;
    let cy = (h as f64 - 1.0) / 2.0;
    let (half_w, half_h) = (w / 2, h / 2);
    let mut binary = Image::zeros(w, h, Channels::Gray);
    let out = binary.plane_mut(0);
    // Inverse fftshift: centred position (x, y) reads the unshifted
    // coefficient at ((x - w/2) mod w, (y - h/2) mod h). Per row the modulo
    // splits into exactly two contiguous runs of the source row, so the
    // inner loops are stride-1 zips with no index arithmetic; the float
    // operations per pixel are unchanged (bit-identical binarisation).
    fn fuse_row(
        out: &mut [f64],
        mags: &[f64],
        dx2: &[f64],
        dy2: f64,
        r2: f64,
        scale: f64,
        threshold: f64,
    ) {
        for ((o, &m), &d2) in out.iter_mut().zip(mags).zip(dx2) {
            let masked = if d2 + dy2 > r2 { 0.0 } else { m * scale };
            *o = if masked >= threshold { 1.0 } else { 0.0 };
        }
    }
    // dx² depends only on the column, so it is hoisted into a per-width
    // table (same `(x as f64 - cx)²` operations, just computed once).
    let dx2: Vec<f64> = (0..w)
        .map(|x| {
            let dx = x as f64 - cx;
            dx * dx
        })
        .collect();
    let split = w - half_w;
    for y in 0..h {
        let dy = y as f64 - cy;
        let dy2 = dy * dy;
        let sv = (y + h - half_h) % h;
        let mags_row = &mags[sv * w..(sv + 1) * w];
        let (out_lo, out_hi) = out[y * w..(y + 1) * w].split_at_mut(half_w);
        fuse_row(
            out_lo,
            &mags_row[split..],
            &dx2[..half_w],
            dy2,
            r2,
            scale,
            config.binarize_threshold,
        );
        fuse_row(
            out_hi,
            &mags_row[..split],
            &dx2[half_w..],
            dy2,
            r2,
            scale,
            config.binarize_threshold,
        );
    }
    report_from_binary(&binary, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_benign(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            120.0
                + 60.0 * ((x as f64) * 0.07).sin()
                + 45.0 * ((y as f64) * 0.05).cos()
                + 20.0 * ((x + y) as f64 * 0.03).sin()
        })
    }

    /// A benign image with a strong period-`p` impulse comb added — the
    /// spectral signature an image-scaling attack leaves behind.
    fn combed(n: usize, p: usize) -> Image {
        let base = smooth_benign(n);
        Image::from_fn_gray(n, n, |x, y| {
            let v = base.get(x, y, 0);
            if x % p == 0 && y % p == 0 {
                (v + 200.0).min(255.0)
            } else {
                v
            }
        })
    }

    #[test]
    fn benign_image_has_single_csp() {
        let report = count_csp(&smooth_benign(64), &CspConfig::default());
        assert_eq!(report.count, 1, "components: {:?}", report.components);
    }

    #[test]
    fn flat_image_has_single_csp() {
        let img = Image::filled(32, 32, decamouflage_imaging::Channels::Gray, 100.0);
        let report = count_csp(&img, &CspConfig::default());
        assert_eq!(report.count, 1);
    }

    #[test]
    fn periodic_comb_produces_multiple_csps() {
        let report = count_csp(&combed(64, 4), &CspConfig::default());
        assert!(report.count >= 2, "expected side peaks, got {}", report.count);
    }

    #[test]
    fn planned_csp_is_bit_identical_to_staged_pipeline() {
        let images = [
            smooth_benign(64),
            combed(64, 4),
            combed(48, 3),
            smooth_benign(33), // odd size: exercises the asymmetric shift
            Image::filled(32, 32, decamouflage_imaging::Channels::Gray, 100.0),
        ];
        let mut target_like = CspConfig::default();
        target_like.binarize_threshold = 0.66;
        target_like.center_merge_radius_px = Some(9.6);
        for config in [CspConfig::default(), target_like] {
            for img in &images {
                let staged = count_csp(img, &config);
                let fused = count_csp_planned(img, &config);
                assert_eq!(staged, fused, "{}x{}", img.width(), img.height());
            }
        }
    }

    #[test]
    fn spectrum_entry_point_matches_planned_wrapper() {
        let config = CspConfig::default();
        for img in [smooth_benign(48), combed(48, 4)] {
            let spec = dft2_planned(&img);
            assert_eq!(count_csp_in_spectrum(&spec, &config), count_csp_planned(&img, &config));
        }
    }

    #[test]
    fn benign_central_blob_sits_at_center() {
        let img = smooth_benign(64);
        let report = count_csp(&img, &CspConfig::default());
        let d = report.centroid_distances(64, 64);
        assert!(d[0] < 4.0, "central blob too far from center: {}", d[0]);
    }

    #[test]
    fn comb_side_peaks_are_off_center() {
        let report = count_csp(&combed(64, 4), &CspConfig::default());
        let d = report.centroid_distances(64, 64);
        assert!(d.last().unwrap() > &8.0, "distances: {d:?}");
    }

    #[test]
    fn artifacts_expose_pipeline_stages() {
        let art = analyze_csp(&smooth_benign(32), &CspConfig::default());
        assert_eq!(art.centered.size().width, 32);
        assert_eq!(art.masked.size().width, 32);
        assert_eq!(art.binary.size().width, 32);
        assert_eq!(art.report.count, 1);
        // Binary image is strictly 0/1.
        for &v in art.binary.plane(0) {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn min_area_suppresses_specks() {
        let mut config = CspConfig::default();
        config.min_area = 10_000; // absurd floor: nothing survives
        let report = count_csp(&smooth_benign(32), &config);
        assert_eq!(report.count, 0);
    }

    #[test]
    fn radius_scales_with_image_size() {
        let config = CspConfig::default();
        assert!(config.radius_for(100, 100) > config.radius_for(50, 50));
        assert_eq!(config.radius_for(64, 32), config.radius_for(32, 64));
    }

    #[test]
    fn tight_low_pass_hides_side_peaks() {
        // With a tiny D_T the side peaks fall outside the mask: the comb
        // image degenerates to one central blob. This documents why D_T
        // must be generous.
        let mut config = CspConfig::default();
        config.low_pass_radius_frac = 0.1;
        let report = count_csp(&combed(64, 4), &config);
        assert_eq!(report.count, 1);
    }

    #[test]
    fn default_config_values_are_stable() {
        let c = CspConfig::default();
        assert_eq!(c.binarize_threshold, 0.72);
        assert_eq!(c.low_pass_radius_frac, 0.9);
        assert_eq!(c.min_area, 1);
        assert_eq!(c.connectivity, Connectivity::Eight);
        assert_eq!(c.center_merge_radius_frac, 0.2);
        assert_eq!(c.center_merge_radius_px, None);
    }

    #[test]
    fn pixel_merge_radius_overrides_fraction() {
        // A huge pixel radius swallows the comb's side peaks into the
        // central point.
        let mut config = CspConfig::default();
        config.center_merge_radius_px = Some(1000.0);
        let report = count_csp(&combed(64, 4), &config);
        assert_eq!(report.count, 1);
    }
}
