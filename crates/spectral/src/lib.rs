//! Frequency-domain substrate for the Decamouflage reproduction.
//!
//! Implements, from scratch, everything the paper's *steganalysis detection*
//! method needs:
//!
//! * [`Complex64`] — minimal complex arithmetic,
//! * [`fft`] — iterative radix-2 Cooley–Tukey, [`mixed_radix`] Cooley–Tukey
//!   for smooth composite lengths, and Bluestein's chirp-z transform for the
//!   rest, all behind per-length plan caches,
//! * [`dft2d`] — 2-D forward/inverse transforms (two real rows packed per
//!   complex FFT), `fftshift` and the log-magnitude *centered spectrum*,
//! * [`spectrum`] — low-pass masking and binarisation of centred spectra,
//! * [`components`] — connected-component labelling (the contour counting of
//!   the paper),
//! * [`csp`] — the end-to-end *centered spectrum points* counter,
//! * [`window`] / [`radial`] — apodisation and radially averaged profiles
//!   for the sensitivity ablations and the peak-excess extension detector.
//!
//! # Example
//!
//! ```
//! use decamouflage_imaging::Image;
//! use decamouflage_spectral::csp::{count_csp, CspConfig};
//!
//! // A smooth benign image concentrates spectral energy at the centre:
//! // exactly one centered spectrum point.
//! let img = Image::from_fn_gray(64, 64, |x, y| {
//!     128.0 + 80.0 * ((x as f64) * 0.05).sin() * ((y as f64) * 0.05).cos()
//! });
//! let report = count_csp(&img, &CspConfig::default());
//! assert_eq!(report.count, 1);
//! ```

// Without the `simd` feature the crate is entirely safe code. With it, the
// explicit AVX butterfly path needs `core::arch` intrinsics; `deny` (not
// `forbid`) lets exactly those audited blocks opt in via `#[allow]`.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod complex;

pub mod components;
pub mod csp;
pub mod dft2d;
pub mod fft;
pub mod mixed_radix;
pub mod radial;
pub mod spectrum;
pub mod window;

pub use complex::Complex64;
