//! Connected-component labelling of binary images.
//!
//! This plays the role of OpenCV's contour detection in the paper: after
//! binarising the low-passed centred spectrum, each 8-connected blob of set
//! pixels is one "centered spectrum point".

use decamouflage_imaging::Image;

/// One labelled blob of set pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Sequential label starting at 0, in discovery (scan) order.
    pub label: usize,
    /// Number of pixels in the blob.
    pub area: usize,
    /// Pixel-coordinate centroid `(x, y)` of the blob.
    pub centroid: (f64, f64),
    /// Tight bounding box `(min_x, min_y, max_x, max_y)`, inclusive.
    pub bbox: (usize, usize, usize, usize),
}

impl Component {
    /// Euclidean distance from the blob centroid to an arbitrary point.
    pub fn distance_to(&self, x: f64, y: f64) -> f64 {
        let dx = self.centroid.0 - x;
        let dy = self.centroid.1 - y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Pixel connectivity used when labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Connectivity {
    /// 4-neighbourhood (edges only).
    Four,
    /// 8-neighbourhood (edges + corners). The default, matching OpenCV
    /// contour behaviour for blob counting.
    #[default]
    Eight,
}

impl Connectivity {
    fn offsets(&self) -> &'static [(isize, isize)] {
        match self {
            Connectivity::Four => &[(1, 0), (-1, 0), (0, 1), (0, -1)],
            Connectivity::Eight => {
                &[(1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (1, -1), (-1, 1), (-1, -1)]
            }
        }
    }
}

/// Labels all connected components of non-zero pixels in `binary` and
/// returns them in scan order. RGB inputs are reduced to their first
/// channel being non-zero.
///
/// # Example
///
/// ```
/// use decamouflage_imaging::{Channels, Image};
/// use decamouflage_spectral::components::{label_components, Connectivity};
///
/// let mut img = Image::zeros(5, 5, Channels::Gray);
/// img.set(0, 0, 0, 1.0);
/// img.set(4, 4, 0, 1.0);
/// let blobs = label_components(&img, Connectivity::Eight);
/// assert_eq!(blobs.len(), 2);
/// assert_eq!(blobs[0].area, 1);
/// ```
pub fn label_components(binary: &Image, connectivity: Connectivity) -> Vec<Component> {
    let (w, h) = (binary.width(), binary.height());
    let mut visited = vec![false; w * h];
    let mut components = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();

    for sy in 0..h {
        for sx in 0..w {
            if visited[sy * w + sx] || binary.get(sx, sy, 0) == 0.0 {
                continue;
            }
            // Flood fill a new component.
            let label = components.len();
            let mut area = 0usize;
            let mut sum = (0.0f64, 0.0f64);
            let mut bbox = (sx, sy, sx, sy);
            visited[sy * w + sx] = true;
            stack.push((sx, sy));
            while let Some((x, y)) = stack.pop() {
                area += 1;
                sum.0 += x as f64;
                sum.1 += y as f64;
                bbox.0 = bbox.0.min(x);
                bbox.1 = bbox.1.min(y);
                bbox.2 = bbox.2.max(x);
                bbox.3 = bbox.3.max(y);
                for &(dx, dy) in connectivity.offsets() {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    if nx < 0 || ny < 0 || nx >= w as isize || ny >= h as isize {
                        continue;
                    }
                    let (nx, ny) = (nx as usize, ny as usize);
                    if !visited[ny * w + nx] && binary.get(nx, ny, 0) != 0.0 {
                        visited[ny * w + nx] = true;
                        stack.push((nx, ny));
                    }
                }
            }
            components.push(Component {
                label,
                area,
                centroid: (sum.0 / area as f64, sum.1 / area as f64),
                bbox,
            });
        }
    }
    components
}

/// Counts components with `area >= min_area` — the blob counting used by
/// the CSP metric, with a speck floor to suppress single-pixel noise.
pub fn count_components(binary: &Image, connectivity: Connectivity, min_area: usize) -> usize {
    label_components(binary, connectivity).iter().filter(|c| c.area >= min_area).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::Channels;

    fn image_from_rows(rows: &[&str]) -> Image {
        let h = rows.len();
        let w = rows[0].len();
        Image::from_fn_gray(w, h, |x, y| if rows[y].as_bytes()[x] == b'#' { 1.0 } else { 0.0 })
    }

    #[test]
    fn empty_image_has_no_components() {
        let img = Image::zeros(4, 4, Channels::Gray);
        assert!(label_components(&img, Connectivity::Eight).is_empty());
    }

    #[test]
    fn full_image_is_one_component() {
        let img = Image::filled(4, 3, Channels::Gray, 1.0);
        let comps = label_components(&img, Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 12);
        assert_eq!(comps[0].bbox, (0, 0, 3, 2));
        assert_eq!(comps[0].centroid, (1.5, 1.0));
    }

    #[test]
    fn diagonal_blobs_merge_under_eight_but_not_four() {
        let img = image_from_rows(&["#..", ".#.", "..#"]);
        assert_eq!(label_components(&img, Connectivity::Eight).len(), 1);
        assert_eq!(label_components(&img, Connectivity::Four).len(), 3);
    }

    #[test]
    fn separate_blobs_are_counted() {
        let img = image_from_rows(&["##..#", "##...", ".....", "#...#"]);
        let comps = label_components(&img, Connectivity::Eight);
        assert_eq!(comps.len(), 4);
        let areas: Vec<usize> = comps.iter().map(|c| c.area).collect();
        assert!(areas.contains(&4));
    }

    #[test]
    fn min_area_filters_specks() {
        let img = image_from_rows(&["##..#", "##..."]);
        assert_eq!(count_components(&img, Connectivity::Eight, 1), 2);
        assert_eq!(count_components(&img, Connectivity::Eight, 2), 1);
        assert_eq!(count_components(&img, Connectivity::Eight, 5), 0);
    }

    #[test]
    fn centroid_of_symmetric_blob_is_its_center() {
        let img = image_from_rows(&[".....", ".###.", ".###.", ".###.", "....."]);
        let comps = label_components(&img, Connectivity::Eight);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].centroid, (2.0, 2.0));
        assert_eq!(comps[0].bbox, (1, 1, 3, 3));
    }

    #[test]
    fn labels_are_sequential_in_scan_order() {
        let img = image_from_rows(&["#.#", "...", "#.."]);
        let comps = label_components(&img, Connectivity::Eight);
        assert_eq!(comps.len(), 3);
        for (i, c) in comps.iter().enumerate() {
            assert_eq!(c.label, i);
        }
        // Scan order: (0,0) first, then (2,0), then (0,2).
        assert_eq!(comps[0].centroid, (0.0, 0.0));
        assert_eq!(comps[1].centroid, (2.0, 0.0));
        assert_eq!(comps[2].centroid, (0.0, 2.0));
    }

    #[test]
    fn distance_to_computes_euclidean() {
        let img = image_from_rows(&["#"]);
        let comps = label_components(&img, Connectivity::Eight);
        assert!((comps[0].distance_to(3.0, 4.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn snake_shape_is_single_component() {
        let img = image_from_rows(&["#####", "....#", "#####", "#....", "#####"]);
        assert_eq!(label_components(&img, Connectivity::Four).len(), 1);
    }
}
