//! 2-D discrete Fourier transforms and the centered log-magnitude spectrum.

use crate::fft::{fft, ifft};
use crate::Complex64;
use decamouflage_imaging::{Channels, Image};

/// A complex-valued 2-D frequency grid produced by [`dft2`].
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum2D {
    width: usize,
    height: usize,
    data: Vec<Complex64>,
}

impl Spectrum2D {
    /// Grid width (same as the source image width).
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Coefficient at frequency `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, u: usize, v: usize) -> Complex64 {
        assert!(u < self.width && v < self.height);
        self.data[v * self.width + u]
    }

    /// Borrows the raw coefficient buffer (row-major).
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Applies `fftshift`: swaps quadrants so the DC component moves to the
    /// grid centre. Returns a new spectrum.
    ///
    /// The per-pixel index arithmetic `nu = (u + half_w) % w` partitions
    /// each row into exactly two contiguous runs, so every output row is
    /// assembled from two flat `copy_from_slice` segments.
    pub fn shifted(&self) -> Spectrum2D {
        let (w, h) = (self.width, self.height);
        let mut out = vec![Complex64::ZERO; w * h];
        let half_w = w / 2;
        let half_h = h / 2;
        let split = w - half_w;
        for (v, src_row) in self.data.chunks_exact(w).enumerate() {
            let nv = (v + half_h) % h;
            let out_row = &mut out[nv * w..(nv + 1) * w];
            // u in [0, split) lands at u + half_w; u in [split, w) wraps.
            out_row[half_w..].copy_from_slice(&src_row[..split]);
            out_row[..half_w].copy_from_slice(&src_row[split..]);
        }
        Spectrum2D { width: w, height: h, data: out }
    }

    /// Log-magnitude image `log(1 + |F|)` normalised to `[0, 1]`.
    ///
    /// This is the paper's "centered spectrum" visualisation when called on
    /// a [`Spectrum2D::shifted`] spectrum.
    pub fn log_magnitude(&self) -> Image {
        let mut mags: Vec<f64> = self.data.iter().map(|c| (1.0 + c.norm()).ln()).collect();
        let scale = normalisation_scale(&mags);
        for m in mags.iter_mut() {
            *m *= scale;
        }
        Image::from_gray_plane(self.width, self.height, mags)
            .expect("buffer sized w*h by construction")
    }

    /// The raw log-magnitudes `log(1 + |F|)` of every coefficient, flat on
    /// the *unshifted* grid.
    ///
    /// This is the shared front half of [`Spectrum2D::centered_log_magnitude`]
    /// and the fused CSP pass ([`crate::csp::count_csp_in_spectrum`]): an
    /// engine scoring both methods computes these transcendentals once and
    /// hands the buffer to each consumer.
    pub fn log_magnitudes(&self) -> Vec<f64> {
        self.data.iter().map(|c| (1.0 + c.norm()).ln()).collect()
    }

    /// Fused `shifted().log_magnitude()` without materialising the shifted
    /// complex grid.
    ///
    /// Magnitudes are computed flat on the *unshifted* grid, the maximum is
    /// folded there (`f64::max` never rounds, so the fold is exact under
    /// any traversal order), and the normalised values are placed through
    /// the same two-contiguous-segment row mapping as [`Spectrum2D::shifted`].
    /// Output is bit-identical to the staged pipeline; it just skips one
    /// full-grid `Complex64` clone and the per-pixel scatter.
    pub fn centered_log_magnitude(&self) -> Image {
        self.centered_log_magnitude_from(&self.log_magnitudes())
    }

    /// [`Spectrum2D::centered_log_magnitude`] given the precomputed
    /// [`Spectrum2D::log_magnitudes`] buffer of this spectrum.
    ///
    /// # Panics
    ///
    /// Panics if `mags` does not have one entry per coefficient.
    pub fn centered_log_magnitude_from(&self, mags: &[f64]) -> Image {
        let (w, h) = (self.width, self.height);
        assert_eq!(mags.len(), w * h, "log-magnitude buffer shape mismatch");
        let scale = normalisation_scale(mags);
        let half_w = w / 2;
        let half_h = h / 2;
        let split = w - half_w;
        let mut out = vec![0.0f64; w * h];
        for (y, out_row) in out.chunks_exact_mut(w).enumerate() {
            // Inverse of `nv = (v + half_h) % h`: this output row reads
            // source row `sv`.
            let sv = (y + h - half_h) % h;
            let mags_row = &mags[sv * w..(sv + 1) * w];
            let (out_lo, out_hi) = out_row.split_at_mut(half_w);
            for (o, &m) in out_lo.iter_mut().zip(&mags_row[split..]) {
                *o = m * scale;
            }
            for (o, &m) in out_hi.iter_mut().zip(&mags_row[..split]) {
                *o = m * scale;
            }
        }
        Image::from_gray_plane(w, h, out).expect("buffer sized w*h by construction")
    }
}

/// `1/max` normalisation factor of the historical `log_magnitude` loop:
/// a plain `f64::max` fold seeded with `f64::MIN`, zero when nothing is
/// positive. Order-independent because `max` selects, never rounds.
fn normalisation_scale(mags: &[f64]) -> f64 {
    let mut max = f64::MIN;
    for &m in mags {
        max = max.max(m);
    }
    if max > 0.0 {
        1.0 / max
    } else {
        0.0
    }
}

/// Forward 2-D DFT of a grayscale image (RGB inputs are converted to
/// luminance first). Row transforms run first, then column transforms.
///
/// Because the input rows are real-valued, two rows are packed into one
/// complex transform (`z = a + i b`) and separated afterwards using the
/// conjugate symmetry `A[k] = (Z[k] + conj(Z[N-k]))/2`,
/// `B[k] = (Z[k] - conj(Z[N-k]))/(2i)` — halving the row-pass cost.
pub fn dft2(img: &Image) -> Spectrum2D {
    // Borrow the luma plane: for Gray inputs this is the stored plane
    // itself — no copy between the image and the transform.
    let luma = img.luma();
    let (w, h) = (img.width(), img.height());
    let mut grid: Vec<Complex64> = luma.iter().map(|&v| Complex64::from_real(v)).collect();

    // Rows: two real rows per complex FFT.
    let mut pair = 0;
    while pair + 1 < h {
        let (ya, yb) = (pair, pair + 1);
        let mut packed: Vec<Complex64> =
            (0..w).map(|x| Complex64::new(grid[ya * w + x].re, grid[yb * w + x].re)).collect();
        fft(&mut packed);
        for k in 0..w {
            let z_k = packed[k];
            let z_nk = packed[(w - k) % w].conj();
            let a = (z_k + z_nk) * 0.5;
            let b = Complex64::new(0.5 * (z_k.im - z_nk.im), 0.5 * (z_nk.re - z_k.re));
            grid[ya * w + k] = a;
            grid[yb * w + k] = b;
        }
        pair += 2;
    }
    if pair < h {
        // Odd row count: transform the last row alone.
        let y = pair;
        let mut row: Vec<Complex64> = grid[y * w..(y + 1) * w].to_vec();
        fft(&mut row);
        grid[y * w..(y + 1) * w].copy_from_slice(&row);
    }
    // Columns.
    let mut col = vec![Complex64::ZERO; h];
    for x in 0..w {
        for y in 0..h {
            col[y] = grid[y * w + x];
        }
        let mut col_vec = std::mem::take(&mut col);
        fft(&mut col_vec);
        for (y, &v) in col_vec.iter().enumerate() {
            grid[y * w + x] = v;
        }
        col = col_vec;
    }
    Spectrum2D { width: w, height: h, data: grid }
}

thread_local! {
    /// Reusable row/column buffers for [`dft2_planned`]. The FFT *plans*
    /// are already cached per-length inside [`crate::fft`]; this adds the
    /// per-call packing buffers on top so a corpus run stops allocating
    /// them once per row pair.
    static DFT2_SCRATCH: std::cell::RefCell<Dft2Scratch> =
        std::cell::RefCell::new(Dft2Scratch::default());
}

#[derive(Debug, Default)]
struct Dft2Scratch {
    packed: Vec<Complex64>,
    col: Vec<Complex64>,
}

/// [`dft2`] with thread-local scratch buffers.
///
/// Performs exactly the same packed-row and column transforms as [`dft2`]
/// (bit-identical output — asserted by the property tests); the difference
/// is only that the row-packing and column buffers persist across calls
/// instead of being reallocated per row pair.
pub fn dft2_planned(img: &Image) -> Spectrum2D {
    DFT2_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let luma = img.luma();
        let (w, h) = (img.width(), img.height());
        let mut grid: Vec<Complex64> = luma.iter().map(|&v| Complex64::from_real(v)).collect();

        // Rows: two real rows per complex FFT, as in `dft2`.
        let packed = &mut scratch.packed;
        let mut pair = 0;
        while pair + 1 < h {
            let (ya, yb) = (pair, pair + 1);
            packed.clear();
            packed.extend((0..w).map(|x| Complex64::new(grid[ya * w + x].re, grid[yb * w + x].re)));
            fft(packed);
            for k in 0..w {
                let z_k = packed[k];
                let z_nk = packed[(w - k) % w].conj();
                let a = (z_k + z_nk) * 0.5;
                let b = Complex64::new(0.5 * (z_k.im - z_nk.im), 0.5 * (z_nk.re - z_k.re));
                grid[ya * w + k] = a;
                grid[yb * w + k] = b;
            }
            pair += 2;
        }
        if pair < h {
            let y = pair;
            packed.clear();
            packed.extend_from_slice(&grid[y * w..(y + 1) * w]);
            fft(packed);
            grid[y * w..(y + 1) * w].copy_from_slice(packed);
        }
        // Columns.
        let col = &mut scratch.col;
        for x in 0..w {
            col.clear();
            col.extend((0..h).map(|y| grid[y * w + x]));
            fft(col);
            for (y, &v) in col.iter().enumerate() {
                grid[y * w + x] = v;
            }
        }
        Spectrum2D { width: w, height: h, data: grid }
    })
}

/// Inverse 2-D DFT back to a real image (the imaginary residue is dropped).
pub fn idft2(spec: &Spectrum2D) -> Image {
    let (w, h) = (spec.width, spec.height);
    let mut grid = spec.data.clone();
    // Columns.
    let mut col = vec![Complex64::ZERO; h];
    for x in 0..w {
        for y in 0..h {
            col[y] = grid[y * w + x];
        }
        let mut col_vec = std::mem::take(&mut col);
        ifft(&mut col_vec);
        for (y, &v) in col_vec.iter().enumerate() {
            grid[y * w + x] = v;
        }
        col = col_vec;
    }
    // Rows.
    let mut row = vec![Complex64::ZERO; w];
    for y in 0..h {
        row.copy_from_slice(&grid[y * w..(y + 1) * w]);
        let mut row_vec = std::mem::take(&mut row);
        ifft(&mut row_vec);
        grid[y * w..(y + 1) * w].copy_from_slice(&row_vec);
        row = row_vec;
    }
    let mut img = Image::zeros(w, h, Channels::Gray);
    for y in 0..h {
        for x in 0..w {
            img.set(x, y, 0, grid[y * w + x].re);
        }
    }
    img
}

/// The paper's *centered spectrum*: `fftshift` of the 2-D DFT followed by
/// `log(1 + |F|)` normalised to `[0, 1]` (Equation 4 of the paper).
pub fn centered_spectrum(img: &Image) -> Image {
    dft2(img).centered_log_magnitude()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_coefficient_is_sample_sum() {
        let img = Image::from_fn_gray(4, 3, |x, y| (x + y) as f64);
        let spec = dft2(&img);
        let sum: f64 = img.plane(0).iter().sum();
        assert!((spec.get(0, 0).re - sum).abs() < 1e-9);
        assert!(spec.get(0, 0).im.abs() < 1e-9);
    }

    #[test]
    fn packed_row_pass_matches_unpacked_reference() {
        // Reference: transform rows one at a time, then columns.
        for (w, h) in [(8usize, 6usize), (7, 5), (9, 9)] {
            let img = Image::from_fn_gray(w, h, |x, y| ((x * 7 + y * 13) % 53) as f64);
            let fast = dft2(&img);
            let mut grid: Vec<crate::Complex64> =
                img.plane(0).iter().map(|&v| crate::Complex64::from_real(v)).collect();
            for y in 0..h {
                let mut row: Vec<crate::Complex64> = grid[y * w..(y + 1) * w].to_vec();
                crate::fft::fft(&mut row);
                grid[y * w..(y + 1) * w].copy_from_slice(&row);
            }
            let mut col = vec![crate::Complex64::ZERO; h];
            for x in 0..w {
                for y in 0..h {
                    col[y] = grid[y * w + x];
                }
                let mut c = col.clone();
                crate::fft::fft(&mut c);
                for (y, &v) in c.iter().enumerate() {
                    grid[y * w + x] = v;
                }
            }
            for (i, (a, b)) in fast.as_slice().iter().zip(grid.iter()).enumerate() {
                assert!((*a - *b).norm() < 1e-6, "{w}x{h} bin {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn planned_dft2_is_bit_identical_to_dft2() {
        // Covers even/odd row counts and radix-2 / mixed-radix / Bluestein
        // (prime) lengths; repeated calls exercise scratch reuse.
        for (w, h) in [(8usize, 8usize), (7, 5), (12, 9), (17, 17), (16, 6), (1, 4)] {
            let img = Image::from_fn_gray(w, h, |x, y| ((x * 29 + y * 23) % 71) as f64 - 11.0);
            let reference = dft2(&img);
            for _ in 0..2 {
                let planned = dft2_planned(&img);
                assert_eq!(reference.as_slice(), planned.as_slice(), "{w}x{h}");
            }
        }
    }

    #[test]
    fn idft2_inverts_dft2() {
        for (w, h) in [(8usize, 8usize), (7, 5), (16, 9)] {
            let img = Image::from_fn_gray(w, h, |x, y| ((x * 31 + y * 17) % 97) as f64);
            let back = idft2(&dft2(&img));
            assert!(back.approx_eq(&img, 1e-6), "{w}x{h} roundtrip failed");
        }
    }

    #[test]
    fn shift_moves_dc_to_center() {
        let img = Image::filled(8, 8, Channels::Gray, 10.0);
        let spec = dft2(&img).shifted();
        // For a constant image everything but DC is 0; DC lands at (4, 4).
        assert!(spec.get(4, 4).norm() > 1.0);
        assert!(spec.get(0, 0).norm() < 1e-9);
    }

    #[test]
    fn shift_is_involution_for_even_sizes() {
        let img = Image::from_fn_gray(8, 6, |x, y| (x * y) as f64);
        let spec = dft2(&img);
        let twice = spec.shifted().shifted();
        for (a, b) in spec.as_slice().iter().zip(twice.as_slice()) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn log_magnitude_is_normalised() {
        let img = Image::from_fn_gray(16, 16, |x, y| ((x ^ y) * 16) as f64);
        let mag = dft2(&img).shifted().log_magnitude();
        assert!(mag.min_sample() >= 0.0);
        assert!((mag.max_sample() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_centered_log_magnitude_is_bit_identical_to_staged() {
        // Even/odd dimensions exercise both segment splits of the shift.
        for (w, h) in [(8usize, 8usize), (7, 5), (12, 9), (9, 12), (1, 4), (5, 1)] {
            let img = Image::from_fn_gray(w, h, |x, y| ((x * 13 + y * 7) % 31) as f64 - 4.0);
            let spec = dft2(&img);
            let staged = spec.shifted().log_magnitude();
            let fused = spec.centered_log_magnitude();
            assert_eq!(staged, fused, "{w}x{h}");
        }
    }

    #[test]
    fn centered_spectrum_of_smooth_image_peaks_at_center() {
        let img = Image::from_fn_gray(32, 32, |x, y| {
            100.0 + 50.0 * ((x as f64) * 0.1).sin() + 30.0 * ((y as f64) * 0.08).cos()
        });
        let spec = centered_spectrum(&img);
        let (cx, cy) = (16, 16);
        assert!((spec.get(cx, cy, 0) - 1.0).abs() < 1e-9, "peak must be at center");
        // Far corners carry much less energy.
        assert!(spec.get(0, 0, 0) < 0.8);
    }

    #[test]
    fn periodic_pattern_creates_off_center_peaks() {
        // A strong period-4 comb produces energy away from DC — the
        // signature the steganalysis detector looks for.
        let img =
            Image::from_fn_gray(32, 32, |x, y| if x % 4 == 0 && y % 4 == 0 { 255.0 } else { 20.0 });
        let spec = centered_spectrum(&img);
        // Peak at spatial frequency 32/4 = 8 bins from DC: position (24, 16).
        assert!(spec.get(24, 16, 0) > 0.85, "side peak too weak: {}", spec.get(24, 16, 0));
    }

    #[test]
    fn rgb_input_is_converted_to_luma() {
        let rgb = Image::from_fn_rgb(8, 8, |x, y| [(x * y) as f64, 0.0, 0.0]);
        let gray = rgb.to_gray();
        let a = dft2(&rgb);
        let b = dft2(&gray);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((*x - *y).norm() < 1e-9);
        }
    }

    #[test]
    fn spectrum_accessors() {
        let img = Image::zeros(6, 4, Channels::Gray);
        let spec = dft2(&img);
        assert_eq!(spec.width(), 6);
        assert_eq!(spec.height(), 4);
        assert_eq!(spec.as_slice().len(), 24);
    }
}
