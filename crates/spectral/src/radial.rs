//! Radially averaged spectral profiles and peak-to-background statistics.
//!
//! Natural images have a monotonically decaying (`~1/f`) radial spectrum.
//! An image-scaling attack injects energy at discrete frequencies, which
//! shows up as samples far above the radial background at their radius.
//! The [`peak_excess`] statistic quantifies this without any blob counting
//! — an alternative steganalysis score used by the sensitivity ablations
//! and a robustness cross-check for the CSP method.

use decamouflage_imaging::Image;

/// The radially averaged profile of a centred spectrum image.
#[derive(Debug, Clone, PartialEq)]
pub struct RadialProfile {
    /// `mean[r]` is the average spectrum magnitude over all pixels whose
    /// integer distance from the centre is `r`.
    pub mean: Vec<f64>,
    /// `max[r]` is the maximum magnitude at integer radius `r`.
    pub max: Vec<f64>,
    /// Number of pixels contributing to each radius bin.
    pub count: Vec<usize>,
}

impl RadialProfile {
    /// Number of radius bins.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }
}

/// The integer radius of every pixel of one image shape, row-major, plus
/// the bin count. Pure geometry — it depends only on the dimensions, so
/// profiles over a corpus of same-sized spectra reuse one map instead of
/// re-deriving `sqrt(dx² + dy²).round()` per pixel per image.
#[derive(Debug)]
struct RadiusMap {
    /// `radius[y * w + x] = (dx² + dy²).sqrt().round()` — exactly the
    /// per-pixel expression of the historical loop, so the binning is
    /// bit-identical.
    radius: Vec<u32>,
    /// Number of radius bins (`max_r`).
    bins: usize,
}

impl RadiusMap {
    fn new(w: usize, h: usize) -> Self {
        let cx = (w as f64 - 1.0) / 2.0;
        let cy = (h as f64 - 1.0) / 2.0;
        let bins = ((cx * cx + cy * cy).sqrt().ceil() as usize) + 1;
        let mut radius = Vec::with_capacity(w * h);
        for y in 0..h {
            let dy = y as f64 - cy;
            let dy2 = dy * dy;
            for x in 0..w {
                let dx = x as f64 - cx;
                radius.push((dx * dx + dy2).sqrt().round() as u32);
            }
        }
        Self { radius, bins }
    }
}

thread_local! {
    /// Per-shape radius maps (spectra in a corpus share dimensions).
    static RADIUS_MAPS: std::cell::RefCell<
        std::collections::HashMap<(usize, usize), std::rc::Rc<RadiusMap>>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Computes the radial profile of a (centred, grayscale) spectrum image.
/// RGB inputs use the first channel.
///
/// Runs as one flat row-major pass over the raw sample buffer, binning
/// through the cached per-shape `RadiusMap` — no per-sample accessor,
/// bounds assertion, or square root.
pub fn radial_profile(spectrum: &Image) -> RadialProfile {
    let (w, h) = (spectrum.width(), spectrum.height());
    let map = RADIUS_MAPS.with(|cache| {
        cache
            .borrow_mut()
            .entry((w, h))
            .or_insert_with(|| std::rc::Rc::new(RadiusMap::new(w, h)))
            .clone()
    });
    let mut sum = vec![0.0f64; map.bins];
    let mut max = vec![0.0f64; map.bins];
    let mut count = vec![0usize; map.bins];
    // Channel 0 is a contiguous plane for Gray and RGB alike, so one
    // stride-1 pass covers both cases.
    for (&r, &v) in map.radius.iter().zip(spectrum.plane(0)) {
        let r = r as usize;
        sum[r] += v;
        if v > max[r] {
            max[r] = v;
        }
        count[r] += 1;
    }
    let mean =
        sum.iter().zip(&count).map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 }).collect();
    RadialProfile { mean, max, count }
}

/// Peak-excess statistic of a centred **log-magnitude** spectrum: the
/// largest difference `max[r] - mean[r]` over radii in
/// `[min_radius, max_radius]` (a difference of logs is a ratio of linear
/// magnitudes).
///
/// Benign spectra are radially smooth, so the excess stays small; attack
/// peaks tower over their ring's background. Compute this on a *windowed*
/// spectrum ([`crate::window::apply_window`]) so the boundary-leakage
/// cross does not masquerade as a peak. Radii below `min_radius` exclude
/// the DC blob.
pub fn peak_excess(spectrum: &Image, min_radius: usize, max_radius: usize) -> f64 {
    let profile = radial_profile(spectrum);
    let hi = max_radius.min(profile.len().saturating_sub(1));
    let mut worst = 0.0f64;
    for r in min_radius..=hi {
        if profile.count[r] == 0 {
            continue;
        }
        let excess = profile.max[r] - profile.mean[r];
        if excess > worst {
            worst = excess;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft2d::centered_spectrum;
    use decamouflage_imaging::{Channels, Image};

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            120.0 + 60.0 * ((x as f64) * 0.06).sin() + 40.0 * ((y as f64) * 0.045).cos()
        })
    }

    fn combed(n: usize, p: usize) -> Image {
        let base = smooth(n);
        Image::from_fn_gray(n, n, |x, y| {
            let v = base.get(x, y, 0);
            if x % p == 0 && y % p == 0 {
                (v + 200.0).min(255.0)
            } else {
                v
            }
        })
    }

    #[test]
    fn flat_pass_is_bit_identical_to_per_pixel_reference() {
        let gray = smooth(17);
        let rgb = Image::from_fn_rgb(9, 13, |x, y| [((x * 5 + y * 3) % 23) as f64, 99.0, -7.0]);
        for img in [&gray, &rgb] {
            let cx = (img.width() as f64 - 1.0) / 2.0;
            let cy = (img.height() as f64 - 1.0) / 2.0;
            let max_r = ((cx * cx + cy * cy).sqrt().ceil() as usize) + 1;
            let mut sum = vec![0.0f64; max_r];
            let mut max = vec![0.0f64; max_r];
            let mut count = vec![0usize; max_r];
            for y in 0..img.height() {
                for x in 0..img.width() {
                    let dx = x as f64 - cx;
                    let dy = y as f64 - cy;
                    let r = (dx * dx + dy * dy).sqrt().round() as usize;
                    let v = img.get(x, y, 0);
                    sum[r] += v;
                    if v > max[r] {
                        max[r] = v;
                    }
                    count[r] += 1;
                }
            }
            let profile = radial_profile(img);
            assert_eq!(profile.count, count);
            assert_eq!(profile.max, max);
            for (r, (&s, &c)) in sum.iter().zip(&count).enumerate() {
                let mean = if c > 0 { s / c as f64 } else { 0.0 };
                assert!(profile.mean[r].to_bits() == mean.to_bits(), "radius {r}");
            }
        }
    }

    #[test]
    fn profile_covers_all_pixels() {
        let img = Image::filled(8, 6, Channels::Gray, 1.0);
        let profile = radial_profile(&img);
        assert_eq!(profile.count.iter().sum::<usize>(), 48);
        assert!(!profile.is_empty());
    }

    #[test]
    fn constant_spectrum_has_flat_profile() {
        let img = Image::filled(16, 16, Channels::Gray, 0.5);
        let profile = radial_profile(&img);
        for r in 0..profile.len() {
            if profile.count[r] > 0 {
                assert!((profile.mean[r] - 0.5).abs() < 1e-12);
                assert!((profile.max[r] - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn benign_spectrum_decays_radially() {
        let spec = centered_spectrum(&smooth(64));
        let profile = radial_profile(&spec);
        // Mean magnitude near the centre exceeds the outer region.
        let inner: f64 = profile.mean[1..6].iter().sum::<f64>() / 5.0;
        let outer: f64 = profile.mean[24..30].iter().sum::<f64>() / 6.0;
        assert!(inner > outer, "inner {inner} vs outer {outer}");
    }

    fn windowed_spectrum(img: &Image) -> Image {
        centered_spectrum(&crate::window::apply_window(img, crate::window::WindowKind::Hann))
    }

    #[test]
    fn attack_peaks_raise_peak_excess() {
        let benign = peak_excess(&windowed_spectrum(&smooth(64)), 6, 30);
        let attacked = peak_excess(&windowed_spectrum(&combed(64, 4)), 6, 30);
        assert!(attacked > benign + 0.05, "benign {benign:.3}, attacked {attacked:.3}");
    }

    #[test]
    fn excess_is_nonnegative() {
        let spec = windowed_spectrum(&smooth(32));
        assert!(peak_excess(&spec, 2, 12) >= 0.0);
    }

    #[test]
    fn empty_radius_range_yields_zero() {
        let spec = centered_spectrum(&smooth(16));
        assert_eq!(peak_excess(&spec, 500, 600), 0.0);
    }
}
