//! Radially averaged spectral profiles and peak-to-background statistics.
//!
//! Natural images have a monotonically decaying (`~1/f`) radial spectrum.
//! An image-scaling attack injects energy at discrete frequencies, which
//! shows up as samples far above the radial background at their radius.
//! The [`peak_excess`] statistic quantifies this without any blob counting
//! — an alternative steganalysis score used by the sensitivity ablations
//! and a robustness cross-check for the CSP method.

use decamouflage_imaging::Image;

/// The radially averaged profile of a centred spectrum image.
#[derive(Debug, Clone, PartialEq)]
pub struct RadialProfile {
    /// `mean[r]` is the average spectrum magnitude over all pixels whose
    /// integer distance from the centre is `r`.
    pub mean: Vec<f64>,
    /// `max[r]` is the maximum magnitude at integer radius `r`.
    pub max: Vec<f64>,
    /// Number of pixels contributing to each radius bin.
    pub count: Vec<usize>,
}

impl RadialProfile {
    /// Number of radius bins.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }
}

/// Computes the radial profile of a (centred, grayscale) spectrum image.
/// RGB inputs use the first channel.
pub fn radial_profile(spectrum: &Image) -> RadialProfile {
    let cx = (spectrum.width() as f64 - 1.0) / 2.0;
    let cy = (spectrum.height() as f64 - 1.0) / 2.0;
    let max_r = ((cx * cx + cy * cy).sqrt().ceil() as usize) + 1;
    let mut sum = vec![0.0f64; max_r];
    let mut max = vec![0.0f64; max_r];
    let mut count = vec![0usize; max_r];
    for y in 0..spectrum.height() {
        for x in 0..spectrum.width() {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            let r = (dx * dx + dy * dy).sqrt().round() as usize;
            let v = spectrum.get(x, y, 0);
            sum[r] += v;
            if v > max[r] {
                max[r] = v;
            }
            count[r] += 1;
        }
    }
    let mean =
        sum.iter().zip(&count).map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 }).collect();
    RadialProfile { mean, max, count }
}

/// Peak-excess statistic of a centred **log-magnitude** spectrum: the
/// largest difference `max[r] - mean[r]` over radii in
/// `[min_radius, max_radius]` (a difference of logs is a ratio of linear
/// magnitudes).
///
/// Benign spectra are radially smooth, so the excess stays small; attack
/// peaks tower over their ring's background. Compute this on a *windowed*
/// spectrum ([`crate::window::apply_window`]) so the boundary-leakage
/// cross does not masquerade as a peak. Radii below `min_radius` exclude
/// the DC blob.
pub fn peak_excess(spectrum: &Image, min_radius: usize, max_radius: usize) -> f64 {
    let profile = radial_profile(spectrum);
    let hi = max_radius.min(profile.len().saturating_sub(1));
    let mut worst = 0.0f64;
    for r in min_radius..=hi {
        if profile.count[r] == 0 {
            continue;
        }
        let excess = profile.max[r] - profile.mean[r];
        if excess > worst {
            worst = excess;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft2d::centered_spectrum;
    use decamouflage_imaging::{Channels, Image};

    fn smooth(n: usize) -> Image {
        Image::from_fn_gray(n, n, |x, y| {
            120.0 + 60.0 * ((x as f64) * 0.06).sin() + 40.0 * ((y as f64) * 0.045).cos()
        })
    }

    fn combed(n: usize, p: usize) -> Image {
        let base = smooth(n);
        Image::from_fn_gray(n, n, |x, y| {
            let v = base.get(x, y, 0);
            if x % p == 0 && y % p == 0 {
                (v + 200.0).min(255.0)
            } else {
                v
            }
        })
    }

    #[test]
    fn profile_covers_all_pixels() {
        let img = Image::filled(8, 6, Channels::Gray, 1.0);
        let profile = radial_profile(&img);
        assert_eq!(profile.count.iter().sum::<usize>(), 48);
        assert!(!profile.is_empty());
    }

    #[test]
    fn constant_spectrum_has_flat_profile() {
        let img = Image::filled(16, 16, Channels::Gray, 0.5);
        let profile = radial_profile(&img);
        for r in 0..profile.len() {
            if profile.count[r] > 0 {
                assert!((profile.mean[r] - 0.5).abs() < 1e-12);
                assert!((profile.max[r] - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn benign_spectrum_decays_radially() {
        let spec = centered_spectrum(&smooth(64));
        let profile = radial_profile(&spec);
        // Mean magnitude near the centre exceeds the outer region.
        let inner: f64 = profile.mean[1..6].iter().sum::<f64>() / 5.0;
        let outer: f64 = profile.mean[24..30].iter().sum::<f64>() / 6.0;
        assert!(inner > outer, "inner {inner} vs outer {outer}");
    }

    fn windowed_spectrum(img: &Image) -> Image {
        centered_spectrum(&crate::window::apply_window(img, crate::window::WindowKind::Hann))
    }

    #[test]
    fn attack_peaks_raise_peak_excess() {
        let benign = peak_excess(&windowed_spectrum(&smooth(64)), 6, 30);
        let attacked = peak_excess(&windowed_spectrum(&combed(64, 4)), 6, 30);
        assert!(attacked > benign + 0.05, "benign {benign:.3}, attacked {attacked:.3}");
    }

    #[test]
    fn excess_is_nonnegative() {
        let spec = windowed_spectrum(&smooth(32));
        assert!(peak_excess(&spec, 2, 12) >= 0.0);
    }

    #[test]
    fn empty_radius_range_yields_zero() {
        let spec = centered_spectrum(&smooth(16));
        assert_eq!(peak_excess(&spec, 500, 600), 0.0);
    }
}
