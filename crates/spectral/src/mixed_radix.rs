//! Mixed-radix Cooley–Tukey FFT for composite lengths.
//!
//! The image sizes this framework meets in practice (336, 392, 448, 504,
//! 560, 616, …) are highly composite: products of 2, 3, 5 and 7. The
//! recursive Cooley–Tukey decomposition `N = r * m` reduces such lengths
//! to tiny prime-length DFTs plus twiddle multiplications in
//! `O(N log N)`, avoiding the ~3x padded-transform overhead of Bluestein's
//! algorithm. Lengths with a large prime factor still fall back to
//! Bluestein (handled by [`crate::fft`]).
//!
//! The implementation is a textbook decimation-in-time recursion:
//!
//! ```text
//! X[k1 + r*k2] = Σ_{n1=0}^{r-1} e^{-2πi n1 (k1 + r k2)/N}
//!                · (DFT_m of the n1-th decimated subsequence)[k1]
//! ```
//!
//! with the prime-radix butterflies evaluated directly.

use crate::Complex64;
use std::f64::consts::PI;

/// Largest prime factor that the mixed-radix path handles before the
/// caller should fall back to Bluestein.
pub const MAX_SMALL_PRIME: usize = 13;

/// Returns the smallest prime factor of `n` (n >= 2).
fn smallest_prime_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut p = 3;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 2;
    }
    n
}

/// Whether `n` is a product of primes `<= MAX_SMALL_PRIME` (such lengths
/// take the fast mixed-radix path).
pub fn is_smooth(n: usize) -> bool {
    if n == 0 {
        return false;
    }
    let mut m = n;
    for p in [2usize, 3, 5, 7, 11, 13] {
        while m.is_multiple_of(p) {
            m /= p;
        }
    }
    m == 1
}

/// Precomputed recursion plan for one length.
#[derive(Debug)]
pub struct MixedRadixPlan {
    n: usize,
    /// Prime factors in recursion order.
    factors: Vec<usize>,
    /// Twiddle table: e^{-2πi k / N} for k in 0..N (forward direction).
    twiddles: Vec<Complex64>,
}

impl MixedRadixPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not smooth (check [`is_smooth`] first).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "length must be non-zero");
        assert!(is_smooth(n), "length {n} has a prime factor > {MAX_SMALL_PRIME}");
        let mut factors = Vec::new();
        let mut m = n;
        while m > 1 {
            let p = smallest_prime_factor(m);
            factors.push(p);
            m /= p;
        }
        let twiddles =
            (0..n).map(|k| Complex64::from_polar_unit(-2.0 * PI * k as f64 / n as f64)).collect();
        Self { n, factors, twiddles }
    }

    /// The transform length.
    pub const fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial length 1.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Twiddle `e^{-2πi k / N}` (forward) or its conjugate (inverse).
    #[inline]
    fn twiddle(&self, k: usize, forward: bool) -> Complex64 {
        let t = self.twiddles[k % self.n];
        if forward {
            t
        } else {
            t.conj()
        }
    }

    /// Forward transform (no normalisation), out of place.
    pub fn forward(&self, input: &[Complex64]) -> Vec<Complex64> {
        self.transform(input, true)
    }

    /// Inverse transform including the `1/N` normalisation, out of place.
    pub fn inverse(&self, input: &[Complex64]) -> Vec<Complex64> {
        let mut out = self.transform(input, false);
        let scale = 1.0 / self.n as f64;
        for v in out.iter_mut() {
            *v = *v * scale;
        }
        out
    }

    /// Shared transform body: allocates the output and one scratch buffer
    /// up front; the recursion ping-pongs between them instead of building
    /// per-level subsequence vectors.
    fn transform(&self, input: &[Complex64], forward: bool) -> Vec<Complex64> {
        assert_eq!(input.len(), self.n, "input length mismatch");
        let mut out = vec![Complex64::ZERO; self.n];
        let mut scratch = vec![Complex64::ZERO; self.n];
        self.recurse(input, 0, 1, &mut out, &mut scratch, self.n, 0, forward);
        out
    }

    /// Recursive decimation-in-time over the subsequence
    /// `input[offset + i*stride]` of logical length `len`, writing the
    /// spectrum contiguously into `out[..len]` with `scratch[..len]` as
    /// workspace; `depth` indexes into the factor list.
    ///
    /// Children write into disjoint `m`-length windows of `scratch`, each
    /// borrowing the matching window of `out` as its own workspace (the
    /// roles swap every level), so the whole recursion runs in the two
    /// buffers allocated by [`Self::transform`]. The combine step reads the
    /// subsequence spectra from `scratch` in ascending `n1` order starting
    /// from zero — the same accumulation sequence as the historical
    /// per-level `Vec<Vec<_>>` formulation, hence bit-identical results.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        input: &[Complex64],
        offset: usize,
        stride: usize,
        out: &mut [Complex64],
        scratch: &mut [Complex64],
        len: usize,
        depth: usize,
        forward: bool,
    ) {
        if len == 1 {
            out[0] = input[offset];
            return;
        }
        let r = self.factors[depth];
        let m = len / r;

        // Transform each of the r decimated subsequences of length m.
        for n1 in 0..r {
            self.recurse(
                input,
                offset + n1 * stride,
                stride * r,
                &mut scratch[n1 * m..(n1 + 1) * m],
                &mut out[n1 * m..(n1 + 1) * m],
                m,
                depth + 1,
                forward,
            );
        }

        // Combine: X[k1 + m*j] = Σ_{n1} W_N^{n1 (k1 + m j)} · S_{n1}[k1].
        // Twiddle index scaled by the global stride of this recursion level:
        // this level's W_N uses N = len, so global k = index * (self.n/len).
        let unit = self.n / len;
        for k1 in 0..m {
            for j in 0..r {
                let k = k1 + m * j;
                let mut acc = Complex64::ZERO;
                for n1 in 0..r {
                    let tw = self.twiddle(n1 * k * unit, forward);
                    acc += scratch[n1 * m + k1] * tw;
                }
                out[k] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.61).sin() * 5.0, (i as f64 * 1.7).cos()))
            .collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((*x - *y).norm() < tol, "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn smoothness_detection() {
        for n in [1usize, 2, 6, 336, 392, 448, 504, 560, 616, 1024] {
            assert!(is_smooth(n), "{n} should be smooth");
        }
        for n in [17usize, 34, 226, 997] {
            assert!(!is_smooth(n), "{n} should not be smooth");
        }
        assert!(!is_smooth(0));
    }

    #[test]
    fn matches_naive_dft_for_smooth_lengths() {
        for n in [2usize, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 15, 21, 35, 36, 60, 112] {
            let plan = MixedRadixPlan::new(n);
            let input = signal(n);
            let fast = plan.forward(&input);
            let naive = dft_naive(&input);
            assert_close(&fast, &naive, 1e-8 * n as f64);
        }
    }

    #[test]
    fn matches_naive_for_profile_sizes() {
        for n in [336usize, 448] {
            let plan = MixedRadixPlan::new(n);
            let input = signal(n);
            assert_close(&plan.forward(&input), &dft_naive(&input), 1e-7 * n as f64);
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        for n in [6usize, 35, 112, 336] {
            let plan = MixedRadixPlan::new(n);
            let input = signal(n);
            let back = plan.inverse(&plan.forward(&input));
            assert_close(&back, &input, 1e-9 * n as f64);
        }
    }

    #[test]
    fn length_one_is_identity() {
        let plan = MixedRadixPlan::new(1);
        let input = vec![Complex64::new(3.0, -4.0)];
        assert_eq!(plan.forward(&input), input);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 1);
    }

    #[test]
    #[should_panic(expected = "prime factor")]
    fn rejects_rough_lengths() {
        let _ = MixedRadixPlan::new(34); // 2 * 17
    }

    #[test]
    fn plan_factorisation_is_complete() {
        let plan = MixedRadixPlan::new(360);
        let product: usize = plan.factors.iter().product();
        assert_eq!(product, 360);
        for &f in &plan.factors {
            assert!(f <= MAX_SMALL_PRIME);
        }
    }

    #[test]
    fn linearity_holds() {
        let n = 105; // 3 * 5 * 7
        let plan = MixedRadixPlan::new(n);
        let a = signal(n);
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let combined: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x * 2.0 + *y * 0.5).collect();
        let fa = plan.forward(&a);
        let fb = plan.forward(&b);
        let fc = plan.forward(&combined);
        for i in 0..n {
            let expected = fa[i] * 2.0 + fb[i] * 0.5;
            assert!((fc[i] - expected).norm() < 1e-8);
        }
    }
}
