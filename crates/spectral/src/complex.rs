use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Only the operations required by the FFT and spectrum pipeline are
/// implemented; this is not a general-purpose complex library.
///
/// # Example
///
/// ```
/// use decamouflage_spectral::Complex64;
///
/// let i = Complex64::new(0.0, 1.0);
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// assert!((Complex64::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
/// ```
// repr(C) guarantees the (re, im) field order in memory, which the
// explicit-SIMD butterfly path relies on to load interleaved lanes.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{i theta}`: the unit complex number at angle `theta` radians.
    pub fn from_polar_unit(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub const fn conj(&self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    pub fn scale(&self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn constants() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
        c *= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn scalar_operations() {
        let a = Complex64::new(2.0, -4.0);
        assert_eq!(a * 0.5, Complex64::new(1.0, -2.0));
        assert_eq!(a / 2.0, Complex64::new(1.0, -2.0));
        assert_eq!(-a, Complex64::new(-2.0, 4.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.norm(), 5.0);
        // z * conj(z) is |z|² on the real axis.
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
    }

    #[test]
    fn polar_unit_lies_on_circle() {
        for k in 0..8 {
            let theta = k as f64 * PI / 4.0;
            let z = Complex64::from_polar_unit(theta);
            assert!((z.norm() - 1.0).abs() < 1e-12);
            assert!((z.arg() - theta.sin().atan2(theta.cos())).abs() < 1e-12);
        }
    }

    #[test]
    fn from_real_and_display() {
        let z: Complex64 = 2.5.into();
        assert_eq!(z, Complex64::from_real(2.5));
        assert_eq!(Complex64::new(1.0, -1.0).to_string(), "1-1i");
        assert_eq!(Complex64::new(1.0, 1.0).to_string(), "1+1i");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Complex64::default(), Complex64::ZERO);
    }
}
