//! Low-pass masking and binarisation of centred spectra.
//!
//! These implement the middle stages of the paper's steganalysis pipeline
//! (Equation 7 and Figure "Process of computing the centered spectrum
//! points"): an ideal circular low-pass filter `H(u, v)` keeps only
//! frequencies within radius `D_T` of the centre, and a brightness threshold
//! converts the masked spectrum into a binary blob image.

use decamouflage_imaging::{Channels, Image};

/// A binary raster (0 or 1 samples) produced by [`binarize`].
pub type BinaryImage = Image;

/// Applies the paper's ideal low-pass filter to a *centred* spectrum image:
/// samples farther than `radius` (in pixels) from the image centre are set
/// to zero, everything else is kept.
///
/// `radius` is the paper's threshold `D_T`; [`crate::csp::CspConfig`]
/// expresses it as a fraction of the half-diagonal so that it scales with
/// image size.
pub fn low_pass_mask(spectrum: &Image, radius: f64) -> Image {
    let cx = (spectrum.width() as f64 - 1.0) / 2.0;
    let cy = (spectrum.height() as f64 - 1.0) / 2.0;
    let r2 = radius * radius;
    let mut out = spectrum.clone();
    for y in 0..spectrum.height() {
        for x in 0..spectrum.width() {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            if dx * dx + dy * dy > r2 {
                for c in 0..spectrum.channel_count() {
                    out.set(x, y, c, 0.0);
                }
            }
        }
    }
    out
}

/// Thresholds a `[0, 1]`-normalised spectrum into a binary image: samples
/// `>= threshold` become 1, everything else 0.
pub fn binarize(spectrum: &Image, threshold: f64) -> BinaryImage {
    let mut out = Image::zeros(spectrum.width(), spectrum.height(), Channels::Gray);
    let src = spectrum.to_gray();
    for y in 0..src.height() {
        for x in 0..src.width() {
            out.set(x, y, 0, if src.get(x, y, 0) >= threshold { 1.0 } else { 0.0 });
        }
    }
    out
}

/// Fraction of samples that are set in a binary image.
pub fn fill_ratio(binary: &BinaryImage) -> f64 {
    let total = binary.plane_len() as f64;
    binary.plane(0).iter().filter(|&&v| v != 0.0).count() as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_pass_keeps_center_kills_corners() {
        let img = Image::filled(9, 9, Channels::Gray, 1.0);
        let masked = low_pass_mask(&img, 2.0);
        assert_eq!(masked.get(4, 4, 0), 1.0);
        assert_eq!(masked.get(0, 0, 0), 0.0);
        assert_eq!(masked.get(8, 8, 0), 0.0);
        assert_eq!(masked.get(4, 2, 0), 1.0); // distance 2, on the boundary
        assert_eq!(masked.get(4, 1, 0), 0.0); // distance 3
    }

    #[test]
    fn low_pass_radius_zero_keeps_only_center_of_odd_grid() {
        let img = Image::filled(5, 5, Channels::Gray, 1.0);
        let masked = low_pass_mask(&img, 0.0);
        let ones: Vec<(usize, usize)> = (0..5)
            .flat_map(|y| (0..5).map(move |x| (x, y)))
            .filter(|&(x, y)| masked.get(x, y, 0) != 0.0)
            .collect();
        assert_eq!(ones, vec![(2, 2)]);
    }

    #[test]
    fn binarize_thresholds_inclusively() {
        let img = Image::from_gray_plane(3, 1, vec![0.2, 0.5, 0.9]).unwrap();
        let b = binarize(&img, 0.5);
        assert_eq!(b.plane(0), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn binarize_extremes() {
        let img = Image::from_gray_plane(2, 1, vec![0.0, 1.0]).unwrap();
        assert_eq!(binarize(&img, 0.0).plane(0), &[1.0, 1.0]);
        assert_eq!(binarize(&img, 1.1).plane(0), &[0.0, 0.0]);
    }

    #[test]
    fn fill_ratio_counts_set_fraction() {
        let img = Image::from_gray_plane(4, 1, vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        assert_eq!(fill_ratio(&img), 0.5);
        assert_eq!(fill_ratio(&Image::zeros(3, 3, Channels::Gray)), 0.0);
    }

    #[test]
    fn mask_then_binarize_composes() {
        let img = Image::filled(9, 9, Channels::Gray, 0.8);
        let masked = low_pass_mask(&img, 1.5);
        let b = binarize(&masked, 0.5);
        assert!(fill_ratio(&b) > 0.0);
        assert!(fill_ratio(&b) < 0.2);
    }
}
