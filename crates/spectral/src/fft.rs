//! 1-D fast Fourier transforms.
//!
//! * Power-of-two lengths use an iterative radix-2 Cooley–Tukey FFT.
//! * Smooth composite lengths (products of primes <= 13 — every image size
//!   the framework meets in practice) use the cached
//!   [`crate::mixed_radix::MixedRadixPlan`].
//! * Remaining lengths use Bluestein's chirp-z transform, which re-expresses
//!   an N-point DFT as a convolution computed with a padded power-of-two FFT
//!   (chirps and kernel FFTs are plan-cached per thread).
//!
//! The forward transform computes `X[k] = Σ_n x[n] e^{-2πi nk/N}` (no
//! normalisation); the inverse divides by `N`, so `ifft(fft(x)) == x`.

use crate::Complex64;
use std::f64::consts::PI;

/// In-place forward DFT of `data` (any length).
///
/// # Example
///
/// ```
/// use decamouflage_spectral::{fft, Complex64};
///
/// let mut data = vec![Complex64::ONE; 4];
/// fft::fft(&mut data);
/// // DFT of a constant signal is an impulse at DC.
/// assert!((data[0].re - 4.0).abs() < 1e-12);
/// assert!(data[1].norm() < 1e-12);
/// ```
pub fn fft(data: &mut Vec<Complex64>) {
    transform(data, Direction::Forward);
}

/// In-place inverse DFT of `data` (any length), normalised by `1/N`.
pub fn ifft(data: &mut Vec<Complex64>) {
    transform(data, Direction::Inverse);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = *v / n;
    }
}

/// Direct O(N²) DFT — the reference implementation used by tests to verify
/// the fast paths.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (i, &x) in input.iter().enumerate() {
            let theta = -2.0 * PI * (k * i) as f64 / n as f64;
            acc += x * Complex64::from_polar_unit(theta);
        }
        *o = acc;
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

fn transform(data: &mut Vec<Complex64>, dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(data, dir);
    } else if crate::mixed_radix::is_smooth(n) {
        mixed_radix_cached(data, dir);
    } else {
        bluestein(data, dir);
    }
}

thread_local! {
    static MIXED_PLANS: std::cell::RefCell<
        std::collections::HashMap<usize, std::rc::Rc<crate::mixed_radix::MixedRadixPlan>>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Smooth-length transform through a cached [`MixedRadixPlan`].
///
/// [`MixedRadixPlan`]: crate::mixed_radix::MixedRadixPlan
fn mixed_radix_cached(data: &mut Vec<Complex64>, dir: Direction) {
    let n = data.len();
    let plan = MIXED_PLANS.with(|cache| {
        cache
            .borrow_mut()
            .entry(n)
            .or_insert_with(|| std::rc::Rc::new(crate::mixed_radix::MixedRadixPlan::new(n)))
            .clone()
    });
    let out = match dir {
        Direction::Forward => plan.forward(data),
        // The shared `ifft` applies the 1/N normalisation itself, so use
        // the unnormalised inverse: conjugate trick via forward transform
        // of the conjugated input.
        Direction::Inverse => {
            let conj: Vec<Complex64> = data.iter().map(|v| v.conj()).collect();
            plan.forward(&conj).into_iter().map(|v| v.conj()).collect()
        }
    };
    *data = out;
}

/// Per-stage twiddle tables of one `(length, direction)` radix-2 transform.
///
/// Each stage's sequence comes from the exact recurrence the historical
/// per-chunk loop used (`w` starting at 1, `w *= w_len`), so the values and
/// therefore the results are bit-identical to that loop. Every FFT of the
/// same length replays identical tables, so they are built once and cached
/// per thread — image transforms call the same lengths for every row.
struct Radix2Plan {
    /// `stages[s]` holds the `len / 2` twiddles for stage `len = 2^(s+1)`.
    stages: Vec<Vec<Complex64>>,
}

impl Radix2Plan {
    fn new(n: usize, dir: Direction) -> Self {
        let mut stages = Vec::new();
        let mut len = 2;
        while len <= n {
            let theta = dir.sign() * 2.0 * PI / len as f64;
            let w_len = Complex64::from_polar_unit(theta);
            let mut twiddles = Vec::with_capacity(len / 2);
            let mut w = Complex64::ONE;
            for _ in 0..len / 2 {
                twiddles.push(w);
                w *= w_len;
            }
            stages.push(twiddles);
            len <<= 1;
        }
        Self { stages }
    }
}

thread_local! {
    static RADIX2_PLANS: std::cell::RefCell<
        std::collections::HashMap<(usize, bool), std::rc::Rc<Radix2Plan>>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

fn radix2_plan(n: usize, dir: Direction) -> std::rc::Rc<Radix2Plan> {
    RADIX2_PLANS.with(|cache| {
        cache
            .borrow_mut()
            .entry((n, dir == Direction::Forward))
            .or_insert_with(|| std::rc::Rc::new(Radix2Plan::new(n, dir)))
            .clone()
    })
}

/// Iterative radix-2 Cooley–Tukey with bit-reversal permutation.
///
/// Stage twiddles come from the cached [`Radix2Plan`] (bit-identical to the
/// historical per-chunk recurrence), and the butterflies are stride-1 zips
/// over `split_at_mut` halves with no index arithmetic or bounds checks in
/// the hot loop.
fn radix2(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let plan = radix2_plan(n, dir);
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let mut len = 2;
    for twiddles in &plan.stages {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        #[allow(unsafe_code)]
        if len == 2 && n >= 4 && std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just verified at runtime and the
            // length is a power of two >= 4.
            unsafe { avx::butterflies_len2(data) };
            len <<= 1;
            continue;
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        #[allow(unsafe_code)]
        if len >= 4 && std::arch::is_x86_feature_detected!("avx") {
            for chunk in data.chunks_exact_mut(len) {
                // SAFETY: AVX support was just verified at runtime, and
                // `twiddles.len() == len / 2` matches the chunk halves.
                unsafe { avx::butterflies(chunk, twiddles) };
            }
            len <<= 1;
            continue;
        }
        for chunk in data.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for ((a, b), &wk) in lo.iter_mut().zip(hi.iter_mut()).zip(twiddles) {
                let t = *b * wk;
                let av = *a;
                *a = av + t;
                *b = av - t;
            }
        }
        len <<= 1;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx {
    //! Explicit AVX butterfly pass for [`super::radix2`].
    //!
    //! Two complex numbers per 256-bit register, laid out as interleaved
    //! `[re0, im0, re1, im1]` lanes — guaranteed by `Complex64`'s
    //! `#[repr(C)]`. The complex multiply is decomposed so every lane
    //! performs exactly the scalar `Mul` operation sequence
    //! (`re·re − im·im`, `re·im + im·re`: two multiplies then one
    //! add/subtract, never an FMA), keeping results bit-identical to the
    //! scalar butterfly loop.

    use super::Complex64;
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_addsub_pd, _mm256_loadu_pd, _mm256_movedup_pd, _mm256_mul_pd,
        _mm256_permute2f128_pd, _mm256_permute_pd, _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };

    /// Runs every butterfly of one stage chunk: `chunk` has even length
    /// `>= 4` with twiddles for the lower half.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX and
    /// `twiddles.len() == chunk.len() / 2`.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn butterflies(chunk: &mut [Complex64], twiddles: &[Complex64]) {
        let half = chunk.len() / 2;
        debug_assert_eq!(twiddles.len(), half);
        let (lo, hi) = chunk.split_at_mut(half);
        let lo_p = lo.as_mut_ptr() as *mut f64;
        let hi_p = hi.as_mut_ptr() as *mut f64;
        let tw_p = twiddles.as_ptr() as *const f64;
        let pairs = half / 2 * 2;
        let mut k = 0;
        while k < pairs {
            let a = _mm256_loadu_pd(lo_p.add(2 * k));
            let b = _mm256_loadu_pd(hi_p.add(2 * k));
            let w = _mm256_loadu_pd(tw_p.add(2 * k));
            // w_re = [wr, wr, ...], w_im = [wi, wi, ...],
            // b_swap = [im, re, ...]; addsub computes
            // [re·wr − im·wi, im·wr + re·wi] — the scalar complex Mul.
            let w_re = _mm256_movedup_pd(w);
            let w_im = _mm256_permute_pd::<0xF>(w);
            let b_swap = _mm256_permute_pd::<0x5>(b);
            let t = _mm256_addsub_pd(_mm256_mul_pd(b, w_re), _mm256_mul_pd(b_swap, w_im));
            _mm256_storeu_pd(lo_p.add(2 * k), _mm256_add_pd(a, t));
            _mm256_storeu_pd(hi_p.add(2 * k), _mm256_sub_pd(a, t));
            k += 2;
        }
        // `half` is a power of two, so a remainder only exists when
        // `half == 1` — and the dispatch requires `len >= 4`. Keep the
        // scalar tail anyway for local robustness.
        for k in pairs..half {
            let wk = twiddles[k];
            let t = hi[k] * wk;
            let av = lo[k];
            lo[k] = av + t;
            hi[k] = av - t;
        }
    }

    /// Runs the entire first stage (`len == 2`), where every chunk is a
    /// single butterfly with the constant twiddle `1 + 0i`. A chunk fits
    /// in one register as `[a.re, a.im, b.re, b.im]`, so two chunks are
    /// regrouped per iteration into an `a` vector and a `b` vector with
    /// 128-bit-lane permutes.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX; `data.len()` must be even.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn butterflies_len2(data: &mut [Complex64]) {
        let n = data.len();
        let p = data.as_mut_ptr() as *mut f64;
        // The twiddle multiply is kept in the computation (not folded
        // away) so NaN and signed-zero propagation match the scalar
        // `Mul` sequence exactly.
        let w_re = _mm256_set1_pd(1.0);
        let w_im = _mm256_set1_pd(0.0);
        let quads = n / 4 * 4;
        let mut i = 0;
        while i < quads {
            let x0 = _mm256_loadu_pd(p.add(2 * i));
            let x1 = _mm256_loadu_pd(p.add(2 * i + 4));
            let a = _mm256_permute2f128_pd::<0x20>(x0, x1);
            let b = _mm256_permute2f128_pd::<0x31>(x0, x1);
            let b_swap = _mm256_permute_pd::<0x5>(b);
            let t = _mm256_addsub_pd(_mm256_mul_pd(b, w_re), _mm256_mul_pd(b_swap, w_im));
            let s = _mm256_add_pd(a, t);
            let d = _mm256_sub_pd(a, t);
            _mm256_storeu_pd(p.add(2 * i), _mm256_permute2f128_pd::<0x20>(s, d));
            _mm256_storeu_pd(p.add(2 * i + 4), _mm256_permute2f128_pd::<0x31>(s, d));
            i += 4;
        }
        for chunk in data[quads..].chunks_exact_mut(2) {
            let t = chunk[1] * Complex64::ONE;
            let av = chunk[0];
            chunk[0] = av + t;
            chunk[1] = av - t;
        }
    }
}

/// Precomputed Bluestein machinery for one `(length, direction)` pair:
/// the chirp sequence and the forward FFT of the circular kernel `b`.
/// Recomputing these dominated the cost of repeated transforms (every row
/// and column of an image shares a length), so plans are cached
/// per thread.
struct BluesteinPlan {
    m: usize,
    chirp: Vec<Complex64>,
    b_fft: Vec<Complex64>,
}

impl BluesteinPlan {
    fn new(n: usize, dir: Direction) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        // Chirp: c[k] = e^{i * sign * π k² / N}. Using k² mod 2N avoids
        // catastrophic angle growth for large k.
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Complex64::from_polar_unit(dir.sign() * PI * k2 as f64 / n as f64)
            })
            .collect();
        // b[k] = conj(c[|k|]) arranged circularly, transformed once.
        let mut b = vec![Complex64::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..n {
            b[k] = chirp[k].conj();
            b[m - k] = chirp[k].conj();
        }
        radix2(&mut b, Direction::Forward);
        Self { m, chirp, b_fft: b }
    }
}

thread_local! {
    static BLUESTEIN_PLANS: std::cell::RefCell<
        std::collections::HashMap<(usize, bool), std::rc::Rc<BluesteinPlan>>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

fn bluestein_plan(n: usize, dir: Direction) -> std::rc::Rc<BluesteinPlan> {
    BLUESTEIN_PLANS.with(|cache| {
        cache
            .borrow_mut()
            .entry((n, dir == Direction::Forward))
            .or_insert_with(|| std::rc::Rc::new(BluesteinPlan::new(n, dir)))
            .clone()
    })
}

/// Bluestein's algorithm: express the N-point DFT as a circular convolution
/// of chirped sequences, evaluated with a power-of-two FFT of length
/// `>= 2N - 1` (chirp and kernel FFT come from the per-thread plan cache).
fn bluestein(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    let plan = bluestein_plan(n, dir);
    let m = plan.m;

    // a[k] = x[k] * c[k], zero-padded to m.
    let mut a = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = data[k] * plan.chirp[k];
    }
    radix2(&mut a, Direction::Forward);
    for (x, y) in a.iter_mut().zip(plan.b_fft.iter()) {
        *x *= *y;
    }
    radix2(&mut a, Direction::Inverse);
    let scale = 1.0 / m as f64;
    for (k, out) in data.iter_mut().enumerate() {
        *out = a[k] * plan.chirp[k] * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((*x - *y).norm() < tol, "element {i}: {x} vs {y} (diff {})", (*x - *y).norm());
        }
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin() * 3.0, (i as f64 * 1.3).cos()))
            .collect()
    }

    /// The historical scalar radix-2 loop, kept verbatim as the
    /// bit-identity reference for the dispatching implementation.
    fn radix2_scalar_reference(data: &mut [Complex64]) {
        let n = data.len();
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            if j > i {
                data.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let theta = -2.0 * PI / len as f64;
            let w_len = Complex64::from_polar_unit(theta);
            for chunk in data.chunks_exact_mut(len) {
                let (lo, hi) = chunk.split_at_mut(len / 2);
                let mut w = Complex64::ONE;
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    let t = *b * w;
                    let av = *a;
                    *a = av + t;
                    *b = av - t;
                    w *= w_len;
                }
            }
            len <<= 1;
        }
    }

    #[test]
    fn radix2_is_bit_identical_to_scalar_reference() {
        // With `--features simd` this pins the AVX butterflies (odd tail
        // included via n = 2) to the exact scalar results; without the
        // feature it pins the shared-twiddle-table restructure.
        for n in [2usize, 4, 8, 16, 64, 128, 512, 1024] {
            let input = signal(n);
            let mut reference = input.clone();
            radix2_scalar_reference(&mut reference);
            let mut fast = input.clone();
            fft(&mut fast);
            for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "n={n} bin {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn fft_matches_naive_for_powers_of_two() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input = signal(n);
            let mut fast = input.clone();
            fft(&mut fast);
            assert_close(&fast, &dft_naive(&input), 1e-8 * n as f64);
        }
    }

    #[test]
    fn fft_matches_naive_for_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 9, 12, 15, 17, 50, 97, 100] {
            let input = signal(n);
            let mut fast = input.clone();
            fft(&mut fast);
            assert_close(&fast, &dft_naive(&input), 1e-7 * n as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [4usize, 7, 16, 33, 100, 128] {
            let input = signal(n);
            let mut data = input.clone();
            fft(&mut data);
            ifft(&mut data);
            assert_close(&data, &input, 1e-9 * n as f64);
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        fft(&mut data);
        for v in &data {
            assert!((*v - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 32;
        let f = 5;
        let mut data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_polar_unit(2.0 * PI * (f * i) as f64 / n as f64))
            .collect();
        fft(&mut data);
        for (k, v) in data.iter().enumerate() {
            if k == f {
                assert!((v.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.norm() < 1e-9, "leakage at bin {k}: {}", v.norm());
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        for n in [16usize, 21, 64] {
            let input = signal(n);
            let time_energy: f64 = input.iter().map(|v| v.norm_sqr()).sum();
            let mut freq = input.clone();
            fft(&mut freq);
            let freq_energy: f64 = freq.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
            assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
        }
    }

    #[test]
    fn linearity() {
        let n = 24;
        let a = signal(n);
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
        let combined: Vec<Complex64> =
            a.iter().zip(b.iter()).map(|(x, y)| *x * 2.0 + *y * 3.0).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fc = combined.clone();
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fc);
        for i in 0..n {
            let expected = fa[i] * 2.0 + fb[i] * 3.0;
            assert!((fc[i] - expected).norm() < 1e-8);
        }
    }

    #[test]
    fn empty_and_singleton_are_noops() {
        let mut empty: Vec<Complex64> = vec![];
        fft(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![Complex64::new(5.0, 2.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex64::new(5.0, 2.0));
        ifft(&mut one);
        assert_eq!(one[0], Complex64::new(5.0, 2.0));
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let n = 20;
        let mut data: Vec<Complex64> =
            (0..n).map(|i| Complex64::from_real((i as f64 * 0.9).sin())).collect();
        fft(&mut data);
        for k in 1..n {
            let diff = (data[k] - data[n - k].conj()).norm();
            assert!(diff < 1e-9, "bin {k}: asymmetry {diff}");
        }
    }
}
