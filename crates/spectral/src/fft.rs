//! 1-D fast Fourier transforms.
//!
//! * Power-of-two lengths use an iterative radix-2 Cooley–Tukey FFT.
//! * Smooth composite lengths (products of primes <= 13 — every image size
//!   the framework meets in practice) use the cached
//!   [`crate::mixed_radix::MixedRadixPlan`].
//! * Remaining lengths use Bluestein's chirp-z transform, which re-expresses
//!   an N-point DFT as a convolution computed with a padded power-of-two FFT
//!   (chirps and kernel FFTs are plan-cached per thread).
//!
//! The forward transform computes `X[k] = Σ_n x[n] e^{-2πi nk/N}` (no
//! normalisation); the inverse divides by `N`, so `ifft(fft(x)) == x`.

use crate::Complex64;
use std::f64::consts::PI;

/// In-place forward DFT of `data` (any length).
///
/// # Example
///
/// ```
/// use decamouflage_spectral::{fft, Complex64};
///
/// let mut data = vec![Complex64::ONE; 4];
/// fft::fft(&mut data);
/// // DFT of a constant signal is an impulse at DC.
/// assert!((data[0].re - 4.0).abs() < 1e-12);
/// assert!(data[1].norm() < 1e-12);
/// ```
pub fn fft(data: &mut Vec<Complex64>) {
    transform(data, Direction::Forward);
}

/// In-place inverse DFT of `data` (any length), normalised by `1/N`.
pub fn ifft(data: &mut Vec<Complex64>) {
    transform(data, Direction::Inverse);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = *v / n;
    }
}

/// Direct O(N²) DFT — the reference implementation used by tests to verify
/// the fast paths.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (i, &x) in input.iter().enumerate() {
            let theta = -2.0 * PI * (k * i) as f64 / n as f64;
            acc += x * Complex64::from_polar_unit(theta);
        }
        *o = acc;
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

fn transform(data: &mut Vec<Complex64>, dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(data, dir);
    } else if crate::mixed_radix::is_smooth(n) {
        mixed_radix_cached(data, dir);
    } else {
        bluestein(data, dir);
    }
}

thread_local! {
    static MIXED_PLANS: std::cell::RefCell<
        std::collections::HashMap<usize, std::rc::Rc<crate::mixed_radix::MixedRadixPlan>>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Smooth-length transform through a cached [`MixedRadixPlan`].
///
/// [`MixedRadixPlan`]: crate::mixed_radix::MixedRadixPlan
fn mixed_radix_cached(data: &mut Vec<Complex64>, dir: Direction) {
    let n = data.len();
    let plan = MIXED_PLANS.with(|cache| {
        cache
            .borrow_mut()
            .entry(n)
            .or_insert_with(|| std::rc::Rc::new(crate::mixed_radix::MixedRadixPlan::new(n)))
            .clone()
    });
    let out = match dir {
        Direction::Forward => plan.forward(data),
        // The shared `ifft` applies the 1/N normalisation itself, so use
        // the unnormalised inverse: conjugate trick via forward transform
        // of the conjugated input.
        Direction::Inverse => {
            let conj: Vec<Complex64> = data.iter().map(|v| v.conj()).collect();
            plan.forward(&conj).into_iter().map(|v| v.conj()).collect()
        }
    };
    *data = out;
}

/// Iterative radix-2 Cooley–Tukey with bit-reversal permutation.
fn radix2(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let theta = dir.sign() * 2.0 * PI / len as f64;
        let w_len = Complex64::from_polar_unit(theta);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w *= w_len;
            }
        }
        len <<= 1;
    }
}

/// Precomputed Bluestein machinery for one `(length, direction)` pair:
/// the chirp sequence and the forward FFT of the circular kernel `b`.
/// Recomputing these dominated the cost of repeated transforms (every row
/// and column of an image shares a length), so plans are cached
/// per thread.
struct BluesteinPlan {
    m: usize,
    chirp: Vec<Complex64>,
    b_fft: Vec<Complex64>,
}

impl BluesteinPlan {
    fn new(n: usize, dir: Direction) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        // Chirp: c[k] = e^{i * sign * π k² / N}. Using k² mod 2N avoids
        // catastrophic angle growth for large k.
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Complex64::from_polar_unit(dir.sign() * PI * k2 as f64 / n as f64)
            })
            .collect();
        // b[k] = conj(c[|k|]) arranged circularly, transformed once.
        let mut b = vec![Complex64::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..n {
            b[k] = chirp[k].conj();
            b[m - k] = chirp[k].conj();
        }
        radix2(&mut b, Direction::Forward);
        Self { m, chirp, b_fft: b }
    }
}

thread_local! {
    static BLUESTEIN_PLANS: std::cell::RefCell<
        std::collections::HashMap<(usize, bool), std::rc::Rc<BluesteinPlan>>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

fn bluestein_plan(n: usize, dir: Direction) -> std::rc::Rc<BluesteinPlan> {
    BLUESTEIN_PLANS.with(|cache| {
        cache
            .borrow_mut()
            .entry((n, dir == Direction::Forward))
            .or_insert_with(|| std::rc::Rc::new(BluesteinPlan::new(n, dir)))
            .clone()
    })
}

/// Bluestein's algorithm: express the N-point DFT as a circular convolution
/// of chirped sequences, evaluated with a power-of-two FFT of length
/// `>= 2N - 1` (chirp and kernel FFT come from the per-thread plan cache).
fn bluestein(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    let plan = bluestein_plan(n, dir);
    let m = plan.m;

    // a[k] = x[k] * c[k], zero-padded to m.
    let mut a = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = data[k] * plan.chirp[k];
    }
    radix2(&mut a, Direction::Forward);
    for (x, y) in a.iter_mut().zip(plan.b_fft.iter()) {
        *x *= *y;
    }
    radix2(&mut a, Direction::Inverse);
    let scale = 1.0 / m as f64;
    for (k, out) in data.iter_mut().enumerate() {
        *out = a[k] * plan.chirp[k] * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((*x - *y).norm() < tol, "element {i}: {x} vs {y} (diff {})", (*x - *y).norm());
        }
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin() * 3.0, (i as f64 * 1.3).cos()))
            .collect()
    }

    #[test]
    fn fft_matches_naive_for_powers_of_two() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input = signal(n);
            let mut fast = input.clone();
            fft(&mut fast);
            assert_close(&fast, &dft_naive(&input), 1e-8 * n as f64);
        }
    }

    #[test]
    fn fft_matches_naive_for_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 9, 12, 15, 17, 50, 97, 100] {
            let input = signal(n);
            let mut fast = input.clone();
            fft(&mut fast);
            assert_close(&fast, &dft_naive(&input), 1e-7 * n as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [4usize, 7, 16, 33, 100, 128] {
            let input = signal(n);
            let mut data = input.clone();
            fft(&mut data);
            ifft(&mut data);
            assert_close(&data, &input, 1e-9 * n as f64);
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        fft(&mut data);
        for v in &data {
            assert!((*v - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 32;
        let f = 5;
        let mut data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_polar_unit(2.0 * PI * (f * i) as f64 / n as f64))
            .collect();
        fft(&mut data);
        for (k, v) in data.iter().enumerate() {
            if k == f {
                assert!((v.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.norm() < 1e-9, "leakage at bin {k}: {}", v.norm());
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        for n in [16usize, 21, 64] {
            let input = signal(n);
            let time_energy: f64 = input.iter().map(|v| v.norm_sqr()).sum();
            let mut freq = input.clone();
            fft(&mut freq);
            let freq_energy: f64 = freq.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
            assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
        }
    }

    #[test]
    fn linearity() {
        let n = 24;
        let a = signal(n);
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
        let combined: Vec<Complex64> =
            a.iter().zip(b.iter()).map(|(x, y)| *x * 2.0 + *y * 3.0).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fc = combined.clone();
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fc);
        for i in 0..n {
            let expected = fa[i] * 2.0 + fb[i] * 3.0;
            assert!((fc[i] - expected).norm() < 1e-8);
        }
    }

    #[test]
    fn empty_and_singleton_are_noops() {
        let mut empty: Vec<Complex64> = vec![];
        fft(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![Complex64::new(5.0, 2.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex64::new(5.0, 2.0));
        ifft(&mut one);
        assert_eq!(one[0], Complex64::new(5.0, 2.0));
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let n = 20;
        let mut data: Vec<Complex64> =
            (0..n).map(|i| Complex64::from_real((i as f64 * 0.9).sin())).collect();
        fft(&mut data);
        for k in 1..n {
            let diff = (data[k] - data[n - k].conj()).norm();
            assert!(diff < 1e-9, "bin {k}: asymmetry {diff}");
        }
    }
}
