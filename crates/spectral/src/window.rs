//! Apodisation (window) functions.
//!
//! The DFT implicitly treats an image as periodic; the jump between
//! opposite borders leaks energy into a bright axis-aligned cross in the
//! centred spectrum. Multiplying the image by a window that decays towards
//! the borders suppresses that cross, which sharpens the CSP statistic's
//! central blob. Windowing is optional in the pipeline (the paper does not
//! window) but exposed for the sensitivity ablations.

use decamouflage_imaging::Image;
use std::f64::consts::PI;

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// No windowing (identity).
    #[default]
    Rectangular,
    /// Hann window: `0.5 (1 - cos(2πn/(N-1)))`.
    Hann,
    /// Hamming window: `0.54 - 0.46 cos(2πn/(N-1))`.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl WindowKind {
    /// Window weight at position `n` of a length-`len` axis, in `[0, 1]`.
    pub fn weight(&self, n: usize, len: usize) -> f64 {
        if len <= 1 {
            return 1.0;
        }
        let x = 2.0 * PI * n as f64 / (len - 1) as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 * (1.0 - x.cos()),
            WindowKind::Hamming => 0.54 - 0.46 * x.cos(),
            WindowKind::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// The full 1-D window of length `len`.
    pub fn coefficients(&self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.weight(n, len)).collect()
    }
}

/// Multiplies an image by the separable 2-D window `w(x) * w(y)`.
///
/// The mean sample value is preserved (the windowed image is re-centred on
/// the original mean) so the DC coefficient stays comparable across window
/// kinds.
pub fn apply_window(img: &Image, kind: WindowKind) -> Image {
    if kind == WindowKind::Rectangular {
        return img.clone();
    }
    let wx = kind.coefficients(img.width());
    let wy = kind.coefficients(img.height());
    let mean = img.mean_sample();
    let mut out = img.clone();
    for (y, &wy_val) in wy.iter().enumerate() {
        for (x, &wx_val) in wx.iter().enumerate() {
            let w = wx_val * wy_val;
            for c in 0..img.channel_count() {
                // Window the deviation from the mean, not the raw value:
                // borders fade to the mean instead of to black.
                let v = mean + (img.get(x, y, c) - mean) * w;
                out.set(x, y, c, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use decamouflage_imaging::Channels;

    #[test]
    fn rectangular_is_identity() {
        let img = Image::from_fn_gray(6, 5, |x, y| (x * y) as f64);
        assert_eq!(apply_window(&img, WindowKind::Rectangular), img);
        assert_eq!(WindowKind::Rectangular.weight(3, 10), 1.0);
    }

    #[test]
    fn hann_is_zero_at_edges_and_one_at_center() {
        let n = 11;
        assert!(WindowKind::Hann.weight(0, n).abs() < 1e-12);
        assert!(WindowKind::Hann.weight(n - 1, n).abs() < 1e-12);
        assert!((WindowKind::Hann.weight(n / 2, n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_keeps_small_edge_weight() {
        let n = 11;
        let edge = WindowKind::Hamming.weight(0, n);
        assert!((edge - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_near_zero_at_edges() {
        let n = 21;
        assert!(WindowKind::Blackman.weight(0, n).abs() < 1e-9);
        assert!((WindowKind::Blackman.weight(n / 2, n) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let c = kind.coefficients(16);
            for i in 0..8 {
                assert!((c[i] - c[15 - i]).abs() < 1e-12, "{kind:?} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn degenerate_lengths() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            assert_eq!(kind.weight(0, 1), 1.0);
            assert_eq!(kind.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn windowed_image_preserves_mean_anchor() {
        let img = Image::from_fn_gray(16, 16, |x, _| (x * 16) as f64);
        let mean = img.mean_sample();
        let windowed = apply_window(&img, WindowKind::Hann);
        // Border pixels fade to the image mean.
        assert!((windowed.get(0, 0, 0) - mean).abs() < 1e-9);
        assert!((windowed.get(15, 15, 0) - mean).abs() < 1e-9);
    }

    #[test]
    fn windowing_reduces_border_discontinuity_leakage() {
        use crate::dft2d::centered_spectrum;
        // A strong horizontal ramp has a big left-right wrap discontinuity
        // that smears a bright horizontal line through the spectrum centre.
        let img = Image::from_fn_gray(64, 64, |x, _| x as f64 * 4.0);
        let plain = centered_spectrum(&img);
        let windowed = centered_spectrum(&apply_window(&img, WindowKind::Hann));
        // Compare brightness on the horizontal axis away from the centre.
        let leak = |spec: &Image| (40..60).map(|x| spec.get(x, 32, 0)).sum::<f64>() / 20.0;
        assert!(
            leak(&windowed) < leak(&plain),
            "windowing did not reduce leakage: {} vs {}",
            leak(&windowed),
            leak(&plain)
        );
    }

    #[test]
    fn rgb_windows_every_channel() {
        let img = Image::from_fn_rgb(8, 8, |x, y| [(x * 30) as f64, (y * 30) as f64, 128.0]);
        let out = apply_window(&img, WindowKind::Hann);
        assert_eq!(out.channels(), Channels::Rgb);
        assert_eq!(out.size(), img.size());
    }
}
