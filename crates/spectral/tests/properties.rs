//! Property-based tests (proptest) for the spectral substrate.

use decamouflage_imaging::{Channels, Image};
use decamouflage_spectral::components::{count_components, label_components, Connectivity};
use decamouflage_spectral::csp::{count_csp, count_csp_planned, CspConfig};
use decamouflage_spectral::dft2d::{centered_spectrum, dft2, dft2_planned, idft2};
use decamouflage_spectral::fft::{dft_naive, fft, ifft};
use decamouflage_spectral::mixed_radix::{is_smooth, MixedRadixPlan};
use decamouflage_spectral::radial::radial_profile;
use decamouflage_spectral::spectrum::{binarize, fill_ratio, low_pass_mask};
use decamouflage_spectral::Complex64;
use proptest::prelude::*;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    (1usize..=max_len).prop_flat_map(|n| {
        proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), n)
            .prop_map(|pairs| pairs.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
    })
}

fn arb_image() -> impl Strategy<Value = Image> {
    (2usize..=16, 2usize..=16).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap())
    })
}

fn arb_binary_image() -> impl Strategy<Value = Image> {
    (2usize..=12, 2usize..=12).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=1, w * h).prop_map(move |data| {
            Image::from_gray_plane(w, h, data.into_iter().map(f64::from).collect()).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn fft_matches_naive_dft(signal in arb_signal(40)) {
        let mut fast = signal.clone();
        fft(&mut fast);
        let naive = dft_naive(&signal);
        for (a, b) in fast.iter().zip(naive.iter()) {
            prop_assert!((*a - *b).norm() < 1e-6 * signal.len() as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft(signal in arb_signal(48)) {
        let mut data = signal.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(signal.iter()) {
            prop_assert!((*a - *b).norm() < 1e-8 * signal.len() as f64);
        }
    }

    #[test]
    fn parseval_holds(signal in arb_signal(36)) {
        let time: f64 = signal.iter().map(|v| v.norm_sqr()).sum();
        let mut freq = signal.clone();
        fft(&mut freq);
        let spec: f64 = freq.iter().map(|v| v.norm_sqr()).sum::<f64>() / signal.len() as f64;
        prop_assert!((time - spec).abs() < 1e-6 * time.max(1.0));
    }

    #[test]
    fn mixed_radix_matches_naive_on_smooth_lengths(seed in 0u64..1000) {
        let smooth_lengths = [6usize, 10, 12, 14, 15, 18, 20, 21, 24, 28, 30];
        let n = smooth_lengths[(seed % smooth_lengths.len() as u64) as usize];
        prop_assert!(is_smooth(n));
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(((seed + i as u64) % 97) as f64, (i as f64 * 0.3).sin()))
            .collect();
        let plan = MixedRadixPlan::new(n);
        let fast = plan.forward(&signal);
        let naive = dft_naive(&signal);
        for (a, b) in fast.iter().zip(naive.iter()) {
            prop_assert!((*a - *b).norm() < 1e-7 * n as f64);
        }
    }

    #[test]
    fn dft2_roundtrip(img in arb_image()) {
        let back = idft2(&dft2(&img));
        prop_assert!(back.approx_eq(&img, 1e-6));
    }

    #[test]
    fn centered_spectrum_is_normalised(img in arb_image()) {
        let spec = centered_spectrum(&img);
        prop_assert!(spec.min_sample() >= 0.0);
        prop_assert!(spec.max_sample() <= 1.0 + 1e-12);
    }

    #[test]
    fn component_count_bounded_by_set_pixels(img in arb_binary_image()) {
        let set = img.plane(0).iter().filter(|&&v| v != 0.0).count();
        let count = count_components(&img, Connectivity::Eight, 1);
        prop_assert!(count <= set);
        // Eight-connectivity merges at least as much as four.
        let four = count_components(&img, Connectivity::Four, 1);
        prop_assert!(count <= four);
    }

    #[test]
    fn component_areas_sum_to_set_pixels(img in arb_binary_image()) {
        let set = img.plane(0).iter().filter(|&&v| v != 0.0).count();
        let total: usize = label_components(&img, Connectivity::Eight)
            .iter()
            .map(|c| c.area)
            .sum();
        prop_assert_eq!(total, set);
    }

    #[test]
    fn low_pass_mask_only_removes(img in arb_image(), radius in 0.0f64..20.0) {
        let spec = centered_spectrum(&img);
        let masked = low_pass_mask(&spec, radius);
        for (m, s) in masked.plane(0).iter().zip(spec.plane(0)) {
            prop_assert!(*m == 0.0 || (*m - *s).abs() < 1e-12);
        }
    }

    #[test]
    fn binarize_fill_ratio_is_monotone_in_threshold(img in arb_image()) {
        let spec = centered_spectrum(&img);
        let low = fill_ratio(&binarize(&spec, 0.2));
        let high = fill_ratio(&binarize(&spec, 0.8));
        prop_assert!(high <= low);
    }

    #[test]
    fn planned_dft2_is_bit_identical_to_dft2(img in arb_image()) {
        // The scratch-reusing plan path behind the engine's steganalysis
        // scoring must match the plain transform bit for bit, including
        // non-power-of-two (Bluestein) sizes, which `arb_image`'s prime
        // dimensions exercise.
        let plain = dft2(&img);
        let planned = dft2_planned(&img);
        prop_assert_eq!(planned.width(), plain.width());
        prop_assert_eq!(planned.height(), plain.height());
        for (a, b) in planned.as_slice().iter().zip(plain.as_slice()) {
            prop_assert!(a.re == b.re && a.im == b.im, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn planned_csp_matches_staged_pipeline(img in arb_image(), threshold in 0.3f64..0.95) {
        let mut config = CspConfig::default();
        config.binarize_threshold = threshold;
        let staged = count_csp(&img, &config);
        let fused = count_csp_planned(&img, &config);
        prop_assert_eq!(fused.count, staged.count);
        prop_assert_eq!(fused.components, staged.components);
    }

    #[test]
    fn radial_profile_accounts_for_every_pixel(img in arb_image()) {
        let profile = radial_profile(&img);
        let total: usize = profile.count.iter().sum();
        prop_assert_eq!(total, img.width() * img.height());
        for r in 0..profile.len() {
            if profile.count[r] > 0 {
                prop_assert!(profile.max[r] >= profile.mean[r] - 1e-12);
            }
        }
    }
}

#[test]
fn planned_paths_match_on_large_bluestein_sizes() {
    // 97 and 31 are primes well past the small mixed-radix factors, so both
    // axes go through the Bluestein fallback.
    let img = Image::from_fn_gray(97, 31, |x, y| ((x * 13 + y * 29) % 251) as f64);
    let plain = dft2(&img);
    let planned = dft2_planned(&img);
    for (a, b) in planned.as_slice().iter().zip(plain.as_slice()) {
        assert!(a.re == b.re && a.im == b.im, "{a:?} != {b:?}");
    }
    let config = CspConfig::default();
    assert_eq!(count_csp_planned(&img, &config).count, count_csp(&img, &config).count);
}

// ---------------------------------------------------------------------------
// Vectorized-kernel equivalence suite (ISSUE 6): the dispatching radix-2
// implementation (twiddle plans + optional AVX butterflies) against the
// historical scalar loop, including NaN/inf-poisoned signals, and the fused
// CSP pass on poisoned images.
// ---------------------------------------------------------------------------

use std::f64::consts::PI;

/// The historical scalar radix-2 loop, kept verbatim as the bit-identity
/// reference for the dispatching implementation (same copy as the unit test
/// inside `fft.rs`, duplicated here because that one is crate-private).
fn radix2_scalar_reference(data: &mut [Complex64]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let theta = -2.0 * PI / len as f64;
        let w_len = Complex64::from_polar_unit(theta);
        for chunk in data.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(len / 2);
            let mut w = Complex64::ONE;
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let t = *b * w;
                let av = *a;
                *a = av + t;
                *b = av - t;
                w *= w_len;
            }
        }
        len <<= 1;
    }
}

/// Bit equality modulo NaN payloads (see `imaging/src/simd.rs` module docs:
/// IEEE NaN propagation through commutable `fadd`/`fmul` is not pinned by
/// the compiler, so when two distinct NaNs meet, either payload may win).
fn bits_match(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

fn arb_poisoned_component() -> impl Strategy<Value = f64> {
    prop_oneof![
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
    ]
}

fn arb_poisoned_pow2_signal() -> impl Strategy<Value = Vec<Complex64>> {
    (1u32..=7).prop_flat_map(|bits| {
        proptest::collection::vec((arb_poisoned_component(), arb_poisoned_component()), 1 << bits)
            .prop_map(|pairs| pairs.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
    })
}

fn arb_poisoned_image() -> impl Strategy<Value = Image> {
    (3usize..=12, 3usize..=12).prop_flat_map(|(w, h)| {
        proptest::collection::vec(arb_poisoned_component(), w * h)
            .prop_map(move |data| Image::from_gray_plane(w, h, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn radix2_matches_scalar_reference_on_poisoned_signals(
        input in arb_poisoned_pow2_signal(),
    ) {
        let mut reference = input.clone();
        radix2_scalar_reference(&mut reference);
        let mut fast = input;
        fft(&mut fast);
        for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
            prop_assert!(
                bits_match(a.re, b.re) && bits_match(a.im, b.im),
                "element {}: {:?} vs {:?}",
                i,
                a,
                b
            );
        }
    }

    #[test]
    fn csp_on_poisoned_images_never_panics(img in arb_poisoned_image()) {
        // NaN magnitudes fail every `>= threshold` comparison, so both the
        // staged and the fused pass must agree and return a sane report.
        let config = CspConfig::default();
        let staged = count_csp(&img, &config);
        let fused = count_csp_planned(&img, &config);
        prop_assert_eq!(fused.count, staged.count);
        prop_assert_eq!(fused.components, staged.components);
        prop_assert!(staged.count <= img.width() * img.height());
    }
}
