//! Deterministic exporters: Prometheus text exposition and JSON.
//!
//! Both exporters consume a [`RegistrySnapshot`] (already sorted by
//! `(name, labels)`) and emit no timestamps, so the same frozen registry
//! always produces byte-identical output — the property the CLI tests
//! diff against.

use crate::registry::{Labels, RegistrySnapshot};

/// Formats an `f64` the way the Prometheus text format expects:
/// `+Inf` / `-Inf` / `NaN` specials, shortest-round-trip decimal
/// otherwise (Rust's `{}` formatting for `f64` is shortest-round-trip).
fn format_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            other => escaped.push(other),
        }
    }
    escaped
}

/// Renders a label set as `{k="v",k2="v2"}`, or the empty string when
/// there are no labels. `extra` is appended last (used for `le`).
fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(key, value)| format!("{key}=\"{}\"", escape_label_value(value)))
        .collect();
    if let Some((key, value)) = extra {
        parts.push(format!("{key}=\"{}\"", escape_label_value(value)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            control if (control as u32) < 0x20 => {
                escaped.push_str(&format!("\\u{:04x}", control as u32));
            }
            other => escaped.push(other),
        }
    }
    escaped
}

/// Renders an `f64` as a JSON value; non-finite values become strings
/// (`"NaN"`, `"+Inf"`, `"-Inf"`) since JSON has no literals for them.
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        format!("\"{}\"", format_value(value))
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Guarantees: one `# TYPE` line per metric family, families and series
/// sorted by `(name, labels)`, histograms expanded to cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`, no timestamps, and
/// a trailing newline. Output is a pure function of the snapshot.
pub fn to_prometheus_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;

    for (name, labels, value) in &snapshot.counters {
        if last_family != Some(name.as_str()) {
            out.push_str(&format!("# TYPE {name} counter\n"));
            last_family = Some(name.as_str());
        }
        out.push_str(&format!("{name}{} {value}\n", render_labels(labels, None)));
    }
    last_family = None;
    for (name, labels, value) in &snapshot.gauges {
        if last_family != Some(name.as_str()) {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            last_family = Some(name.as_str());
        }
        out.push_str(&format!("{name}{} {}\n", render_labels(labels, None), format_value(*value)));
    }
    last_family = None;
    for (name, labels, histogram) in &snapshot.histograms {
        if last_family != Some(name.as_str()) {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            last_family = Some(name.as_str());
        }
        for (bound, cumulative) in histogram.cumulative() {
            let le = format_value(bound);
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                render_labels(labels, Some(("le", &le)))
            ));
        }
        out.push_str(&format!(
            "{name}_sum{} {}\n",
            render_labels(labels, None),
            format_value(histogram.sum())
        ));
        out.push_str(&format!(
            "{name}_count{} {}\n",
            render_labels(labels, None),
            histogram.count()
        ));
    }
    out
}

/// Renders one label set as a JSON object.
fn labels_json(labels: &Labels) -> String {
    let fields: Vec<String> = labels
        .iter()
        .map(|(key, value)| format!("\"{}\":\"{}\"", escape_json(key), escape_json(value)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders a snapshot as a deterministic JSON document:
/// `{"counters":[...],"gauges":[...],"histograms":[...]}` with series in
/// the snapshot's `(name, labels)` order, no timestamps, and a trailing
/// newline. Histogram entries carry bounds, per-bucket counts, count,
/// sum, mean, stddev, and the p50/p90/p99/p999 bucket-bound quantiles.
pub fn to_json(snapshot: &RegistrySnapshot) -> String {
    let counters: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(name, labels, value)| {
            format!(
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{value}}}",
                escape_json(name),
                labels_json(labels)
            )
        })
        .collect();
    let gauges: Vec<String> = snapshot
        .gauges
        .iter()
        .map(|(name, labels, value)| {
            format!(
                "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                escape_json(name),
                labels_json(labels),
                json_number(*value)
            )
        })
        .collect();
    let histograms: Vec<String> = snapshot
        .histograms
        .iter()
        .map(|(name, labels, histogram)| {
            let bounds: Vec<String> = histogram.bounds().iter().map(|b| json_number(*b)).collect();
            let buckets: Vec<String> =
                histogram.bucket_counts().iter().map(|c| c.to_string()).collect();
            let quantile = |q: f64| match histogram.quantile(q) {
                Some(value) => json_number(value),
                None => "null".to_string(),
            };
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"labels\":{},\"bounds\":[{}],\"buckets\":[{}],",
                    "\"count\":{},\"sum\":{},\"mean\":{},\"stddev\":{},",
                    "\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}"
                ),
                escape_json(name),
                labels_json(labels),
                bounds.join(","),
                buckets.join(","),
                histogram.count(),
                json_number(histogram.sum()),
                json_number(histogram.mean()),
                json_number(histogram.stddev()),
                quantile(0.5),
                quantile(0.9),
                quantile(0.99),
                quantile(0.999),
            )
        })
        .collect();
    format!(
        "{{\n  \"counters\": [{}],\n  \"gauges\": [{}],\n  \"histograms\": [{}]\n}}\n",
        counters.join(","),
        gauges.join(","),
        histograms.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry.counter("decam_jobs_total", &[("pool", "global")]).add(7);
        registry.gauge("decam_queue_depth", &[]).set(2.0);
        let histogram = registry.histogram("decam_score_seconds", &[("method", "scaling/mse")]);
        histogram.record(0.0015);
        histogram.record(0.003);
        registry
    }

    #[test]
    fn prometheus_text_is_deterministic() {
        let registry = sample_registry();
        let a = to_prometheus_text(&registry.snapshot());
        let b = to_prometheus_text(&registry.snapshot());
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn prometheus_text_declares_types_and_series() {
        let text = to_prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE decam_jobs_total counter"));
        assert!(text.contains("decam_jobs_total{pool=\"global\"} 7"));
        assert!(text.contains("# TYPE decam_queue_depth gauge"));
        assert!(text.contains("decam_queue_depth 2"));
        assert!(text.contains("# TYPE decam_score_seconds histogram"));
        assert!(text.contains("decam_score_seconds_bucket{method=\"scaling/mse\",le=\"+Inf\"} 2"));
        assert!(text.contains("decam_score_seconds_count{method=\"scaling/mse\"} 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter("decam_odd_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = to_prometheus_text(&registry.snapshot());
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let registry = sample_registry();
        let a = to_json(&registry.snapshot());
        let b = to_json(&registry.snapshot());
        assert_eq!(a, b);
        assert!(a.contains("\"name\":\"decam_jobs_total\""));
        assert!(a.contains("\"value\":7"));
        assert!(a.contains("\"p50\":0.002"));
        assert!(a.contains("\"p999\":0.005"), "tail quantile is part of the summary: {a}");
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let registry = MetricsRegistry::new();
        assert_eq!(to_prometheus_text(&registry.snapshot()), "");
        let json = to_json(&registry.snapshot());
        assert!(json.contains("\"counters\": []"));
    }
}
