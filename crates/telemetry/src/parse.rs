//! A strict, small parser for the Prometheus text exposition format.
//!
//! Used by CI and the CLI tests to prove the exported text round-trips:
//! every sample line must belong to a declared `# TYPE` family, labels
//! must be well-formed, values must parse, and histogram invariants
//! (cumulative bucket monotonicity, `+Inf` bucket == `_count`) must
//! hold. It accepts exactly the subset [`crate::to_prometheus_text`]
//! emits, plus `# HELP` comments.

use std::collections::BTreeMap;

/// The declared type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// A monotonically increasing counter.
    Counter,
    /// A gauge that can move in either direction.
    Gauge,
    /// A bucketed histogram (`_bucket`/`_sum`/`_count` series).
    Histogram,
}

/// One parsed sample line: label set (sorted) and value.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sorted label key/value pairs, including `le` for bucket series.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed metric family: its declared kind and all sample lines seen
/// for it, keyed by the suffix (`""`, `"_bucket"`, `"_sum"`, `"_count"`).
#[derive(Debug, Clone)]
pub struct ParsedFamily {
    /// Declared kind from the `# TYPE` line.
    pub kind: FamilyKind,
    /// Samples grouped by series suffix.
    pub samples: BTreeMap<String, Vec<ParsedSample>>,
}

/// The parsed exposition: families keyed by name.
#[derive(Debug, Clone, Default)]
pub struct ParsedMetrics {
    /// Families keyed by metric name.
    pub families: BTreeMap<String, ParsedFamily>,
}

impl ParsedMetrics {
    /// Names of all declared families.
    pub fn family_names(&self) -> Vec<&str> {
        self.families.keys().map(String::as_str).collect()
    }

    /// True when a family with this name was declared.
    pub fn has_family(&self, name: &str) -> bool {
        self.families.contains_key(name)
    }

    /// The value of a counter/gauge sample with the given labels, if
    /// present. Labels are matched as a sorted set.
    pub fn sample_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let family = self.families.get(name)?;
        let mut wanted: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        wanted.sort();
        family
            .samples
            .get("")?
            .iter()
            .find(|sample| sample.labels == wanted)
            .map(|sample| sample.value)
    }
}

/// A parse or validation failure, with the offending line number
/// (1-based) where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number, or 0 for document-level failures.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// True for a valid metric/label identifier: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(first) if first.is_ascii_alphabetic() || first == '_' || first == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses the `{k="v",...}` label block, returning sorted pairs.
fn parse_labels(block: &str, line: usize) -> Result<Vec<(String, String)>, ParseError> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| err(line, format!("label missing '=': {rest:?}")))?;
        let key = &rest[..eq];
        if !is_identifier(key) {
            return Err(err(line, format!("bad label name: {key:?}")));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(err(line, "label value must be double-quoted"));
        }
        rest = &rest[1..];
        // Walk to the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((index, ch)) = chars.next() {
            match ch {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => {
                        return Err(err(line, format!("bad escape in label value: {other:?}")))
                    }
                },
                '"' => {
                    end = Some(index);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or_else(|| err(line, "unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
            if rest.is_empty() {
                return Err(err(line, "trailing comma in label block"));
            }
        } else if !rest.is_empty() {
            return Err(err(line, format!("junk after label value: {rest:?}")));
        }
    }
    labels.sort();
    Ok(labels)
}

/// Parses a sample value, accepting the Prometheus specials.
fn parse_value(raw: &str, line: usize) -> Result<f64, ParseError> {
    match raw {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => {
            other.parse::<f64>().map_err(|_| err(line, format!("bad sample value: {other:?}")))
        }
    }
}

/// Splits a sample name into `(family, suffix)` given the set of
/// declared families: `decam_x_seconds_bucket` → `("decam_x_seconds",
/// "_bucket")` when `decam_x_seconds` is a declared histogram.
fn resolve_family<'a>(
    name: &'a str,
    families: &BTreeMap<String, ParsedFamily>,
) -> Option<(&'a str, &'a str)> {
    if let Some(family) = families.get(name) {
        // Histograms have no bare series in our exposition.
        if family.kind != FamilyKind::Histogram {
            return Some((name, ""));
        }
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families.get(stem).map(|f| f.kind) == Some(FamilyKind::Histogram) {
                return Some((stem, suffix));
            }
        }
    }
    None
}

/// Parses and validates a Prometheus text exposition document.
///
/// # Errors
///
/// [`ParseError`] on the first malformed line or violated invariant:
/// undeclared sample, duplicate `# TYPE`, bad label syntax, unparseable
/// value, non-cumulative histogram buckets, or a `+Inf` bucket that
/// disagrees with `_count`.
pub fn parse_prometheus_text(text: &str) -> Result<ParsedMetrics, ParseError> {
    let mut parsed = ParsedMetrics::default();
    for (index, raw_line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw_line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(type_decl) = comment.strip_prefix("TYPE ") {
                let mut parts = type_decl.split_whitespace();
                let name =
                    parts.next().ok_or_else(|| err(line_no, "TYPE line missing metric name"))?;
                let kind = match parts.next() {
                    Some("counter") => FamilyKind::Counter,
                    Some("gauge") => FamilyKind::Gauge,
                    Some("histogram") => FamilyKind::Histogram,
                    other => return Err(err(line_no, format!("unknown metric kind {other:?}"))),
                };
                if !is_identifier(name) {
                    return Err(err(line_no, format!("bad metric name: {name:?}")));
                }
                if parsed.families.contains_key(name) {
                    return Err(err(line_no, format!("duplicate TYPE for {name}")));
                }
                parsed
                    .families
                    .insert(name.to_string(), ParsedFamily { kind, samples: BTreeMap::new() });
            }
            // `# HELP` and other comments are permitted and ignored.
            continue;
        }

        // Sample line: name[{labels}] value
        let (name_and_labels, value_raw) =
            line.rsplit_once(' ').ok_or_else(|| err(line_no, "sample line missing value"))?;
        let value = parse_value(value_raw, line_no)?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let block = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err(line_no, "unterminated label block"))?;
                (name, parse_labels(block, line_no)?)
            }
            None => (name_and_labels, Vec::new()),
        };
        if !is_identifier(name) {
            return Err(err(line_no, format!("bad sample name: {name:?}")));
        }
        let (family_name, suffix) = resolve_family(name, &parsed.families)
            .ok_or_else(|| err(line_no, format!("sample {name:?} has no TYPE declaration")))?;
        if parsed.families[family_name].kind == FamilyKind::Counter
            && (value < 0.0 || value.is_nan())
        {
            return Err(err(line_no, format!("counter {name} has non-countable value {value}")));
        }
        parsed
            .families
            .get_mut(family_name)
            .expect("family resolved above")
            .samples
            .entry(suffix.to_string())
            .or_default()
            .push(ParsedSample { labels, value });
    }

    validate_histograms(&parsed)?;
    Ok(parsed)
}

/// Checks histogram invariants: buckets cumulative per series, an `+Inf`
/// bucket present, and `_count` equal to that terminal bucket.
fn validate_histograms(parsed: &ParsedMetrics) -> Result<(), ParseError> {
    for (name, family) in &parsed.families {
        if family.kind != FamilyKind::Histogram {
            continue;
        }
        // Group bucket samples by their non-`le` labels: each entry maps
        // a label set to its `(le, cumulative count)` pairs.
        type BucketSeries = BTreeMap<Vec<(String, String)>, Vec<(f64, f64)>>;
        let mut series: BucketSeries = BTreeMap::new();
        for sample in family.samples.get("_bucket").map(Vec::as_slice).unwrap_or(&[]) {
            let mut rest = sample.labels.clone();
            let le_pos = rest
                .iter()
                .position(|(k, _)| k == "le")
                .ok_or_else(|| err(0, format!("{name}_bucket sample missing le label")))?;
            let (_, le_raw) = rest.remove(le_pos);
            let le = parse_value(&le_raw, 0)?;
            series.entry(rest).or_default().push((le, sample.value));
        }
        for (labels, mut buckets) in series {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut previous = 0.0;
            for &(_, cumulative) in &buckets {
                if cumulative < previous {
                    return Err(err(0, format!("{name} buckets not cumulative")));
                }
                previous = cumulative;
            }
            let terminal = buckets
                .last()
                .filter(|(le, _)| *le == f64::INFINITY)
                .ok_or_else(|| err(0, format!("{name} missing +Inf bucket")))?
                .1;
            let count = family
                .samples
                .get("_count")
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .find(|sample| sample.labels == labels)
                .ok_or_else(|| err(0, format!("{name} missing _count series")))?
                .value;
            if count != terminal {
                return Err(err(
                    0,
                    format!("{name} _count {count} disagrees with +Inf bucket {terminal}"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_prometheus_text;
    use crate::registry::MetricsRegistry;

    #[test]
    fn round_trips_exported_text() {
        let registry = MetricsRegistry::new();
        registry.counter("decam_jobs_total", &[("pool", "global")]).add(3);
        registry.gauge("decam_queue_depth", &[]).set(1.5);
        let histogram = registry.histogram("decam_score_seconds", &[("method", "scaling/mse")]);
        histogram.record(0.002);
        histogram.record(0.4);
        let text = to_prometheus_text(&registry.snapshot());
        let parsed = parse_prometheus_text(&text).expect("exported text must parse");
        assert!(parsed.has_family("decam_jobs_total"));
        assert_eq!(parsed.sample_value("decam_jobs_total", &[("pool", "global")]), Some(3.0));
        assert_eq!(parsed.sample_value("decam_queue_depth", &[]), Some(1.5));
        assert_eq!(parsed.families["decam_score_seconds"].kind, FamilyKind::Histogram);
    }

    #[test]
    fn undeclared_samples_are_rejected() {
        let e = parse_prometheus_text("decam_orphan_total 1\n").unwrap_err();
        assert!(e.message.contains("no TYPE declaration"), "{e}");
    }

    #[test]
    fn non_cumulative_buckets_are_rejected() {
        let text = "# TYPE decam_h histogram\n\
                    decam_h_bucket{le=\"1\"} 5\n\
                    decam_h_bucket{le=\"+Inf\"} 3\n\
                    decam_h_sum 1\n\
                    decam_h_count 3\n";
        let e = parse_prometheus_text(text).unwrap_err();
        assert!(e.message.contains("not cumulative"), "{e}");
    }

    #[test]
    fn count_must_match_inf_bucket() {
        let text = "# TYPE decam_h histogram\n\
                    decam_h_bucket{le=\"+Inf\"} 3\n\
                    decam_h_sum 1\n\
                    decam_h_count 4\n";
        let e = parse_prometheus_text(text).unwrap_err();
        assert!(e.message.contains("disagrees"), "{e}");
    }

    #[test]
    fn negative_counters_are_rejected() {
        let text = "# TYPE decam_bad_total counter\ndecam_bad_total -1\n";
        let e = parse_prometheus_text(text).unwrap_err();
        assert!(e.message.contains("non-countable"), "{e}");
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("decam_odd_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = to_prometheus_text(&registry.snapshot());
        let parsed = parse_prometheus_text(&text).expect("escapes must parse");
        assert_eq!(parsed.sample_value("decam_odd_total", &[("path", "a\"b\\c\nd")]), Some(1.0));
    }

    #[test]
    fn duplicate_type_lines_are_rejected() {
        let text = "# TYPE decam_a counter\n# TYPE decam_a counter\n";
        assert!(parse_prometheus_text(text).is_err());
    }

    #[test]
    fn help_comments_are_ignored() {
        let text = "# HELP decam_a helpful words\n# TYPE decam_a counter\ndecam_a 1\n";
        assert!(parse_prometheus_text(text).is_ok());
    }
}
