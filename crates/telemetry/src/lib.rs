//! Dependency-free operational telemetry for the Decamouflage pipeline.
//!
//! The crate is pure `std` (the workspace is offline) and is built
//! around one rule: **telemetry must never perturb detection**. The
//! [`Telemetry`] handle is a cheap clone around an optional
//! [`MetricsRegistry`]; when disabled it holds `None` and every
//! operation — including [`SpanTimer`] construction — is a no-op that
//! never calls [`std::time::Instant::now`], allocates, or takes a lock.
//! Scores therefore stay bit-identical with telemetry on or off, which
//! the bench crate asserts.
//!
//! # Layout
//!
//! - [`histogram`]: log-bucketed latency [`Histogram`] with exact
//!   moments, merge, and quantiles.
//! - [`registry`]: the atomic [`MetricsRegistry`] of named counters,
//!   gauges, and histograms.
//! - [`export`]: deterministic Prometheus-text and JSON exporters.
//! - [`parse`]: a strict parser for the exported Prometheus text, used
//!   by CI to prove the exposition round-trips.
//!
//! # Example
//!
//! ```
//! use decamouflage_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled();
//! telemetry.counter("decam_jobs_total", &[]).inc();
//! {
//!     let _span = telemetry.span("decam_stage_seconds", &[("stage", "dft")]);
//!     // ... timed work ...
//! }
//! let text = telemetry.prometheus_text().unwrap();
//! assert!(text.contains("decam_jobs_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod parse;
pub mod registry;

pub use export::{to_json, to_prometheus_text};
pub use histogram::{BucketMismatch, Histogram, HistogramSnapshot, DEFAULT_LATENCY_BOUNDS};
pub use parse::{parse_prometheus_text, FamilyKind, ParseError, ParsedMetrics};
pub use registry::{CounterCell, GaugeCell, Labels, MetricsRegistry, RegistrySnapshot};

use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A shareable telemetry handle: either enabled (wrapping a registry)
/// or disabled (every operation a no-op).
///
/// Cloning is a single `Option<Arc>` clone. The default is disabled, so
/// types embedding a `Telemetry` field pay nothing until a caller opts
/// in via [`Telemetry::enabled`] or [`install_global`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Option<Arc<MetricsRegistry>>,
}

impl Telemetry {
    /// A disabled handle: all recording operations are no-ops.
    pub fn disabled() -> Self {
        Self { registry: None }
    }

    /// An enabled handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Self { registry: Some(Arc::new(MetricsRegistry::new())) }
    }

    /// An enabled handle sharing an existing registry.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        Self { registry: Some(registry) }
    }

    /// True when this handle records into a registry.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, when enabled.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// A counter handle for `(name, labels)`; a no-op cell when
    /// disabled.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter { cell: self.registry.as_ref().map(|r| r.counter(name, labels)) }
    }

    /// A gauge handle for `(name, labels)`; a no-op cell when disabled.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge { cell: self.registry.as_ref().map(|r| r.gauge(name, labels)) }
    }

    /// A histogram handle for `(name, labels)`; a no-op cell when
    /// disabled.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        HistogramHandle { cell: self.registry.as_ref().map(|r| r.histogram(name, labels)) }
    }

    /// Starts an RAII span that records its elapsed seconds into the
    /// named histogram when dropped. When disabled, no clock is read.
    pub fn span(&self, name: &str, labels: &[(&str, &str)]) -> SpanTimer {
        self.histogram(name, labels).span()
    }

    /// Snapshot of the backing registry; `None` when disabled.
    pub fn snapshot(&self) -> Option<RegistrySnapshot> {
        self.registry.as_ref().map(|r| r.snapshot())
    }

    /// Prometheus text exposition of the current state; `None` when
    /// disabled.
    pub fn prometheus_text(&self) -> Option<String> {
        self.snapshot().map(|s| to_prometheus_text(&s))
    }

    /// JSON export of the current state; `None` when disabled.
    pub fn json(&self) -> Option<String> {
        self.snapshot().map(|s| to_json(&s))
    }
}

/// A counter handle; a no-op when obtained from a disabled
/// [`Telemetry`].
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// Adds `delta` (saturating).
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.add(delta);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value; `0` when disabled.
    pub fn value(&self) -> u64 {
        self.cell.as_ref().map(|c| c.value()).unwrap_or(0)
    }
}

/// A gauge handle; a no-op when obtained from a disabled [`Telemetry`].
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.set(value);
        }
    }

    /// Adds `delta` (negative decrements).
    pub fn add(&self, delta: f64) {
        if let Some(cell) = &self.cell {
            cell.add(delta);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value; `0.0` when disabled.
    pub fn value(&self) -> f64 {
        self.cell.as_ref().map(|c| c.value()).unwrap_or(0.0)
    }
}

/// A histogram handle; a no-op when obtained from a disabled
/// [`Telemetry`].
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle {
    cell: Option<Arc<Histogram>>,
}

impl HistogramHandle {
    /// Records one sample.
    pub fn record(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.record(value);
        }
    }

    /// Starts an RAII span recording its elapsed seconds into this
    /// histogram on drop. Pre-resolving the handle and spanning from it
    /// keeps the hot path free of registry lookups; when the handle is
    /// disabled no clock is read.
    pub fn span(&self) -> SpanTimer {
        SpanTimer { inner: self.cell.as_ref().map(|cell| (Instant::now(), Arc::clone(cell))) }
    }

    /// Snapshot of the histogram; `None` when disabled.
    pub fn snapshot(&self) -> Option<HistogramSnapshot> {
        self.cell.as_ref().map(|c| c.snapshot())
    }
}

/// An RAII stage timer: created by [`Telemetry::span`], records the
/// elapsed wall-clock seconds into its histogram on drop. When the
/// originating handle is disabled, construction and drop are both
/// no-ops and the clock is never read.
#[derive(Debug)]
pub struct SpanTimer {
    inner: Option<(Instant, Arc<Histogram>)>,
}

impl SpanTimer {
    /// Discards the span without recording (e.g. on an error path that
    /// should not pollute latency statistics).
    pub fn cancel(mut self) {
        self.inner = None;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((started, histogram)) = self.inner.take() {
            histogram.record(started.elapsed().as_secs_f64());
        }
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// Installs a process-global telemetry handle. Returns `false` if one
/// was already installed (first install wins — the global is immutable
/// for the life of the process so hot paths can cache handles).
pub fn install_global(telemetry: Telemetry) -> bool {
    GLOBAL.set(telemetry).is_ok()
}

/// The process-global telemetry handle; disabled until
/// [`install_global`] is called.
pub fn global() -> Telemetry {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        let counter = telemetry.counter("decam_x_total", &[]);
        counter.inc();
        assert_eq!(counter.value(), 0);
        let gauge = telemetry.gauge("decam_g", &[]);
        gauge.set(9.0);
        assert_eq!(gauge.value(), 0.0);
        let histogram = telemetry.histogram("decam_h", &[]);
        histogram.record(1.0);
        assert!(histogram.snapshot().is_none());
        drop(telemetry.span("decam_h", &[]));
        assert!(telemetry.snapshot().is_none());
        assert!(telemetry.prometheus_text().is_none());
    }

    #[test]
    fn span_records_into_histogram() {
        let telemetry = Telemetry::enabled();
        {
            let _span = telemetry.span("decam_stage_seconds", &[("stage", "test")]);
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let snapshot = telemetry
            .histogram("decam_stage_seconds", &[("stage", "test")])
            .snapshot()
            .expect("enabled");
        assert_eq!(snapshot.count(), 1);
        assert!(snapshot.sum() > 0.0);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let telemetry = Telemetry::enabled();
        telemetry.span("decam_stage_seconds", &[]).cancel();
        let snapshot = telemetry.histogram("decam_stage_seconds", &[]).snapshot().expect("enabled");
        assert_eq!(snapshot.count(), 0);
    }

    #[test]
    fn clones_share_the_registry() {
        let telemetry = Telemetry::enabled();
        let clone = telemetry.clone();
        clone.counter("decam_shared_total", &[]).inc();
        assert_eq!(telemetry.counter("decam_shared_total", &[]).value(), 1);
    }

    #[test]
    fn global_defaults_to_disabled() {
        // Never install in tests — the global is process-wide and other
        // tests in this binary must see the default.
        assert!(!global().is_enabled() || GLOBAL.get().is_some());
    }
}
