//! The atomic metrics registry: named counters, gauges, and histograms.
//!
//! A [`MetricsRegistry`] maps `(name, sorted label pairs)` keys to shared
//! metric cells. Registration (the map lookup) takes a mutex, but the
//! returned cells are lock-free atomics — hot paths register once and
//! hold the handle. Names must be consistent per kind: re-registering a
//! name as a different metric kind yields a *detached* cell that records
//! normally but is never exported, so a wiring mistake degrades to a
//! silent no-op instead of a panic in the serving path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{BucketMismatch, Histogram, HistogramSnapshot, DEFAULT_LATENCY_BOUNDS};

/// A label set: key/value pairs kept sorted by key for deterministic
/// identity and export ordering.
pub type Labels = Vec<(String, String)>;

/// Normalises a label slice into the canonical sorted representation.
fn canonical_labels(labels: &[(&str, &str)]) -> Labels {
    let mut owned: Labels = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    owned.sort();
    owned
}

/// A monotonically increasing counter cell. Saturates at `u64::MAX`
/// instead of wrapping, so a long-lived process can never report a
/// counter going backwards.
#[derive(Debug, Default)]
pub struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    /// Adds `delta`, saturating at `u64::MAX`.
    pub fn add(&self, delta: u64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(delta);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge cell: an `f64` that can move in either direction, stored as
/// `AtomicU64` bits.
#[derive(Debug)]
pub struct GaugeCell {
    bits: AtomicU64,
}

impl Default for GaugeCell {
    fn default() -> Self {
        Self { bits: AtomicU64::new(0.0f64.to_bits()) }
    }
}

impl GaugeCell {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (negative deltas decrement) via a CAS loop.
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// One registered metric cell, tagged by kind.
#[derive(Debug)]
enum RegisteredMetric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<Histogram>),
}

/// A frozen, export-ready copy of every metric in a registry, already in
/// deterministic `(name, labels)` order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counters as `(name, labels, value)`.
    pub counters: Vec<(String, Labels, u64)>,
    /// Gauges as `(name, labels, value)`.
    pub gauges: Vec<(String, Labels, f64)>,
    /// Histograms as `(name, labels, snapshot)`.
    pub histograms: Vec<(String, Labels, HistogramSnapshot)>,
}

/// Merge-joins two sorted `(name, labels, value)` series, combining the
/// values of shared keys and passing unmatched entries through.
fn merge_series<T: Clone, E>(
    left: &[(String, Labels, T)],
    right: &[(String, Labels, T)],
    mut combine: impl FnMut(&T, &T) -> Result<T, E>,
) -> Result<Vec<(String, Labels, T)>, E> {
    let mut out = Vec::with_capacity(left.len().max(right.len()));
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        let (a, b) = (&left[i], &right[j]);
        match (&a.0, &a.1).cmp(&(&b.0, &b.1)) {
            std::cmp::Ordering::Less => {
                out.push(a.clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b.clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a.0.clone(), a.1.clone(), combine(&a.2, &b.2)?));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    Ok(out)
}

impl RegistrySnapshot {
    /// True when the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Combines two snapshots taken by *independent* processes (e.g. the
    /// shards of a partitioned corpus scan) into the snapshot one process
    /// doing all the work would have produced: counters add, histograms
    /// merge bucket-wise with exact summed moments
    /// ([`HistogramSnapshot::merge`]), and gauges — point-in-time levels
    /// with no meaningful sum — keep the maximum observed value. Metrics
    /// present on one side only pass through unchanged, so shards with
    /// different lifetimes still merge.
    ///
    /// # Errors
    ///
    /// [`BucketMismatch`] when both sides hold a histogram under the same
    /// `(name, labels)` key but with different bucket layouts.
    pub fn merge(&self, other: &RegistrySnapshot) -> Result<RegistrySnapshot, BucketMismatch> {
        Ok(RegistrySnapshot {
            counters: merge_series(&self.counters, &other.counters, |a, b| {
                Ok::<_, BucketMismatch>(a.saturating_add(*b))
            })?,
            gauges: merge_series(&self.gauges, &other.gauges, |a, b| {
                Ok::<_, BucketMismatch>(a.max(*b))
            })?,
            histograms: merge_series(&self.histograms, &other.histograms, |a, b| a.merge(b))?,
        })
    }
}

/// A registry of named metric cells with deterministic snapshot ordering.
///
/// # Example
///
/// ```
/// use decamouflage_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// registry.counter("decam_demo_total", &[("kind", "a")]).inc();
/// registry.gauge("decam_demo_depth", &[]).set(3.0);
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counters[0].2, 1);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<(String, Labels), RegisteredMetric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter cell for `(name, labels)`, creating it on
    /// first use. If the key already names a different metric kind, a
    /// detached (never exported) cell is returned instead.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<CounterCell> {
        let key = (name.to_string(), canonical_labels(labels));
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(key)
            .or_insert_with(|| RegisteredMetric::Counter(Arc::new(CounterCell::default())))
        {
            RegisteredMetric::Counter(cell) => Arc::clone(cell),
            _ => Arc::new(CounterCell::default()),
        }
    }

    /// Returns the gauge cell for `(name, labels)`, creating it on first
    /// use. Kind mismatches yield a detached cell, as with
    /// [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<GaugeCell> {
        let key = (name.to_string(), canonical_labels(labels));
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(key)
            .or_insert_with(|| RegisteredMetric::Gauge(Arc::new(GaugeCell::default())))
        {
            RegisteredMetric::Gauge(cell) => Arc::clone(cell),
            _ => Arc::new(GaugeCell::default()),
        }
    }

    /// Returns the histogram for `(name, labels)`, creating it with the
    /// default latency bounds on first use. Kind mismatches yield a
    /// detached histogram, as with [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = (name.to_string(), canonical_labels(labels));
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics.entry(key).or_insert_with(|| {
            RegisteredMetric::Histogram(Arc::new(Histogram::new(&DEFAULT_LATENCY_BOUNDS)))
        }) {
            RegisteredMetric::Histogram(cell) => Arc::clone(cell),
            _ => Arc::new(Histogram::new(&DEFAULT_LATENCY_BOUNDS)),
        }
    }

    /// Takes a deterministic snapshot of every registered metric, sorted
    /// by `(name, labels)` — the input to both exporters.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut snapshot = RegistrySnapshot::default();
        for ((name, labels), metric) in metrics.iter() {
            match metric {
                RegisteredMetric::Counter(cell) => {
                    snapshot.counters.push((name.clone(), labels.clone(), cell.value()));
                }
                RegisteredMetric::Gauge(cell) => {
                    snapshot.gauges.push((name.clone(), labels.clone(), cell.value()));
                }
                RegisteredMetric::Histogram(cell) => {
                    snapshot.histograms.push((name.clone(), labels.clone(), cell.snapshot()));
                }
            }
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_cells_are_shared_per_key() {
        let registry = MetricsRegistry::new();
        registry.counter("decam_x_total", &[("k", "v")]).inc();
        registry.counter("decam_x_total", &[("k", "v")]).add(2);
        assert_eq!(registry.counter("decam_x_total", &[("k", "v")]).value(), 3);
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = MetricsRegistry::new();
        registry.counter("decam_x_total", &[("a", "1"), ("b", "2")]).inc();
        registry.counter("decam_x_total", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(registry.snapshot().counters.len(), 1);
        assert_eq!(registry.snapshot().counters[0].2, 2);
    }

    #[test]
    fn kind_mismatch_returns_detached_cell() {
        let registry = MetricsRegistry::new();
        registry.counter("decam_clash", &[]).inc();
        let gauge = registry.gauge("decam_clash", &[]);
        gauge.set(42.0);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters.len(), 1);
        assert_eq!(snapshot.counters[0].2, 1);
        assert!(snapshot.gauges.is_empty(), "detached gauge must not be exported");
    }

    #[test]
    fn gauge_add_and_dec() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("decam_depth", &[]);
        gauge.inc();
        gauge.inc();
        gauge.dec();
        gauge.add(0.5);
        assert!((gauge.value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_order_is_name_then_labels() {
        let registry = MetricsRegistry::new();
        registry.counter("decam_b_total", &[]).inc();
        registry.counter("decam_a_total", &[("m", "z")]).inc();
        registry.counter("decam_a_total", &[("m", "a")]).inc();
        let names: Vec<_> = registry
            .snapshot()
            .counters
            .iter()
            .map(|(name, labels, _)| (name.clone(), labels.clone()))
            .collect();
        assert_eq!(names[0].0, "decam_a_total");
        assert_eq!(names[0].1, vec![("m".to_string(), "a".to_string())]);
        assert_eq!(names[1].1, vec![("m".to_string(), "z".to_string())]);
        assert_eq!(names[2].0, "decam_b_total");
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let cell = CounterCell::default();
        cell.add(u64::MAX - 1);
        cell.add(5);
        assert_eq!(cell.value(), u64::MAX);
        cell.inc();
        assert_eq!(cell.value(), u64::MAX);
    }

    #[test]
    fn snapshot_merge_equals_one_process_doing_all_the_work() {
        // Two "shard" registries and one reference registry seeing the
        // union of their workloads.
        let shard_a = MetricsRegistry::new();
        let shard_b = MetricsRegistry::new();
        let reference = MetricsRegistry::new();
        for (value, shard) in [(0.001, &shard_a), (0.004, &shard_a), (0.02, &shard_b)] {
            shard.histogram("decam_lat_seconds", &[("stage", "x")]).record(value);
            reference.histogram("decam_lat_seconds", &[("stage", "x")]).record(value);
        }
        shard_a.counter("decam_items_total", &[]).add(2);
        shard_b.counter("decam_items_total", &[]).add(1);
        reference.counter("decam_items_total", &[]).add(3);
        shard_a.gauge("decam_peak", &[]).set(3.0);
        shard_b.gauge("decam_peak", &[]).set(5.0);
        reference.gauge("decam_peak", &[]).set(5.0);
        // A metric only one shard ever touched passes through unchanged.
        shard_b.counter("decam_only_b_total", &[]).inc();
        reference.counter("decam_only_b_total", &[]).inc();

        let merged = shard_a.snapshot().merge(&shard_b.snapshot()).unwrap();
        assert_eq!(merged, reference.snapshot());

        // Exact moments: merged count/sum/sum_sq are the per-shard sums.
        let a = &shard_a.snapshot().histograms[0].2;
        let b = &shard_b.snapshot().histograms[0].2;
        let m = &merged.histograms[0].2;
        assert_eq!(m.count(), a.count() + b.count());
        assert_eq!(m.sum(), a.sum() + b.sum());
        assert_eq!(m.sum_sq(), a.sum_sq() + b.sum_sq());
    }

    #[test]
    fn snapshot_merge_rejects_mismatched_bucket_layouts() {
        let narrow = HistogramSnapshot::from_parts(vec![1.0], vec![1, 0], 1, 0.5, 0.25).unwrap();
        let wide =
            HistogramSnapshot::from_parts(vec![1.0, 2.0], vec![1, 0, 0], 1, 0.5, 0.25).unwrap();
        let a = RegistrySnapshot {
            histograms: vec![("decam_h".into(), Vec::new(), narrow)],
            ..Default::default()
        };
        let b = RegistrySnapshot {
            histograms: vec![("decam_h".into(), Vec::new(), wide)],
            ..Default::default()
        };
        assert_eq!(a.merge(&b), Err(BucketMismatch));
        assert_eq!(a.merge(&a).unwrap().histograms[0].2.count(), 2);
    }
}
