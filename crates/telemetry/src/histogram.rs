//! Log-bucketed latency histograms with merge and quantile support.
//!
//! A [`Histogram`] is a fixed set of strictly increasing bucket upper
//! bounds (plus an implicit `+Inf` overflow bucket) whose counts are plain
//! atomics, so recording a sample is a handful of relaxed atomic
//! operations — cheap enough to sit on the per-image scoring path. Next to
//! the bucket counts it tracks the exact sample count, sum and sum of
//! squares, so mean and standard deviation are exact (not
//! bucket-quantised) while quantiles are read off the bucket boundaries.
//!
//! The default bounds ([`DEFAULT_LATENCY_BOUNDS`]) are a 1–2–5
//! log-decade series from 1 µs to 10 s, chosen so their decimal rendering
//! in the Prometheus exposition is short and exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default latency bucket upper bounds, in seconds: a 1–2–5 series per
/// decade from 1 µs to 10 s (22 finite buckets plus the implicit `+Inf`).
pub const DEFAULT_LATENCY_BOUNDS: [f64; 22] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1,
    0.2, 0.5, 1.0, 2.0, 5.0, 10.0,
];

/// Adds `delta` to an `f64` stored as `AtomicU64` bits via a CAS loop.
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// A thread-safe log-bucketed histogram of `f64` samples.
///
/// # Example
///
/// ```
/// use decamouflage_telemetry::Histogram;
///
/// let h = Histogram::latency_seconds();
/// h.record(0.003);
/// h.record(0.004);
/// let snapshot = h.snapshot();
/// assert_eq!(snapshot.count(), 2);
/// assert!((snapshot.mean() - 0.0035).abs() < 1e-12);
/// assert_eq!(snapshot.quantile(0.5), Some(0.005));
/// ```
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per finite bound plus the trailing `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bit patterns — see [`atomic_f64_add`].
    sum: AtomicU64,
    sum_sq: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given finite, strictly increasing
    /// bucket upper bounds. An `+Inf` overflow bucket is always appended.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// increasing — bucket layouts are static configuration, so a bad one
    /// is a programming error.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0.0f64.to_bits()),
            sum_sq: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// A histogram with the [`DEFAULT_LATENCY_BOUNDS`] (seconds).
    pub fn latency_seconds() -> Self {
        Self::new(&DEFAULT_LATENCY_BOUNDS)
    }

    /// The finite bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one sample: bumps the first bucket whose upper bound is
    /// `>= value` (the `+Inf` overflow bucket when none is) and folds the
    /// value into count / sum / sum-of-squares. Non-finite samples are
    /// ignored — they carry no usable magnitude and would poison the sums.
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let index = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum, value);
        atomic_f64_add(&self.sum_sq, value * value);
    }

    /// A point-in-time copy of the histogram state.
    ///
    /// Buckets are read individually, so a snapshot taken while writers
    /// are active may be mid-update; taken from a quiesced histogram
    /// (the exporter contract) it is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum.load(Ordering::Relaxed)),
            sum_sq: f64::from_bits(self.sum_sq.load(Ordering::Relaxed)),
        }
    }
}

/// Error merging two histogram snapshots with different bucket layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketMismatch;

impl std::fmt::Display for BucketMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cannot merge histograms with different bucket bounds")
    }
}

impl std::error::Error for BucketMismatch {}

/// An immutable copy of a [`Histogram`]'s state: per-bucket counts plus
/// the exact count / sum / sum-of-squares moments.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    bounds: Vec<f64>,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    sum_sq: f64,
}

impl HistogramSnapshot {
    /// Reassembles a snapshot from its serialised parts — the
    /// deserialisation counterpart of the accessors, used by checkpoint
    /// files that embed histogram state. Returns `None` unless the parts
    /// satisfy every [`Histogram`] invariant: non-empty, finite, strictly
    /// increasing bounds; one bucket per bound plus the `+Inf` overflow
    /// slot; bucket counts summing to `count`; finite moments.
    pub fn from_parts(
        bounds: Vec<f64>,
        buckets: Vec<u64>,
        count: u64,
        sum: f64,
        sum_sq: f64,
    ) -> Option<Self> {
        let valid_bounds = !bounds.is_empty()
            && bounds.iter().all(|b| b.is_finite())
            && bounds.windows(2).all(|w| w[0] < w[1]);
        let consistent = buckets.len() == bounds.len() + 1
            && buckets.iter().try_fold(0u64, |acc, &b| acc.checked_add(b)) == Some(count)
            && sum.is_finite()
            && sum_sq.is_finite();
        (valid_bounds && consistent).then_some(Self { bounds, buckets, count, sum, sum_sq })
    }

    /// The finite bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the final slot is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sum of squared samples (for exact standard deviations).
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq
    }

    /// Exact mean of the recorded samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Exact population standard deviation; `0.0` when empty.
    pub fn stddev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean).max(0.0).sqrt()
    }

    /// Upper-bound quantile estimate: the smallest bucket bound below
    /// which at least `q * count` samples fall. Returns `None` on an
    /// empty snapshot; samples in the overflow bucket report
    /// [`f64::INFINITY`]. `q` is clamped to `[0, 1]`.
    ///
    /// The estimate is monotone in `q` by construction (a cumulative scan
    /// over ordered buckets).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample the quantile lands on, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket);
            if cumulative >= rank {
                return Some(self.bounds.get(index).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// Median bucket-bound estimate — shorthand for `quantile(0.5)`.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th-percentile bucket-bound estimate — `quantile(0.99)`.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile bucket-bound estimate — `quantile(0.999)`.
    ///
    /// The tail quantile the service bench and load generator report;
    /// like every [`HistogramSnapshot::quantile`], it is monotone in `q`
    /// (p50 ≤ p99 ≤ p999 always holds) and reads off the same cumulative
    /// bucket scan.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Merges two snapshots of identically-configured histograms:
    /// bucket-wise count addition plus summed moments.
    ///
    /// # Errors
    ///
    /// [`BucketMismatch`] when the bucket bounds differ — counts from
    /// different layouts cannot be combined without losing meaning.
    pub fn merge(&self, other: &HistogramSnapshot) -> Result<HistogramSnapshot, BucketMismatch> {
        if self.bounds != other.bounds {
            return Err(BucketMismatch);
        }
        Ok(HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a.saturating_add(*b))
                .collect(),
            count: self.count.saturating_add(other.count),
            sum: self.sum + other.sum,
            sum_sq: self.sum_sq + other.sum_sq,
        })
    }

    /// Iterates `(upper_bound, cumulative_count)` pairs in bound order,
    /// ending with the `(+Inf, total)` overflow entry — the shape the
    /// Prometheus exposition format wants.
    pub fn cumulative(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut running = 0u64;
        self.buckets.iter().enumerate().map(move |(index, &bucket)| {
            running = running.saturating_add(bucket);
            (self.bounds.get(index).copied().unwrap_or(f64::INFINITY), running)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        for v in [0.5, 1.0, 1.5, 4.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        // 0.5 and 1.0 land in le=1, 1.5 in le=2, 4.0 in le=5, 100 overflows.
        assert_eq!(s.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 107.0);
    }

    #[test]
    fn bound_samples_are_inclusive_like_prometheus_le() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.record(2.0);
        assert_eq!(h.snapshot().bucket_counts(), &[0, 1, 0]);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let h = Histogram::latency_seconds();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn mean_and_stddev_are_exact() {
        let h = Histogram::new(&[10.0]);
        for v in [2.0, 4.0, 6.0, 8.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 5.0f64.sqrt());
    }

    #[test]
    fn cumulative_ends_at_total() {
        let h = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.5, 3.0] {
            h.record(v);
        }
        let pairs: Vec<_> = h.snapshot().cumulative().collect();
        assert_eq!(pairs, vec![(1.0, 1), (2.0, 2), (f64::INFINITY, 3)]);
    }

    #[test]
    fn named_quantiles_are_monotone_and_match_quantile() {
        let h = Histogram::new(&[0.001, 0.01, 0.1, 1.0]);
        // 996 fast samples, 3 slow, 1 very slow: p50 and p99 land in the
        // fast bucket, p999 must climb into the tail.
        for _ in 0..996 {
            h.record(0.0005);
        }
        for _ in 0..3 {
            h.record(0.05);
        }
        h.record(0.5);
        let s = h.snapshot();
        assert_eq!(s.p50(), s.quantile(0.5));
        assert_eq!(s.p99(), s.quantile(0.99));
        assert_eq!(s.p999(), s.quantile(0.999));
        assert_eq!(s.p50(), Some(0.001));
        assert_eq!(s.p99(), Some(0.001));
        assert_eq!(s.p999(), Some(0.1), "rank 1000*0.999=999 lands on the 0.05 samples");
        assert!(s.p50() <= s.p99() && s.p99() <= s.p999(), "quantiles are monotone");

        let empty = Histogram::new(&[1.0]).snapshot();
        assert_eq!(empty.p999(), None, "empty snapshots have no quantiles");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn empty_bounds_are_rejected() {
        let _ = Histogram::new(&[]);
    }

    #[test]
    fn from_parts_round_trips_a_snapshot_and_rejects_inconsistency() {
        let h = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.5, 3.0] {
            h.record(v);
        }
        let s = h.snapshot();
        let rebuilt = HistogramSnapshot::from_parts(
            s.bounds().to_vec(),
            s.bucket_counts().to_vec(),
            s.count(),
            s.sum(),
            s.sum_sq(),
        )
        .unwrap();
        assert_eq!(rebuilt, s);

        let parts = |bounds: &[f64], buckets: &[u64], count| {
            HistogramSnapshot::from_parts(bounds.to_vec(), buckets.to_vec(), count, 1.0, 1.0)
        };
        assert!(parts(&[], &[1], 1).is_none(), "empty bounds");
        assert!(parts(&[2.0, 1.0], &[0, 0, 1], 1).is_none(), "unsorted bounds");
        assert!(parts(&[f64::NAN], &[0, 1], 1).is_none(), "non-finite bound");
        assert!(parts(&[1.0], &[1], 1).is_none(), "missing overflow bucket");
        assert!(parts(&[1.0], &[1, 1], 1).is_none(), "buckets must sum to count");
        assert!(
            HistogramSnapshot::from_parts(vec![1.0], vec![1, 0], 1, f64::NAN, 1.0).is_none(),
            "non-finite sum"
        );
    }

    #[test]
    fn default_latency_bounds_are_valid_and_log_spaced() {
        let h = Histogram::latency_seconds();
        assert_eq!(h.bounds().len(), DEFAULT_LATENCY_BOUNDS.len());
        // Each decade holds the 1-2-5 triple: ratio between neighbours
        // stays within [2, 2.5].
        for w in DEFAULT_LATENCY_BOUNDS.windows(2) {
            let ratio = w[1] / w[0];
            assert!((1.9..=2.6).contains(&ratio), "ratio {ratio} out of the 1-2-5 ladder");
        }
    }
}
