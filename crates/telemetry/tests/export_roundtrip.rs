//! Exporter determinism and Prometheus round-trip guarantees: the same
//! frozen registry always renders byte-identically, and everything the
//! exporter emits is accepted by the strict in-tree parser with all
//! declared metrics present.

use decamouflage_telemetry::{
    parse_prometheus_text, to_json, to_prometheus_text, FamilyKind, MetricsRegistry, Telemetry,
};

/// Builds a registry resembling a real run: pipeline counters, pool
/// gauges, and per-stage latency histograms with awkward label values.
fn populated_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.counter("decam_engine_scored_total", &[]).add(128);
    registry.counter("decam_engine_quarantined_total", &[("fault", "non-finite-pixel")]).add(3);
    registry.counter("decam_engine_quarantined_total", &[("fault", "panic")]).inc();
    registry.counter("decam_pool_jobs_total", &[]).add(512);
    registry.gauge("decam_pool_queue_depth", &[]).set(0.0);
    registry.gauge("decam_pool_workers", &[]).set(8.0);
    for (stage, samples) in [
        ("scale_round_trip", vec![0.0011, 0.0012, 0.0015]),
        ("rank_filter", vec![0.0004, 0.00045]),
        ("dft", vec![0.003, 0.0028, 0.0041, 0.0033]),
    ] {
        let histogram = registry.histogram("decam_engine_stage_seconds", &[("stage", stage)]);
        for sample in samples {
            histogram.record(sample);
        }
    }
    for method in ["scaling/mse", "filtering/ssim", "steganalysis/csp"] {
        let histogram = registry.histogram("decam_method_score_seconds", &[("method", method)]);
        histogram.record(0.002);
    }
    registry
}

#[test]
fn prometheus_export_is_byte_stable_across_renders() {
    let registry = populated_registry();
    let renders: Vec<String> = (0..3).map(|_| to_prometheus_text(&registry.snapshot())).collect();
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[1], renders[2]);
}

#[test]
fn json_export_is_byte_stable_across_renders() {
    let registry = populated_registry();
    let a = to_json(&registry.snapshot());
    let b = to_json(&registry.snapshot());
    assert_eq!(a, b);
}

#[test]
fn exports_carry_no_timestamps() {
    // The exposition format would append a trailing integer timestamp
    // after the value; our lines are exactly `name[labels] value`.
    let text = to_prometheus_text(&populated_registry().snapshot());
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let fields: Vec<&str> = line.split(' ').collect();
        assert_eq!(fields.len(), 2, "unexpected extra field (timestamp?) in {line:?}");
    }
}

#[test]
fn exported_text_round_trips_through_the_strict_parser() {
    let registry = populated_registry();
    let text = to_prometheus_text(&registry.snapshot());
    let parsed = parse_prometheus_text(&text).expect("exporter output must satisfy the parser");

    // Every family the registry holds is declared and carries samples.
    for name in [
        "decam_engine_scored_total",
        "decam_engine_quarantined_total",
        "decam_pool_jobs_total",
        "decam_pool_queue_depth",
        "decam_pool_workers",
        "decam_engine_stage_seconds",
        "decam_method_score_seconds",
    ] {
        assert!(parsed.has_family(name), "missing family {name}");
    }
    assert_eq!(parsed.families["decam_engine_stage_seconds"].kind, FamilyKind::Histogram);
    assert_eq!(parsed.sample_value("decam_engine_scored_total", &[]), Some(128.0));
    assert_eq!(
        parsed.sample_value("decam_engine_quarantined_total", &[("fault", "panic")]),
        Some(1.0)
    );
    assert_eq!(parsed.sample_value("decam_pool_workers", &[]), Some(8.0));
}

#[test]
fn parsed_family_count_matches_registry() {
    let registry = populated_registry();
    let snapshot = registry.snapshot();
    let distinct_names: std::collections::BTreeSet<&str> = snapshot
        .counters
        .iter()
        .map(|(name, _, _)| name.as_str())
        .chain(snapshot.gauges.iter().map(|(name, _, _)| name.as_str()))
        .chain(snapshot.histograms.iter().map(|(name, _, _)| name.as_str()))
        .collect();
    let parsed = parse_prometheus_text(&to_prometheus_text(&snapshot)).expect("round trip");
    assert_eq!(parsed.family_names().len(), distinct_names.len());
}

#[test]
fn telemetry_handle_exports_match_direct_exports() {
    let telemetry = Telemetry::enabled();
    telemetry.counter("decam_demo_total", &[]).add(4);
    let registry = telemetry.registry().expect("enabled").clone();
    assert_eq!(telemetry.prometheus_text().unwrap(), to_prometheus_text(&registry.snapshot()));
    assert_eq!(telemetry.json().unwrap(), to_json(&registry.snapshot()));
}
