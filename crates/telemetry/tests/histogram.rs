//! Histogram edge-case coverage: empty snapshots, single samples,
//! counter saturation, merges whose samples occupy disjoint bucket
//! ranges, and quantile monotonicity as a property test.

use decamouflage_telemetry::registry::CounterCell;
use decamouflage_telemetry::{Histogram, HistogramSnapshot, DEFAULT_LATENCY_BOUNDS};
use proptest::prelude::*;

#[test]
fn empty_snapshot_has_no_quantiles_and_zero_moments() {
    let snapshot = Histogram::latency_seconds().snapshot();
    assert_eq!(snapshot.count(), 0);
    assert_eq!(snapshot.sum(), 0.0);
    assert_eq!(snapshot.mean(), 0.0);
    assert_eq!(snapshot.stddev(), 0.0);
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(snapshot.quantile(q), None, "quantile({q}) on empty snapshot");
    }
    assert!(snapshot.bucket_counts().iter().all(|&c| c == 0));
}

#[test]
fn single_sample_dominates_every_quantile() {
    let histogram = Histogram::latency_seconds();
    histogram.record(0.0033);
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.count(), 1);
    assert_eq!(snapshot.mean(), 0.0033);
    assert_eq!(snapshot.stddev(), 0.0);
    // Every quantile lands on the one occupied bucket's upper bound.
    for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
        assert_eq!(snapshot.quantile(q), Some(0.005), "quantile({q})");
    }
}

#[test]
fn single_overflow_sample_reports_infinite_quantile() {
    let histogram = Histogram::new(&[1.0]);
    histogram.record(50.0);
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.quantile(0.5), Some(f64::INFINITY));
}

#[test]
fn counter_saturates_at_max_instead_of_wrapping() {
    let cell = CounterCell::default();
    cell.add(u64::MAX - 2);
    cell.add(10);
    assert_eq!(cell.value(), u64::MAX);
    cell.inc();
    assert_eq!(cell.value(), u64::MAX, "increment past MAX must saturate");
}

#[test]
fn merge_of_disjoint_bucket_ranges_preserves_everything() {
    // Same layout, samples confined to disjoint bucket ranges: `low`
    // only fills the microsecond buckets, `high` only the >100ms ones.
    let low = Histogram::latency_seconds();
    for v in [1.5e-6, 3e-6, 8e-6] {
        low.record(v);
    }
    let high = Histogram::latency_seconds();
    for v in [0.15, 0.4, 3.0, 20.0] {
        high.record(v);
    }
    let merged = low.snapshot().merge(&high.snapshot()).expect("same bounds must merge");
    assert_eq!(merged.count(), 7);
    let expected_sum = 1.5e-6 + 3e-6 + 8e-6 + 0.15 + 0.4 + 3.0 + 20.0;
    assert!((merged.sum() - expected_sum).abs() < 1e-12);
    // Bucket-wise the merge is the union: no bucket lost, none doubled.
    let lows = low.snapshot();
    let highs = high.snapshot();
    for (index, &count) in merged.bucket_counts().iter().enumerate() {
        assert_eq!(count, lows.bucket_counts()[index] + highs.bucket_counts()[index]);
    }
    // Low quantiles come from `low`'s range, high ones from `high`'s.
    assert!(merged.quantile(0.2).unwrap() <= 1e-5);
    assert!(merged.quantile(0.9).unwrap() >= 0.2);
}

#[test]
fn merge_rejects_mismatched_layouts() {
    let a = Histogram::new(&[1.0, 2.0]).snapshot();
    let b = Histogram::new(&[1.0, 3.0]).snapshot();
    assert!(a.merge(&b).is_err());
}

#[test]
fn merge_is_commutative() {
    let a = Histogram::latency_seconds();
    a.record(0.002);
    let b = Histogram::latency_seconds();
    b.record(0.7);
    let ab = a.snapshot().merge(&b.snapshot()).unwrap();
    let ba = b.snapshot().merge(&a.snapshot()).unwrap();
    assert_eq!(ab, ba);
}

fn snapshot_of(samples: &[f64]) -> HistogramSnapshot {
    let histogram = Histogram::new(&DEFAULT_LATENCY_BOUNDS);
    for &sample in samples {
        histogram.record(sample);
    }
    histogram.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn quantiles_are_monotone_in_q(
        samples in proptest::collection::vec(1e-7f64..20.0, 1..64),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let snapshot = snapshot_of(&samples);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let at_lo = snapshot.quantile(lo).expect("non-empty");
        let at_hi = snapshot.quantile(hi).expect("non-empty");
        prop_assert!(
            at_lo <= at_hi,
            "quantile({lo}) = {at_lo} > quantile({hi}) = {at_hi}"
        );
    }

    #[test]
    fn quantile_bounds_bracket_the_samples(
        samples in proptest::collection::vec(1e-7f64..20.0, 1..64),
    ) {
        let snapshot = snapshot_of(&samples);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let q0 = snapshot.quantile(0.0).expect("non-empty");
        let q1 = snapshot.quantile(1.0).expect("non-empty");
        // The top quantile's bucket bound sits at or above the true max;
        // the bottom quantile can never exceed the top.
        prop_assert!(q1 >= max || q1 == f64::INFINITY);
        prop_assert!(q0 <= q1);
    }

    #[test]
    fn merge_agrees_with_recording_everything_into_one(
        first in proptest::collection::vec(1e-7f64..20.0, 0..32),
        second in proptest::collection::vec(1e-7f64..20.0, 0..32),
    ) {
        let merged = snapshot_of(&first).merge(&snapshot_of(&second)).expect("same bounds");
        let mut all = first.clone();
        all.extend_from_slice(&second);
        let direct = snapshot_of(&all);
        prop_assert_eq!(merged.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.sum() - direct.sum()).abs() < 1e-9);
    }
}
