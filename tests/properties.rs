//! Cross-crate property-based tests (proptest) on the invariants the
//! framework relies on.

use decamouflage::attack::{solve_1d_attack, QpConfig};
use decamouflage::detection::threshold::{percentile_blackbox, search_whitebox};
use decamouflage::detection::Direction;
use decamouflage::imaging::codec::{decode_pnm, encode_pgm, encode_ppm};
use decamouflage::imaging::filter::{maximum_filter, minimum_filter};
use decamouflage::imaging::scale::{resize, CoeffMatrix, ScaleAlgorithm};
use decamouflage::imaging::{Channels, Image};
use decamouflage::metrics::{mse, psnr, ssim, SsimConfig};
use proptest::prelude::*;

fn arb_gray_image(max_side: usize) -> impl Strategy<Value = Image> {
    (2usize..=max_side, 2usize..=max_side).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap())
    })
}

/// A pair (or triple) of equally-shaped random images.
fn arb_image_pair(side: usize) -> impl Strategy<Value = (Image, Image)> {
    (2usize..=side, 2usize..=side).prop_flat_map(|(w, h)| {
        let img = proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap());
        (img.clone(), img)
    })
}

fn arb_image_triple(side: usize) -> impl Strategy<Value = (Image, Image, Image)> {
    (2usize..=side, 2usize..=side).prop_flat_map(|(w, h)| {
        let img = proptest::collection::vec(0u8..=255, w * h)
            .prop_map(move |data| Image::from_u8(w, h, Channels::Gray, &data).unwrap());
        (img.clone(), img.clone(), img)
    })
}

fn arb_algorithm() -> impl Strategy<Value = ScaleAlgorithm> {
    prop_oneof![
        Just(ScaleAlgorithm::Nearest),
        Just(ScaleAlgorithm::Bilinear),
        Just(ScaleAlgorithm::Bicubic),
        Just(ScaleAlgorithm::Area),
        Just(ScaleAlgorithm::Lanczos3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pgm_roundtrip_preserves_samples(img in arb_gray_image(24)) {
        let back = decode_pnm(&encode_pgm(&img)).unwrap();
        prop_assert!(back.approx_eq(&img, 0.5));
    }

    #[test]
    fn ppm_roundtrip_preserves_rgb(img in arb_gray_image(16)) {
        let rgb = img.to_rgb();
        let back = decode_pnm(&encode_ppm(&rgb)).unwrap();
        prop_assert!(back.approx_eq(&rgb, 0.5));
    }

    #[test]
    fn resize_output_within_input_hull_for_positive_kernels(
        img in arb_gray_image(20),
        w in 1usize..12,
        h in 1usize..12,
    ) {
        // Nearest / bilinear / area have non-negative weights summing to 1:
        // outputs stay within [min, max] of the input.
        for algo in [ScaleAlgorithm::Nearest, ScaleAlgorithm::Bilinear, ScaleAlgorithm::Area] {
            let out = resize(&img, w, h, algo).unwrap();
            prop_assert!(out.min_sample() >= img.min_sample() - 1e-9, "{algo}");
            prop_assert!(out.max_sample() <= img.max_sample() + 1e-9, "{algo}");
        }
    }

    #[test]
    fn scaling_is_linear(img in arb_gray_image(16), algo in arb_algorithm()) {
        // resize(a*I) == a*resize(I)
        let scaled_input = img.map(|v| v * 0.5);
        let a = resize(&scaled_input, 5, 5, algo).unwrap();
        let b = resize(&img, 5, 5, algo).unwrap().map(|v| v * 0.5);
        prop_assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn rank_filters_bracket_the_image(img in arb_gray_image(16)) {
        let lo = minimum_filter(&img, 2).unwrap();
        let hi = maximum_filter(&img, 2).unwrap();
        for ((l, v), h) in
            lo.plane(0).iter().zip(img.plane(0)).zip(hi.plane(0))
        {
            prop_assert!(l <= v && v <= h);
        }
    }

    #[test]
    fn mse_is_a_symmetric_premetric((a, b) in arb_image_pair(10)) {
        let ab = mse(&a, &b).unwrap();
        prop_assert!(ab >= 0.0);
        prop_assert_eq!(ab, mse(&b, &a).unwrap());
        prop_assert_eq!(mse(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn psnr_and_mse_are_inversely_ordered((a, b, c) in arb_image_triple(10)) {
        let (m_ab, m_ac) = (mse(&a, &b).unwrap(), mse(&a, &c).unwrap());
        prop_assume!(m_ab > 0.0 && m_ac > 0.0);
        let (p_ab, p_ac) = (psnr(&a, &b).unwrap(), psnr(&a, &c).unwrap());
        prop_assert_eq!(m_ab < m_ac, p_ab > p_ac);
    }

    #[test]
    fn ssim_is_bounded_and_symmetric((a, b) in arb_image_pair(12)) {
        let cfg = SsimConfig::default();
        let ab = ssim(&a, &b, &cfg).unwrap();
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ssim(&b, &a, &cfg).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn qp_solution_is_feasible_or_flagged(
        src in proptest::collection::vec(0.0f64..255.0, 12),
        dst in proptest::collection::vec(0.0f64..255.0, 4),
    ) {
        let m = CoeffMatrix::build(ScaleAlgorithm::Bilinear, 12, 4).unwrap();
        let out = solve_1d_attack(&m, &src, &dst, &QpConfig::default()).unwrap();
        for &v in &out.signal {
            prop_assert!((0.0..=255.0).contains(&v));
        }
        if out.converged {
            prop_assert!(out.residual_linf <= 1.0 + 1e-3);
        }
    }

    #[test]
    fn whitebox_threshold_is_optimal_on_train(
        benign in proptest::collection::vec(0.0f64..100.0, 1..20),
        attack in proptest::collection::vec(0.0f64..100.0, 1..20),
    ) {
        let search = search_whitebox(&benign, &attack, Direction::AboveIsAttack).unwrap();
        // No candidate in the trace beats the selected accuracy.
        for point in &search.trace {
            prop_assert!(point.accuracy <= search.train_accuracy + 1e-12);
        }
    }

    #[test]
    fn percentile_threshold_bounds_training_frr(
        benign in proptest::collection::vec(0.0f64..1000.0, 10..60),
        tail in 1.0f64..20.0,
    ) {
        let t = percentile_blackbox(&benign, tail, Direction::AboveIsAttack).unwrap();
        let frr = benign.iter().filter(|&&s| t.is_attack(s)).count() as f64
            / benign.len() as f64;
        // Linear-interpolation percentiles keep the training FRR within one
        // sample of the requested tail.
        prop_assert!(frr <= tail / 100.0 + 1.0 / benign.len() as f64 + 1e-9);
    }
}
