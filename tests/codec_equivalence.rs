//! Container-independence of the detection pipeline: the same pixels
//! must produce bit-identical engine scores whether they arrive as BMP
//! or PNG, and a mixed-format directory must stream end to end with
//! per-file quarantine instead of a crash.

use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::detection::engine::DetectionEngine;
use decamouflage::detection::stream::{BufferPool, DirectorySource, ImageSource, StreamConfig};
use decamouflage::detection::{MethodId, MethodSet};
use decamouflage::imaging::codec::{
    decode_auto, encode_bmp, encode_jpeg, encode_pgm, encode_png, encode_ppm,
};
use decamouflage::imaging::scale::ScaleAlgorithm;
use std::path::PathBuf;

const METHODS: [MethodId; 3] = [MethodId::ScalingMse, MethodId::FilteringSsim, MethodId::Csp];

fn engine() -> DetectionEngine {
    let profile = DatasetProfile::tiny();
    DetectionEngine::new(profile.target_size).with_methods(MethodSet::of(&METHODS))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("decamouflage-codec-equiv-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn bmp_and_png_containers_yield_bit_identical_scores() {
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    let engine = engine();
    for i in 0..4u64 {
        // Attack images are the adversarial case: their pixels carry the
        // embedded payload, so any container-induced perturbation would
        // move the scores.
        // BMP is always 24-bit, so compare in RGB: a gray source would
        // round-trip as RGB through BMP but stay gray through PNG.
        let image =
            if i % 2 == 0 { generator.benign(i) } else { generator.attack_image(i).unwrap() }
                .to_rgb();
        let (_, from_bmp) = decode_auto(&encode_bmp(&image)).unwrap();
        let (_, from_png) = decode_auto(&encode_png(&image)).unwrap();
        assert_eq!(from_bmp.planes(), from_png.planes(), "sample {i}: decoded pixels differ");
        let scores_bmp = engine.score_resilient(&from_bmp).unwrap();
        let scores_png = engine.score_resilient(&from_png).unwrap();
        for method in METHODS {
            assert_eq!(
                scores_bmp.get(method).to_bits(),
                scores_png.get(method).to_bits(),
                "sample {i}, {method:?}: BMP vs PNG score diverged"
            );
        }
    }
}

#[test]
fn mixed_format_directory_streams_with_per_file_quarantine() {
    let dir = temp_dir("mixed");
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    // Four healthy files, one per container.
    std::fs::write(dir.join("a.bmp"), encode_bmp(&generator.benign(0))).unwrap();
    std::fs::write(dir.join("b.png"), encode_png(&generator.benign(1))).unwrap();
    std::fs::write(dir.join("c.ppm"), encode_ppm(&generator.benign(2))).unwrap();
    std::fs::write(dir.join("d.pgm"), encode_pgm(&generator.benign(3))).unwrap();
    std::fs::write(dir.join("e.jpg"), encode_jpeg(&generator.benign(4), 95)).unwrap();
    // Two hostile files: a claimed-then-broken PNG, and a file whose
    // extension lies about bytes no codec claims.
    let mut broken = vec![137u8, 80, 78, 71, 13, 10, 26, 10];
    broken.extend_from_slice(b"chunk soup, no CRC in sight");
    std::fs::write(dir.join("f_broken.png"), &broken).unwrap();
    std::fs::write(dir.join("g_lying.jpeg"), b"GIF89a pretending").unwrap();

    let engine = engine();
    let mut source = DirectorySource::open(&dir).unwrap();
    assert_eq!(source.len_hint(), Some(7), "all seven files admitted by extension");
    let config = StreamConfig::default().with_chunk_size(2).with_pool_capacity(2);
    let mut ok = 0usize;
    let mut faults: Vec<&'static str> = Vec::new();
    engine.score_stream(&mut source, &config, |_, result| match result {
        Ok(scores) => {
            for method in METHODS {
                assert!(scores.get(method).is_finite());
            }
            ok += 1;
        }
        Err(err) => faults.push(err.cause.kind()),
    });
    assert_eq!(ok, 5, "every healthy container scores");
    faults.sort_unstable();
    assert_eq!(faults, ["unreadable", "unsupported-format"], "hostile files quarantine, typed");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jpeg_path_scores_like_a_lossless_reencode_of_its_decode() {
    // JPEG is lossy, so its scores differ from the source image's — but
    // the engine must see exactly the decoder's output: re-encoding the
    // decoded pixels losslessly and scoring again must be bit-identical.
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    let engine = engine();
    let (_, from_jpeg) = decode_auto(&encode_jpeg(&generator.benign(5), 90)).unwrap();
    let (_, relossless) = decode_auto(&encode_png(&from_jpeg)).unwrap();
    let a = engine.score_resilient(&from_jpeg).unwrap();
    let b = engine.score_resilient(&relossless).unwrap();
    for method in METHODS {
        assert_eq!(a.get(method).to_bits(), b.get(method).to_bits(), "{method:?}");
    }
}

#[test]
fn pooled_decode_reuses_buffers_across_formats() {
    // The decode_into path must actually pull from the pool: stream a
    // small mixed directory twice through one source/pool pair and
    // verify the second pass completes with the recycled buffers.
    let dir = temp_dir("pooled");
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    std::fs::write(dir.join("a.png"), encode_png(&generator.benign(0))).unwrap();
    std::fs::write(dir.join("b.bmp"), encode_bmp(&generator.benign(1))).unwrap();
    std::fs::write(dir.join("c.jpg"), encode_jpeg(&generator.benign(2), 90)).unwrap();

    let mut pool = BufferPool::new(4);
    for pass in 0..2 {
        let mut source = DirectorySource::open(&dir).unwrap();
        let mut seen = 0;
        while let Some(item) = source.next_image(&mut pool) {
            let image = item.unwrap_or_else(|e| panic!("pass {pass}: {e}"));
            pool.recycle(image);
            seen += 1;
        }
        assert_eq!(seen, 3, "pass {pass}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
