//! End-to-end service smoke test: the real `decamouflage serve` binary
//! on an ephemeral port, concurrent traffic (valid, malformed,
//! oversized), shed/4xx/5xx accounting in `/metrics`, then SIGTERM and
//! a clean drained exit — the same sequence `ci.sh` runs.

#![cfg(unix)]

use decamouflage::imaging::codec::encode_pgm;
use decamouflage::imaging::Image;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn benign_pgm() -> Vec<u8> {
    let image = Image::from_fn_gray(48, 48, |x, y| ((x * 3 + y * 5) % 61) as f64);
    encode_pgm(&image)
}

/// Spawns `decamouflage serve` on an ephemeral port and parses the
/// `listening on ADDR` line from its stdout.
fn spawn_server() -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_decamouflage"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--target",
            "16x16",
            "--handlers",
            "2",
            "--deadline-ms",
            "4000",
            "--drain-ms",
            "8000",
            "--degrade",
            "majority",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let line = lines.next().expect("a stdout line").expect("readable stdout");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parseable address");
    (child, addr)
}

fn exchange(addr: SocketAddr, request: &[u8]) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    // The server boots before we connect, but give the accept loop a
    // moment under load.
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(stream) => break stream,
            Err(err) if Instant::now() < deadline => {
                let _ = err;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(err) => panic!("cannot connect to {addr}: {err}"),
        }
    };
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(request).expect("request written");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("response read");
    String::from_utf8_lossy(&response).into_owned()
}

fn post_check(addr: SocketAddr, body: &[u8]) -> String {
    let mut request =
        format!("POST /check HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes();
    request.extend_from_slice(body);
    exchange(addr, &request)
}

fn get(addr: SocketAddr, path: &str) -> String {
    exchange(addr, format!("GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").as_bytes())
}

fn status_of(response: &str) -> &str {
    response.split_whitespace().nth(1).unwrap_or("<none>")
}

#[test]
fn serve_binary_survives_mixed_traffic_and_drains_on_sigterm() {
    let (mut child, addr) = spawn_server();

    // Readiness first.
    let health = get(addr, "/healthz");
    assert_eq!(status_of(&health), "200", "{health}");

    // Concurrent mixed traffic: valid, malformed, oversized.
    let mut threads = Vec::new();
    for i in 0..6usize {
        threads.push(std::thread::spawn(move || match i % 3 {
            0 => ("valid", post_check(addr, &benign_pgm())),
            1 => ("malformed", post_check(addr, b"definitely not an image")),
            _ => (
                "oversized",
                exchange(
                    addr,
                    format!(
                        "POST /check HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\n\r\n",
                        1u64 << 33
                    )
                    .as_bytes(),
                ),
            ),
        }));
    }
    for thread in threads {
        let (kind, response) = thread.join().expect("traffic thread");
        let status = status_of(&response);
        let allowed: &[&str] = match kind {
            "valid" => &["200", "503"],
            "malformed" => &["422", "503"],
            _ => &["413", "503"],
        };
        assert!(allowed.contains(&status), "{kind} got {status}: {response}");
    }

    // The ledger: every finished request shows up in /metrics under its
    // route and status, and the fault classes are accounted.
    let metrics = get(addr, "/metrics");
    assert_eq!(status_of(&metrics), "200", "{metrics}");
    assert!(
        metrics.contains("decam_http_requests_total{route=\"/check\",status=\"200\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("decam_http_requests_total{route=\"/check\",status=\"422\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("decam_http_requests_total{route=\"/check\",status=\"413\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("decam_http_in_flight"), "{metrics}");
    assert!(metrics.contains("decam_http_request_seconds"), "{metrics}");

    // SIGTERM → graceful drain → exit 0 within the drain deadline.
    let pid = child.id().to_string();
    let killed = Command::new("kill").args(["-TERM", &pid]).status().expect("kill runs");
    assert!(killed.success(), "kill -TERM failed");
    let waited = Instant::now();
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if waited.elapsed() > Duration::from_secs(30) => {
                let _ = child.kill();
                panic!("serve did not exit within the drain deadline");
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    };
    assert!(status.success(), "serve exited {status:?} instead of a clean drain");
    let mut stderr = String::new();
    child.stderr.take().expect("stderr piped").read_to_string(&mut stderr).expect("stderr read");
    assert!(stderr.contains("drained clean"), "stderr: {stderr}");
}

#[test]
fn serve_rejects_degenerate_flags_with_named_messages() {
    for (flags, needle) in [
        (vec!["serve", "--target", "16x16", "--handlers", "0"], "--handlers"),
        (vec!["serve", "--target", "16x16", "--deadline-ms", "-5"], "--deadline-ms"),
        (vec!["serve", "--target", "16x16", "--queue-limit", "abc"], "--queue-limit"),
        (vec!["serve", "--target", "16x16", "--max-body-bytes", "12"], "--max-body-bytes"),
        (
            vec!["serve", "--target", "16x16", "--deadline-ms", "5000", "--drain-ms", "100"],
            "--drain-ms",
        ),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_decamouflage"))
            .args(&flags)
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "{flags:?} unexpectedly succeeded");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{flags:?} error does not name {needle}: {stderr}");
    }
}
