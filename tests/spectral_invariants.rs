//! Cross-crate spectral invariants: the CSP statistic must be stable under
//! the symmetries of the DFT, and the windowed pipeline must behave
//! sanely. These guard the steganalysis detector against regressions in
//! any of its four substrate layers (transforms, FFT, masking, labelling).

use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::imaging::scale::ScaleAlgorithm;
use decamouflage::imaging::transform::{flip_horizontal, flip_vertical, rotate180, rotate90_cw};
use decamouflage::imaging::Image;
use decamouflage::spectral::csp::{count_csp, CspConfig};
use decamouflage::spectral::dft2d::{centered_spectrum, dft2, idft2};
use decamouflage::spectral::window::{apply_window, WindowKind};

fn benign() -> Image {
    SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear).benign(3)
}

fn attack() -> Image {
    SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear).attack_image(3).unwrap()
}

#[test]
fn csp_count_is_invariant_under_flips() {
    let config = CspConfig::default();
    for img in [benign(), attack()] {
        let base = count_csp(&img, &config).count;
        assert_eq!(count_csp(&flip_horizontal(&img), &config).count, base);
        assert_eq!(count_csp(&flip_vertical(&img), &config).count, base);
        assert_eq!(count_csp(&rotate180(&img), &config).count, base);
    }
}

#[test]
fn csp_count_is_invariant_under_square_rotation() {
    // 90-degree rotation transposes the spectrum; for square images the
    // blob count is unchanged.
    let config = CspConfig::default();
    let img = attack();
    assert_eq!(img.width(), img.height(), "tiny profile is square");
    let base = count_csp(&img, &config).count;
    assert_eq!(count_csp(&rotate90_cw(&img), &config).count, base);
}

#[test]
fn spectrum_magnitude_is_invariant_under_spatial_shift_of_periodic_content() {
    // Shifting image content only changes DFT phase; the centred magnitude
    // spectrum (and hence CSP) stays the same for a circular shift.
    let img = attack();
    let (w, h) = (img.width(), img.height());
    let shifted = Image::from_fn_gray(w, h, |x, y| img.get((x + 5) % w, (y + 9) % h, 0));
    let a = centered_spectrum(&img);
    let b = centered_spectrum(&shifted);
    assert!(a.approx_eq(&b, 1e-6), "centred magnitude spectrum must ignore circular shifts");
}

#[test]
fn dft_roundtrip_on_generated_images() {
    for img in [benign(), attack()] {
        let back = idft2(&dft2(&img));
        assert!(back.approx_eq(&img.to_gray(), 1e-6));
    }
}

#[test]
fn windowing_keeps_benign_clean_but_needs_a_retuned_threshold_for_attacks() {
    // Windowing rescales spectral magnitudes: the benign verdict is
    // unaffected (still one central blob), but the attack peaks drop by
    // the window's coherent gain, so the binarisation threshold must be
    // re-tuned (lowered) when a window is inserted into the pipeline.
    let default_config = CspConfig::default();
    let benign_w = apply_window(&benign(), WindowKind::Hann);
    assert_eq!(count_csp(&benign_w, &default_config).count, 1);

    let retuned = CspConfig { binarize_threshold: 0.55, ..CspConfig::default() };
    let attack_w = apply_window(&attack(), WindowKind::Hann);
    assert!(
        count_csp(&attack_w, &retuned).count >= 2,
        "retuned windowed pipeline must still see the peaks"
    );
}

#[test]
fn all_windows_keep_attack_detectable_after_retuning() {
    let img = attack();
    for (kind, threshold) in [
        (WindowKind::Rectangular, 0.72),
        (WindowKind::Hann, 0.55),
        (WindowKind::Hamming, 0.55),
        (WindowKind::Blackman, 0.5),
    ] {
        let config = CspConfig { binarize_threshold: threshold, ..CspConfig::default() };
        let windowed = apply_window(&img, kind);
        assert!(
            count_csp(&windowed, &config).count >= 2,
            "{kind:?} window lost the attack peaks at threshold {threshold}"
        );
    }
}

#[test]
fn peak_excess_agrees_with_csp_on_the_tiny_corpus() {
    use decamouflage::detection::{Detector, PeakExcessDetector};
    let profile = DatasetProfile::tiny();
    let g = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    let det = PeakExcessDetector::for_target(profile.target_size);
    let mut separations = 0;
    for i in 0..6u64 {
        let b = det.score(&g.benign(i)).unwrap();
        let a = det.score(&g.attack_image(i).unwrap()).unwrap();
        separations += usize::from(a > b);
    }
    assert!(separations >= 5, "peak excess separated only {separations}/6");
}
