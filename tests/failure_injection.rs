//! Failure injection: degenerate and hostile inputs must produce errors or
//! sane scores — never panics.

use decamouflage::detection::{
    Detector, FilteringDetector, MetricKind, ScalingDetector, SteganalysisDetector,
};
use decamouflage::imaging::scale::ScaleAlgorithm;
use decamouflage::imaging::{Channels, Image, Size};

fn detectors(target: Size) -> (ScalingDetector, FilteringDetector, SteganalysisDetector) {
    (
        ScalingDetector::new(target, ScaleAlgorithm::Bilinear, MetricKind::Mse),
        FilteringDetector::new(MetricKind::Mse),
        SteganalysisDetector::for_target(target),
    )
}

#[test]
fn one_pixel_image_is_handled() {
    let (scaling, filtering, stego) = detectors(Size::square(1));
    let img = Image::filled(1, 1, Channels::Gray, 42.0);
    assert!(scaling.score(&img).unwrap().is_finite());
    assert!(filtering.score(&img).unwrap().is_finite());
    assert!(stego.score(&img).unwrap() >= 0.0);
}

#[test]
fn input_smaller_than_cnn_target_still_scores() {
    // Upscale-then-downscale path: an 8x8 input against a 16x16 target.
    let (scaling, _, _) = detectors(Size::square(16));
    let img = Image::from_fn_gray(8, 8, |x, y| ((x * y) % 200) as f64);
    let score = scaling.score(&img).unwrap();
    assert!(score.is_finite() && score >= 0.0);
}

#[test]
fn flat_images_are_never_flagged_by_spatial_methods() {
    let (scaling, filtering, _) = detectors(Size::square(16));
    for level in [0.0, 127.0, 255.0] {
        let img = Image::filled(64, 64, Channels::Gray, level);
        assert_eq!(scaling.score(&img).unwrap(), 0.0, "flat {level}");
        assert_eq!(filtering.score(&img).unwrap(), 0.0, "flat {level}");
    }
}

#[test]
fn flat_image_has_single_csp() {
    let (_, _, stego) = detectors(Size::square(16));
    let img = Image::filled(64, 64, Channels::Gray, 200.0);
    assert_eq!(stego.score(&img).unwrap(), 1.0);
}

#[test]
fn extreme_checkerboard_does_not_panic() {
    let (scaling, filtering, stego) = detectors(Size::square(16));
    let img = Image::from_fn_gray(64, 64, |x, y| if (x + y) % 2 == 0 { 0.0 } else { 255.0 });
    assert!(scaling.score(&img).unwrap().is_finite());
    assert!(filtering.score(&img).unwrap().is_finite());
    assert!(stego.score(&img).unwrap() >= 0.0);
}

#[test]
fn out_of_range_samples_are_tolerated() {
    // Samples outside [0, 255] (e.g. from a buggy upstream decoder).
    let (scaling, filtering, stego) = detectors(Size::square(8));
    let img = Image::from_fn_gray(32, 32, |x, y| (x as f64 - y as f64) * 20.0);
    assert!(scaling.score(&img).unwrap().is_finite());
    assert!(filtering.score(&img).unwrap().is_finite());
    assert!(stego.score(&img).unwrap() >= 0.0);
}

#[test]
fn rgb_and_gray_inputs_both_score() {
    let (scaling, filtering, stego) = detectors(Size::square(8));
    let gray = Image::from_fn_gray(32, 32, |x, y| ((x * 7 + y * 3) % 256) as f64);
    let rgb = gray.to_rgb();
    for img in [&gray, &rgb] {
        assert!(scaling.score(img).unwrap().is_finite());
        assert!(filtering.score(img).unwrap().is_finite());
        assert!(stego.score(img).unwrap() >= 0.0);
    }
}

#[test]
fn non_square_inputs_score() {
    let (scaling, filtering, stego) = detectors(Size::new(20, 10));
    let img = Image::from_fn_gray(100, 40, |x, y| ((x + 2 * y) % 256) as f64);
    assert!(scaling.score(&img).unwrap().is_finite());
    assert!(filtering.score(&img).unwrap().is_finite());
    assert!(stego.score(&img).unwrap() >= 0.0);
}

#[test]
fn ensemble_with_failing_member_surfaces_error() {
    use decamouflage::detection::ensemble::Ensemble;
    use decamouflage::detection::{DetectError, Direction, Threshold};

    struct Bomb;
    impl Detector for Bomb {
        fn score(&self, _image: &Image) -> Result<f64, DetectError> {
            Err(DetectError::InvalidConfig { message: "injected failure".into() })
        }
        fn direction(&self) -> Direction {
            Direction::AboveIsAttack
        }
        fn name(&self) -> String {
            "bomb".into()
        }
    }

    let ensemble = Ensemble::new().with_member(Bomb, Threshold::new(0.0, Direction::AboveIsAttack));
    let img = Image::filled(4, 4, Channels::Gray, 1.0);
    let err = ensemble.decide(&img).unwrap_err();
    assert!(err.to_string().contains("injected failure"));
}

#[test]
fn calibration_rejects_pathological_score_sets() {
    use decamouflage::detection::threshold::{percentile_blackbox, search_whitebox};
    use decamouflage::detection::Direction;

    assert!(search_whitebox(&[], &[1.0], Direction::AboveIsAttack).is_err());
    assert!(search_whitebox(&[f64::NAN], &[1.0], Direction::AboveIsAttack).is_err());
    assert!(percentile_blackbox(&[], 1.0, Direction::AboveIsAttack).is_err());
    assert!(percentile_blackbox(&[1.0, 2.0], 0.0, Direction::AboveIsAttack).is_err());
}

#[test]
fn attack_crafting_against_hostile_targets_degrades_gracefully() {
    use decamouflage::attack::{craft_attack, AttackConfig};
    use decamouflage::imaging::scale::Scaler;

    // An unreachable target (requires values the box cannot express after
    // averaging) must report non-convergence, not panic.
    let original = Image::filled(32, 32, Channels::Gray, 128.0);
    let target = Image::from_fn_gray(8, 8, |x, _| if x % 2 == 0 { 0.0 } else { 255.0 });
    let scaler = Scaler::new(Size::square(32), Size::square(8), ScaleAlgorithm::Area).unwrap();
    let crafted = craft_attack(&original, &target, &scaler, &AttackConfig::default()).unwrap();
    // Area scaling: the crafter must still produce an image in range.
    assert!(crafted.image.min_sample() >= 0.0);
    assert!(crafted.image.max_sample() <= 255.0);
}
