//! Integration tests for the `decamouflage` command-line tool, driving the
//! real binary end to end: calibrate -> check -> craft -> check.

use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::imaging::codec::write_bmp_file;
use decamouflage::imaging::scale::ScaleAlgorithm;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_decamouflage"))
}

/// Builds a fixture directory with benign and attack BMPs from the tiny
/// profile.
fn fixtures(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("decamouflage-cli-test-{tag}"));
    let _ = std::fs::remove_dir_all(&root);
    for sub in ["benign", "attack"] {
        std::fs::create_dir_all(root.join(sub)).unwrap();
    }
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    for i in 0..3u64 {
        write_bmp_file(&generator.benign(i), root.join(format!("benign/{i}.bmp"))).unwrap();
        write_bmp_file(&generator.attack_image(i).unwrap(), root.join(format!("attack/{i}.bmp")))
            .unwrap();
    }
    // Held-out pair for checking.
    write_bmp_file(&generator.benign(9), root.join("holdout_benign.bmp")).unwrap();
    write_bmp_file(&generator.attack_image(9).unwrap(), root.join("holdout_attack.bmp")).unwrap();
    // Host/payload pair 1 produces a strong attack (validated by the
    // fixture calibration set that contains the library-crafted variant).
    write_bmp_file(&generator.target(1), root.join("payload.bmp")).unwrap();
    write_bmp_file(&generator.benign(1), root.join("host.bmp")).unwrap();
    root
}

fn run(cmd: &mut Command) -> (i32, String, String) {
    let out = cmd.output().expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn calibrate(root: &Path) -> PathBuf {
    let thresholds = root.join("thresholds.txt");
    let (code, _, stderr) = run(bin()
        .arg("calibrate")
        .args(["--benign", root.join("benign").to_str().unwrap()])
        .args(["--attack", root.join("attack").to_str().unwrap()])
        .args(["--target", "16x16"])
        .args(["-o", thresholds.to_str().unwrap()]));
    assert_eq!(code, 0, "calibrate failed: {stderr}");
    thresholds
}

#[test]
fn calibrate_then_check_classifies_holdouts() {
    let root = fixtures("check");
    let thresholds = calibrate(&root);

    let (code, stdout, _) = run(bin()
        .arg("check")
        .arg(root.join("holdout_benign.bmp"))
        .args(["--target", "16x16"])
        .args(["--thresholds", thresholds.to_str().unwrap()]));
    assert_eq!(code, 0, "benign holdout misflagged: {stdout}");
    assert!(stdout.contains("benign"));

    let (code, stdout, _) = run(bin()
        .arg("check")
        .arg(root.join("holdout_attack.bmp"))
        .args(["--target", "16x16"])
        .args(["--thresholds", thresholds.to_str().unwrap()]));
    assert_eq!(code, 2, "attack holdout passed: {stdout}");
    assert!(stdout.contains("ATTACK (majority vote)"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn craft_produces_a_detectable_attack_image() {
    let root = fixtures("craft");
    let thresholds = calibrate(&root);
    let crafted = root.join("crafted.bmp");

    let (code, stdout, stderr) = run(bin()
        .arg("craft")
        .arg(root.join("host.bmp"))
        .arg(root.join("payload.bmp"))
        .args(["-o", crafted.to_str().unwrap()]));
    assert_eq!(code, 0, "craft failed: {stderr}");
    assert!(stdout.contains("deviation from target"));
    assert!(crafted.exists());

    let (code, _, _) = run(bin()
        .arg("check")
        .arg(&crafted)
        .args(["--target", "16x16"])
        .args(["--thresholds", thresholds.to_str().unwrap()]));
    assert_eq!(code, 2, "freshly crafted attack must be flagged");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn check_works_with_builtin_default_thresholds() {
    let root = fixtures("defaults");
    let (code, _, _) =
        run(bin().arg("check").arg(root.join("holdout_attack.bmp")).args(["--target", "16x16"]));
    assert_eq!(code, 2, "default thresholds must still flag a strong attack");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bad_invocations_exit_with_usage_errors() {
    let (code, _, stderr) = run(bin().arg("check"));
    assert_eq!(code, 1);
    assert!(stderr.contains("usage"));

    let (code, _, stderr) = run(bin().arg("frobnicate"));
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown command"));

    let root = fixtures("badargs");
    let (code, _, stderr) =
        run(bin().arg("check").arg(root.join("holdout_benign.bmp")).args(["--target", "banana"]));
    assert_eq!(code, 1);
    assert!(stderr.contains("WxH"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn help_prints_usage_and_succeeds() {
    let (code, _, stderr) = run(bin().arg("--help"));
    assert_eq!(code, 0);
    assert!(stderr.contains("decamouflage check"));
}

#[test]
fn scan_triages_a_directory_and_exits_nonzero_on_findings() {
    let root = fixtures("scan");
    let thresholds = calibrate(&root);
    // Mixed directory: the attack fixtures plus one benign holdout.
    let mixed = root.join("mixed");
    std::fs::create_dir_all(&mixed).unwrap();
    std::fs::copy(root.join("attack/0.bmp"), mixed.join("a0.bmp")).unwrap();
    std::fs::copy(root.join("attack/1.bmp"), mixed.join("a1.bmp")).unwrap();
    std::fs::copy(root.join("holdout_benign.bmp"), mixed.join("clean.bmp")).unwrap();

    let (code, stdout, stderr) = run(bin()
        .arg("scan")
        .arg(&mixed)
        .args(["--target", "16x16"])
        .args(["--thresholds", thresholds.to_str().unwrap()]));
    assert_eq!(code, 2, "scan must flag the poisoned images: {stdout} {stderr}");
    assert!(stdout.contains("ATTACK"), "{stdout}");
    assert!(stdout.contains("benign  "), "{stdout}");
    assert!(stdout.contains("2 flagged"), "{stdout}");

    // A clean directory exits 0.
    let clean = root.join("benign");
    let (code, stdout, _) = run(bin()
        .arg("scan")
        .arg(&clean)
        .args(["--target", "16x16"])
        .args(["--thresholds", thresholds.to_str().unwrap()]));
    assert_eq!(code, 0, "clean directory misflagged: {stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn scan_streams_a_mixed_format_directory_and_quarantines_the_corrupt_file() {
    use decamouflage::imaging::codec::{encode_jpeg, encode_pgm, encode_png};
    let root = fixtures("scan-mixed");
    let thresholds = calibrate(&root);
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    let mixed = root.join("mixed-formats");
    std::fs::create_dir_all(&mixed).unwrap();
    // One benign image per container, plus one corrupt PNG and one file
    // whose extension lies about non-image bytes.
    std::fs::copy(root.join("holdout_benign.bmp"), mixed.join("a.bmp")).unwrap();
    std::fs::write(mixed.join("b.png"), encode_png(&generator.benign(9))).unwrap();
    std::fs::write(mixed.join("c.pgm"), encode_pgm(&generator.benign(9))).unwrap();
    std::fs::write(mixed.join("d.jpg"), encode_jpeg(&generator.benign(9), 95)).unwrap();
    let mut broken = vec![137u8, 80, 78, 71, 13, 10, 26, 10];
    broken.extend_from_slice(b"this is not a chunk stream");
    std::fs::write(mixed.join("e_corrupt.png"), &broken).unwrap();
    std::fs::write(mixed.join("f_lying.jpeg"), b"plain text, no magic").unwrap();

    let (code, stdout, stderr) = run(bin()
        .arg("scan")
        .arg(&mixed)
        .args(["--target", "16x16"])
        .args(["--thresholds", thresholds.to_str().unwrap()]));
    // The corrupt files must quarantine their own slots, not abort the
    // scan: every healthy container still gets a verdict line.
    assert!(code == 0 || code == 2, "scan crashed on the mixed dir: {code} {stdout} {stderr}");
    for name in ["a.bmp", "b.png", "c.pgm", "d.jpg"] {
        let line = stdout
            .lines()
            .find(|l| l.contains(name))
            .unwrap_or_else(|| panic!("no verdict line for {name}: {stdout}"));
        assert!(
            line.starts_with("ATTACK") || line.starts_with("benign"),
            "{name} did not score: {line}"
        );
    }
    assert!(
        stdout.lines().any(|l| l.starts_with("unreadable") && l.contains("e_corrupt.png")),
        "{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.starts_with("unsupported") && l.contains("f_lying.jpeg")),
        "{stdout}"
    );
    assert!(stdout.contains("2 unreadable"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn stats_emits_a_parseable_prometheus_exposition() {
    let (code, stdout, stderr) = run(bin().arg("stats").args(["--target", "8x8", "--count", "2"]));
    assert_eq!(code, 0, "stats failed: {stderr}");
    let parsed = decamouflage::telemetry::parse_prometheus_text(&stdout)
        .expect("stats output must satisfy the strict Prometheus parser");
    for family in [
        "decam_engine_score_seconds",
        "decam_engine_stage_seconds",
        "decam_method_score_seconds",
        "decam_engine_scored_total",
        "decam_engine_quarantined_total",
        "decam_pool_jobs_total",
        "decam_ensemble_votes_total",
        "decam_ensemble_decisions_total",
        "decam_monitor_screened_total",
        "decam_monitor_window_mean",
    ] {
        assert!(parsed.has_family(family), "stats exposition lacks {family}:\n{stdout}");
    }
    // Determinism: a second run produces byte-identical counters and
    // gauges (latency histogram samples differ, so compare those lines).
    let (_, second, _) = run(bin().arg("stats").args(["--target", "8x8", "--count", "2"]));
    let stable = |text: &str| {
        text.lines()
            .filter(|l| !l.contains("seconds"))
            .map(str::to_owned)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(stable(&stdout), stable(&second), "stats counters must be deterministic");

    // JSON output is inferred from the -o extension and is valid enough
    // to contain the same counter.
    let root = std::env::temp_dir().join("decamouflage-cli-test-stats");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let json_path = root.join("stats.json");
    let (code, _, stderr) = run(bin()
        .arg("stats")
        .args(["--target", "8x8", "--count", "2"])
        .args(["-o", json_path.to_str().unwrap()]));
    assert_eq!(code, 0, "stats -o failed: {stderr}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"decam_engine_scored_total\""), "{json}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn scan_metrics_out_round_trips_through_the_parser() {
    let root = fixtures("scan-metrics");
    let metrics = root.join("metrics.prom");
    let (code, stdout, stderr) = run(bin()
        .arg("scan")
        .arg(root.join("benign"))
        .args(["--target", "16x16"])
        .args(["--metrics-out", metrics.to_str().unwrap()]));
    assert_eq!(code, 0, "clean scan failed: {stdout} {stderr}");

    let text = std::fs::read_to_string(&metrics).expect("scan must write --metrics-out");
    let parsed = decamouflage::telemetry::parse_prometheus_text(&text)
        .expect("scan exposition must satisfy the strict Prometheus parser");
    // Scan runs on the streaming engine: one scored sample per fixture,
    // one chunk (3 < default chunk size), and the in-flight gauge back at
    // zero once the stream has drained — the bounded-memory invariant.
    assert!(parsed.has_family("decam_engine_scored_total"), "{text}");
    assert_eq!(
        parsed.sample_value("decam_engine_scored_total", &[]),
        Some(3.0),
        "one scored image per scanned fixture:\n{text}"
    );
    assert_eq!(parsed.sample_value("decam_stream_chunks_total", &[]), Some(1.0), "{text}");
    assert_eq!(parsed.sample_value("decam_stream_peak_chunk", &[]), Some(3.0), "{text}");
    assert_eq!(parsed.sample_value("decam_stream_in_flight_images", &[]), Some(0.0), "{text}");
    // The decode stage is timed by the directory source, once per image.
    let decode = text
        .lines()
        .find(|l| l.starts_with("decam_engine_stage_seconds_count{stage=\"decode\"}"))
        .unwrap_or_else(|| panic!("no decode stage samples:\n{text}"));
    assert!(decode.ends_with(" 3"), "expected 3 decode samples: {decode}");
    std::fs::remove_dir_all(&root).ok();
}

/// The CI bounded-memory smoke: a 64-image corpus scanned with
/// `--chunk-size 1` (one decoded image resident at a time) must produce
/// exactly the same verdict counts and exit code as the default chunked
/// run.
#[test]
fn scan_chunk_size_one_matches_default_chunking() {
    let root = std::env::temp_dir().join("decamouflage-cli-test-scan-chunked");
    let _ = std::fs::remove_dir_all(&root);
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).unwrap();
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    for i in 0..32u64 {
        write_bmp_file(&generator.benign(i), corpus.join(format!("b{i:02}.bmp"))).unwrap();
        write_bmp_file(&generator.attack_image(i).unwrap(), corpus.join(format!("x{i:02}.bmp")))
            .unwrap();
    }

    let scan = |chunk: Option<&str>| {
        let mut cmd = bin();
        cmd.arg("scan").arg(&corpus).args(["--target", "16x16"]);
        if let Some(n) = chunk {
            cmd.args(["--chunk-size", n]);
        }
        run(&mut cmd)
    };
    let (eager_code, eager_out, eager_err) = scan(None);
    let (chunked_code, chunked_out, chunked_err) = scan(Some("1"));
    assert_eq!(eager_code, chunked_code, "{eager_err} {chunked_err}");
    let summary = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("scanned "))
            .map(str::to_owned)
            .unwrap_or_else(|| panic!("no summary line:\n{out}"))
    };
    assert_eq!(summary(&eager_out), summary(&chunked_out), "verdict counts must match");
    assert!(summary(&eager_out).starts_with("scanned 64 images:"), "{eager_out}");
    // Per-image verdict lines are order- and content-identical too.
    assert_eq!(eager_out, chunked_out, "scan output must not depend on chunking");
    std::fs::remove_dir_all(&root).ok();
}

/// Strict argument parsing: a misspelt flag must abort with an error
/// instead of silently riding along, on every command.
#[test]
fn unknown_flags_are_rejected_by_every_command() {
    for command in ["check", "scan", "merge", "craft", "calibrate", "stats"] {
        let (code, _, stderr) = run(bin().arg(command).arg("--bogus-flag").arg("value"));
        assert_eq!(code, 1, "{command} accepted an unknown flag: {stderr}");
        assert!(stderr.contains("unknown flag \"--bogus-flag\""), "{command}: {stderr}");
    }
    // Duplicates of a known flag are also rejected.
    let (code, _, stderr) =
        run(bin().arg("scan").arg("dir").args(["--target", "16x16", "--target", "8x8"]));
    assert_eq!(code, 1);
    assert!(stderr.contains("given more than once"), "{stderr}");
}

/// The shard/checkpoint/merge smoke mirroring the CI stage: a 64-image
/// corpus scanned as one shard and as three shards — one of them killed
/// mid-scan and `--resume`d — must merge to byte-identical reports, and
/// the single-shard scan output must match a plain unsharded scan.
#[test]
fn sharded_resumed_merged_scan_matches_the_unsharded_report() {
    use decamouflage::detection::ScanCheckpoint;

    let root = std::env::temp_dir().join("decamouflage-cli-test-shard");
    let _ = std::fs::remove_dir_all(&root);
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).unwrap();
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    for i in 0..32u64 {
        write_bmp_file(&generator.benign(i), corpus.join(format!("b{i:02}.bmp"))).unwrap();
        write_bmp_file(&generator.attack_image(i).unwrap(), corpus.join(format!("x{i:02}.bmp")))
            .unwrap();
    }

    let scan = |extra: &[&str]| {
        let mut cmd = bin();
        cmd.arg("scan").arg(&corpus).args(["--target", "16x16", "--chunk-size", "8"]);
        cmd.args(extra);
        run(&mut cmd)
    };

    // Reference: a plain scan and a single-shard checkpointed scan.
    let (plain_code, plain_out, _) = scan(&[]);
    let single = root.join("single.ckpt");
    let (code, single_out, stderr) = scan(&["--checkpoint", single.to_str().unwrap()]);
    assert_eq!(code, plain_code, "{stderr}");
    assert_eq!(single_out, plain_out, "a 1/1 checkpointed scan must not change the output");

    // Three shards; shard 2/3 is killed mid-scan (its finished checkpoint
    // is rewound to a chunk boundary) and resumed.
    let shard_files: Vec<std::path::PathBuf> =
        (1..=3).map(|k| root.join(format!("shard{k}.ckpt"))).collect();
    let mut shard_outputs = Vec::new();
    for (k, file) in (1..=3).zip(&shard_files) {
        let spec = format!("{k}/3");
        let (code, stdout, stderr) =
            scan(&["--shard", &spec, "--checkpoint", file.to_str().unwrap()]);
        assert!(code == 0 || code == 2, "shard {spec} failed: {stderr}");
        shard_outputs.push(stdout);
    }
    let finished = ScanCheckpoint::load(&shard_files[1]).unwrap();
    assert!(finished.done() > 8, "shard 2/3 owns too few images for a mid-scan rewind");
    finished.prefix(8).save(&shard_files[1]).unwrap();
    let (code, resumed_out, stderr) =
        scan(&["--shard", "2/3", "--checkpoint", shard_files[1].to_str().unwrap(), "--resume"]);
    assert!(code == 0 || code == 2, "resume failed: {stderr}");
    // The resumed run prints only the images it scanned itself, but its
    // summary covers the whole shard.
    let summary = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("scanned "))
            .map(str::to_owned)
            .unwrap_or_else(|| panic!("no summary line:\n{out}"))
    };
    assert_eq!(summary(&resumed_out), summary(&shard_outputs[1]));
    assert!(
        resumed_out.lines().count() < shard_outputs[1].lines().count(),
        "resume must not rescan finished images"
    );
    // Every corpus image was scanned by exactly one shard.
    let scanned: usize = shard_outputs
        .iter()
        .map(|out| {
            summary(out)
                .strip_prefix("scanned ")
                .and_then(|rest| rest.split(' ').next())
                .unwrap()
                .parse::<usize>()
                .unwrap()
        })
        .sum();
    assert_eq!(scanned, 64, "shards must partition the corpus");

    // Merging the single shard and the three shards (with one resumed
    // mid-crash) yields byte-identical corpus-wide reports.
    let merged_single = root.join("merged-single.txt");
    let (code, _, stderr) =
        run(bin().arg("merge").arg(&single).args(["-o", merged_single.to_str().unwrap()]));
    assert_eq!(code, 0, "merge of the single shard failed: {stderr}");
    assert!(stderr.contains("merged 1 checkpoint(s): 64 images"), "{stderr}");
    let merged_shards = root.join("merged-shards.txt");
    let (code, _, stderr) =
        run(bin().arg("merge").args(&shard_files).args(["-o", merged_shards.to_str().unwrap()]));
    assert_eq!(code, 0, "merge of the three shards failed: {stderr}");
    assert_eq!(
        std::fs::read_to_string(&merged_single).unwrap(),
        std::fs::read_to_string(&merged_shards).unwrap(),
        "sharding must not change the merged report"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// `--resume` refuses a checkpoint taken over a different corpus: adding
/// a file to the directory changes the fingerprint.
#[test]
fn resume_refuses_a_checkpoint_from_a_different_corpus() {
    let root = std::env::temp_dir().join("decamouflage-cli-test-resume-mismatch");
    let _ = std::fs::remove_dir_all(&root);
    let corpus = root.join("corpus");
    std::fs::create_dir_all(&corpus).unwrap();
    let generator = SampleGenerator::new(DatasetProfile::tiny(), ScaleAlgorithm::Bilinear);
    for i in 0..4u64 {
        write_bmp_file(&generator.benign(i), corpus.join(format!("b{i}.bmp"))).unwrap();
    }
    let checkpoint = root.join("scan.ckpt");
    let (code, _, stderr) = run(bin()
        .arg("scan")
        .arg(&corpus)
        .args(["--target", "16x16"])
        .args(["--checkpoint", checkpoint.to_str().unwrap()]));
    assert_eq!(code, 0, "initial scan failed: {stderr}");

    // The corpus grows; the old checkpoint no longer describes it.
    write_bmp_file(&generator.benign(9), corpus.join("late-arrival.bmp")).unwrap();
    let (code, _, stderr) = run(bin()
        .arg("scan")
        .arg(&corpus)
        .args(["--target", "16x16"])
        .args(["--checkpoint", checkpoint.to_str().unwrap()])
        .arg("--resume"));
    assert_eq!(code, 1, "resume over a changed corpus must be refused");
    assert!(stderr.contains("checkpoint mismatch"), "{stderr}");

    // --resume without --checkpoint is a usage error.
    let (code, _, stderr) =
        run(bin().arg("scan").arg(&corpus).args(["--target", "16x16"]).arg("--resume"));
    assert_eq!(code, 1);
    assert!(stderr.contains("--resume needs --checkpoint"), "{stderr}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn scan_rejects_empty_directories() {
    let root = std::env::temp_dir().join("decamouflage-cli-test-scan-empty");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let (code, _, stderr) = run(bin().arg("scan").arg(&root).args(["--target", "16x16"]));
    assert_eq!(code, 1);
    assert!(stderr.contains("no .pgm"), "{stderr}");
    std::fs::remove_dir_all(&root).ok();
}
