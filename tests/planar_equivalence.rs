//! Planar-layout equivalence suite.
//!
//! The planar refactor moved `Image` from interleaved to per-channel
//! plane storage under a bit-identity contract: every engine score over
//! any input must be unchanged down to the last f64 bit.
//!
//! `tests/golden_scores_v1.txt` pins the exact score bits produced by
//! the interleaved seed path over a deterministic mixed Gray/RGB corpus
//! (odd and even dimensions). Regenerate with
//! `GOLDEN_CAPTURE=1 cargo test --test planar_equivalence` — but only
//! ever from a commit whose scores are themselves verified; the fixture
//! is the contract.

use decamouflage::detection::{DetectionEngine, ScoreFault, ScoreVector};
use decamouflage::imaging::{Channels, Image, Size};
use std::fmt::Write as _;
use std::path::Path;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_scores_v1.txt");

/// SplitMix64 finalizer: a pure function of the input, so corpus pixels
/// depend only on (seed, x, y, c) — never on iteration order.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sample(seed: u64, x: usize, y: usize, c: usize) -> f64 {
    let h = mix(seed
        .wrapping_add((x as u64).wrapping_mul(0x517c_c1b7_2722_0a95))
        .wrapping_add((y as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
        .wrapping_add((c as u64).wrapping_mul(0xda94_2042_e4dd_58b5)));
    (h % 256) as f64
}

fn gray_case(seed: u64, w: usize, h: usize) -> Image {
    Image::from_fn_gray(w, h, |x, y| sample(seed, x, y, 0))
}

fn rgb_case(seed: u64, w: usize, h: usize) -> Image {
    Image::from_fn_rgb(w, h, |x, y| {
        [sample(seed, x, y, 0), sample(seed, x, y, 1), sample(seed, x, y, 2)]
    })
}

/// The golden corpus: deterministic, mixed Gray/RGB, odd and even dims,
/// plus a flat image (degenerate SSIM variance) and a smooth ramp.
fn corpus() -> Vec<(String, Image)> {
    let mut cases = Vec::new();
    for (i, &(w, h)) in [(16, 16), (17, 13), (31, 7), (40, 40), (23, 29)].iter().enumerate() {
        cases.push((format!("gray-{w}x{h}"), gray_case(0x1000 + i as u64, w, h)));
    }
    for (i, &(w, h)) in [(16, 16), (13, 17), (24, 8), (33, 21), (19, 19)].iter().enumerate() {
        cases.push((format!("rgb-{w}x{h}"), rgb_case(0x2000 + i as u64, w, h)));
    }
    cases.push(("gray-flat-20x20".into(), Image::from_fn_gray(20, 20, |_, _| 128.0)));
    cases.push((
        "rgb-ramp-22x18".into(),
        Image::from_fn_rgb(22, 18, |x, y| [x as f64, y as f64, (x + y) as f64]),
    ));
    cases
}

fn engines() -> Vec<(String, DetectionEngine)> {
    vec![
        ("sq16".into(), DetectionEngine::new(Size::square(16))),
        ("12x10".into(), DetectionEngine::new(Size { width: 12, height: 10 })),
    ]
}

/// Renders one corpus scoring pass as stable fixture lines:
/// `engine<TAB>case<TAB>method<TAB>bits-hex<TAB>display-value`.
fn render_scores() -> String {
    let mut out = String::new();
    for (ename, engine) in engines() {
        for (cname, image) in corpus() {
            let scores: ScoreVector = engine.score(&image).expect("golden corpus must score");
            for (id, value) in scores.iter() {
                writeln!(
                    out,
                    "{ename}\t{cname}\t{}\t{:016x}\t{value:e}",
                    id.name(),
                    value.to_bits()
                )
                .unwrap();
            }
        }
    }
    out
}

#[test]
fn engine_scores_bit_identical_to_interleaved_seed() {
    let current = render_scores();
    if std::env::var_os("GOLDEN_CAPTURE").is_some() {
        std::fs::write(GOLDEN_PATH, &current).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(Path::new(GOLDEN_PATH)).expect(
        "golden fixture missing: run GOLDEN_CAPTURE=1 cargo test --test planar_equivalence",
    );
    let mut mismatches = Vec::new();
    for (g, c) in golden.lines().zip(current.lines()) {
        if g != c {
            mismatches.push(format!("golden: {g}\n  now:    {c}"));
        }
    }
    assert_eq!(
        golden.lines().count(),
        current.lines().count(),
        "fixture line count changed — corpus or method set drifted"
    );
    assert!(
        mismatches.is_empty(),
        "{} score(s) changed bits vs the interleaved seed:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn nan_poisoned_inputs_still_fault_identically() {
    let engine = DetectionEngine::new(Size::square(16));
    // Gray: the pinned sample index is plane-local and unchanged by the
    // planar refactor.
    let mut gray = gray_case(7, 24, 24);
    gray.set(3, 5, 0, f64::NAN);
    let err = engine.score_resilient(&gray).unwrap_err();
    match err.cause {
        ScoreFault::NonFinitePixel { sample } => assert_eq!(sample, 5 * 24 + 3),
        other => panic!("expected NonFinitePixel, got {other:?}"),
    }
    // RGB: poison one channel of one pixel; the scan must still refuse
    // the image with the same fault kind.
    let mut rgb = rgb_case(8, 20, 20);
    rgb.set(4, 9, 1, f64::INFINITY);
    let err = engine.score_resilient(&rgb).unwrap_err();
    assert!(
        matches!(err.cause, ScoreFault::NonFinitePixel { .. }),
        "expected NonFinitePixel, got {:?}",
        err.cause
    );
}

mod roundtrips {
    use super::*;
    use proptest::prelude::*;
    use std::borrow::Cow;

    /// Arbitrary shape plus interleaved samples, including exact
    /// non-integral values so round-trips are tested bit-for-bit, not
    /// just to u8 precision.
    fn arb_interleaved() -> impl Strategy<Value = (usize, usize, Channels, Vec<f64>)> {
        (1usize..=9, 1usize..=9, prop_oneof![Just(Channels::Gray), Just(Channels::Rgb)])
            .prop_flat_map(|(w, h, ch)| {
                proptest::collection::vec(0u32..=(255 << 8), w * h * ch.count()).prop_map(
                    move |raw| {
                        let data = raw.iter().map(|&v| f64::from(v) / 256.0).collect();
                        (w, h, ch, data)
                    },
                )
            })
    }

    proptest! {
        /// Interleaved wire order survives the planar representation
        /// exactly: every sample lands in its plane and comes back in
        /// the same position with the same bits.
        #[test]
        fn interleaved_planar_roundtrip_is_exact(
            (w, h, ch, data) in arb_interleaved()
        ) {
            let img = Image::from_interleaved(w, h, ch, data.clone()).unwrap();
            prop_assert_eq!(img.to_interleaved(), data.clone());
            // Spot-check the scatter itself, not just the gather.
            let n = w * h;
            for c in 0..ch.count() {
                let plane = img.plane(c);
                prop_assert_eq!(plane.len(), n);
                for i in 0..n {
                    prop_assert_eq!(plane[i].to_bits(), data[i * ch.count() + c].to_bits());
                }
            }
        }

        /// `from_planes` ∘ `into_planes` is the identity on plane
        /// storage, and the planes it exposes are the ones handed in.
        #[test]
        fn planes_roundtrip_is_exact((w, h, ch, data) in arb_interleaved()) {
            let n = w * h;
            let planes: Vec<Vec<f64>> = (0..ch.count())
                .map(|c| (0..n).map(|i| data[i * ch.count() + c]).collect())
                .collect();
            let img = Image::from_planes(w, h, ch, planes.clone()).unwrap();
            for (c, plane) in planes.iter().enumerate() {
                prop_assert_eq!(img.plane(c), plane.as_slice());
            }
            prop_assert_eq!(img.into_planes(), planes);
        }

        /// `luma()` borrows the gray plane (no copy) and computes the
        /// same BT.601 combination `to_gray()` stores, bit for bit.
        #[test]
        fn luma_borrows_gray_and_matches_to_gray((w, h, ch, data) in arb_interleaved()) {
            let img = Image::from_interleaved(w, h, ch, data).unwrap();
            let luma = img.luma();
            if ch == Channels::Gray {
                prop_assert!(matches!(luma, Cow::Borrowed(_)));
                prop_assert!(std::ptr::eq(luma.as_ref(), img.plane(0)));
            }
            let gray = img.to_gray();
            prop_assert_eq!(luma.len(), gray.plane_len());
            for (a, b) in luma.iter().zip(gray.plane(0)) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Extracting a channel as a standalone image preserves the
        /// plane exactly.
        #[test]
        fn channel_image_extracts_exact_planes((w, h, ch, data) in arb_interleaved()) {
            let img = Image::from_interleaved(w, h, ch, data).unwrap();
            for c in 0..ch.count() {
                let single = img.channel_image(c).unwrap();
                prop_assert_eq!(single.channels(), Channels::Gray);
                prop_assert_eq!(single.plane(0), img.plane(c));
            }
        }
    }
}

#[test]
fn u8_roundtrip_is_layout_independent() {
    // `from_u8` takes interleaved bytes (the codec wire order) and
    // `to_u8_vec` emits them back; the internal layout must not leak.
    let bytes: Vec<u8> = (0..5 * 4 * 3).map(|i| (i * 37 % 256) as u8).collect();
    let img = Image::from_u8(5, 4, Channels::Rgb, &bytes).unwrap();
    assert_eq!(img.to_u8_vec(), bytes);
    for y in 0..4 {
        for x in 0..5 {
            for c in 0..3 {
                assert_eq!(img.get(x, y, c), bytes[(y * 5 + x) * 3 + c] as f64);
            }
        }
    }
}
