//! The paper's headline generalisation claim: thresholds determined on one
//! dataset transfer to a different dataset (abstract: "the threshold
//! determined from one dataset is also applicable to other different
//! datasets").

use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::detection::pipeline::{
    evaluate_threshold, run_blackbox, run_whitebox, score_corpus, ScoredCorpus,
};
use decamouflage::detection::{Detector, MetricKind, ScalingDetector};
use decamouflage::imaging::scale::ScaleAlgorithm;
use decamouflage::imaging::Size;

const N: usize = 8;

/// A second tiny profile acting as the "unseen" dataset: same image
/// statistics, different seed and master parameters.
fn tiny_variant() -> DatasetProfile {
    let mut p = DatasetProfile::tiny();
    p.seed ^= 0xDEAD_BEEF;
    p.name = "tiny-variant";
    p
}

fn score(profile: &DatasetProfile, detector: &ScalingDetector) -> ScoredCorpus {
    let generator = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    score_corpus(detector, |i| generator.benign(i), |i| generator.attack_image(i).unwrap(), N, 1)
        .unwrap()
}

#[test]
fn whitebox_threshold_transfers_across_profiles() {
    let train_profile = DatasetProfile::tiny();
    let eval_profile = tiny_variant();
    let detector =
        ScalingDetector::new(train_profile.target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let train = score(&train_profile, &detector);
    let eval = score(&eval_profile, &detector);

    let outcome =
        run_whitebox(&train, &eval, decamouflage::detection::Direction::AboveIsAttack).unwrap();
    assert!(outcome.train_accuracy >= 0.95);
    assert!(outcome.eval.accuracy >= 0.9, "transferred threshold degraded: {:?}", outcome.eval);
}

#[test]
fn blackbox_percentile_transfers_across_profiles() {
    let train_profile = DatasetProfile::tiny();
    let eval_profile = tiny_variant();
    let detector =
        ScalingDetector::new(train_profile.target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let train = score(&train_profile, &detector);
    let eval = score(&eval_profile, &detector);

    let outcome = run_blackbox(
        &train.benign,
        &eval,
        13.0, // generous tail for the tiny sample size
        decamouflage::detection::Direction::AboveIsAttack,
    )
    .unwrap();
    assert!(outcome.eval.far <= 0.15, "black-box FAR too high: {:?}", outcome.eval);
}

#[test]
fn threshold_is_insensitive_to_source_size_within_profile() {
    // Calibrate on the tiny profile (64 -> 16) and evaluate on a profile
    // with a larger source size but the same CNN target.
    let train_profile = DatasetProfile::tiny();
    let mut big = DatasetProfile::tiny();
    big.name = "tiny-big";
    big.seed ^= 0x1234_5678;
    big.source_sizes = vec![Size::square(80)];

    let detector =
        ScalingDetector::new(train_profile.target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let train = score(&train_profile, &detector);
    let eval = score(&big, &detector);
    let outcome =
        run_whitebox(&train, &eval, decamouflage::detection::Direction::AboveIsAttack).unwrap();
    assert!(outcome.eval.accuracy >= 0.85, "size shift broke the threshold: {:?}", outcome.eval);
}

#[test]
fn evaluate_threshold_matches_manual_confusion() {
    let profile = DatasetProfile::tiny();
    let detector =
        ScalingDetector::new(profile.target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let corpus = score(&profile, &detector);
    let threshold = decamouflage::detection::Threshold::new(
        f64::INFINITY,
        decamouflage::detection::Direction::AboveIsAttack,
    );
    // Nothing reaches an infinite threshold: all benign pass, all attacks
    // are missed.
    let m = evaluate_threshold(&corpus, threshold).unwrap();
    assert_eq!(m.frr, 0.0);
    assert_eq!(m.far, 1.0);
    assert_eq!(m.accuracy, 0.5);
    let _ = detector.name();
}
