//! Hostile-container quarantine: wire formats the codecs deliberately do
//! not speak must surface as typed [`ScoreFault::UnsupportedFormat`]
//! (kind `unsupported-format`) through the streaming decode path — never
//! as a panic, a generic unreadable fault, or a silently skipped file.

use decamouflage_core::{BufferPool, DirectorySource, ImageSource, ScoreFault};
use decamouflage_imaging::codec::{crc32, encode_jpeg, encode_png};
use decamouflage_imaging::Image;

/// A valid grayscale PNG, then its IHDR patched to declare 16-bit depth
/// (CRC fixed up so the *depth*, not the checksum, is what gets rejected).
fn sixteen_bit_png() -> Vec<u8> {
    let image = Image::from_fn_gray(4, 4, |x, y| (x * 50 + y * 10) as f64);
    let mut png = encode_png(&image);
    const SIGNATURE_LEN: usize = 8;
    let ihdr_data = SIGNATURE_LEN + 8;
    png[ihdr_data + 8] = 16;
    let mut covered = b"IHDR".to_vec();
    covered.extend_from_slice(&png[ihdr_data..ihdr_data + 13]);
    png[ihdr_data + 13..ihdr_data + 17].copy_from_slice(&crc32(&covered).to_be_bytes());
    png
}

/// A valid baseline JPEG with its SOF0 marker rewritten to SOF2
/// (progressive DCT), which the decoder types as unsupported.
fn progressive_jpeg() -> Vec<u8> {
    let image = Image::from_fn_rgb(8, 8, |x, y| [(x * 30) as f64, (y * 30) as f64, 128.0]);
    let mut jpeg = encode_jpeg(&image, 90);
    let sof = jpeg.windows(2).position(|w| w == [0xFF, 0xC0]).expect("baseline SOF0 present");
    jpeg[sof + 1] = 0xC2;
    jpeg
}

#[test]
fn hostile_containers_quarantine_as_unsupported_format() {
    let dir = std::env::temp_dir().join(format!("decam-hostile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Sorted walk order: the control image first, then the two hostiles.
    std::fs::write(
        dir.join("a-control.png"),
        encode_png(&Image::from_fn_gray(4, 4, |x, y| (x * 50 + y * 10) as f64)),
    )
    .unwrap();
    std::fs::write(dir.join("b-deep.png"), sixteen_bit_png()).unwrap();
    std::fs::write(dir.join("c-progressive.jpg"), progressive_jpeg()).unwrap();

    let mut source = DirectorySource::open(&dir).unwrap();
    let mut pool = BufferPool::new(4);

    let control = source.next_image(&mut pool).expect("control file listed");
    assert!(control.is_ok(), "valid PNG must decode: {:?}", control.err());

    for (name, marker) in [("b-deep.png", "bit depth 16"), ("c-progressive.jpg", "SOF2")] {
        let err = source
            .next_image(&mut pool)
            .unwrap_or_else(|| panic!("{name} listed"))
            .expect_err("hostile container must be quarantined");
        assert!(
            matches!(err.cause, ScoreFault::UnsupportedFormat { .. }),
            "{name}: fault is {:?}",
            err.cause
        );
        assert_eq!(err.cause.kind(), "unsupported-format", "{name}");
        let shown = err.to_string();
        assert!(shown.contains(name), "{name} missing from {shown:?}");
        assert!(shown.contains(marker), "{marker:?} missing from {shown:?}");
    }
    assert!(source.next_image(&mut pool).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hostile_containers_fail_at_decode_without_panicking() {
    // Belt and braces below the streaming layer: the raw decoders type the
    // same bytes as `Unsupported`, so the stream mapping above cannot be
    // masking a panic or a structural-corruption misclassification.
    use decamouflage_imaging::codec::{decode_jpeg, decode_png};
    use decamouflage_imaging::ImagingError;
    assert!(matches!(
        decode_png(&sixteen_bit_png()).unwrap_err(),
        ImagingError::Unsupported { .. }
    ));
    assert!(matches!(
        decode_jpeg(&progressive_jpeg()).unwrap_err(),
        ImagingError::Unsupported { .. }
    ));
}
