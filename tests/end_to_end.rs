//! End-to-end integration: attack crafting -> detection across the
//! (scaler x metric x mode) grid, on the tiny dataset profile.

use decamouflage::attack::{verify_attack, VerifyConfig};
use decamouflage::datasets::{DatasetProfile, SampleGenerator};
use decamouflage::detection::ensemble::Ensemble;
use decamouflage::detection::threshold::{percentile_blackbox, search_whitebox};
use decamouflage::detection::{
    Detector, Direction, FilteringDetector, MetricKind, ScalingDetector, SteganalysisDetector,
};
use decamouflage::imaging::scale::ScaleAlgorithm;

const N: u64 = 8;

fn scores<D: Detector>(
    detector: &D,
    generator: &SampleGenerator,
    offset: u64,
) -> (Vec<f64>, Vec<f64>) {
    let mut benign = Vec::new();
    let mut attack = Vec::new();
    for i in 0..N {
        benign.push(detector.score(&generator.benign(offset + i)).unwrap());
        attack.push(detector.score(&generator.attack_image(offset + i).unwrap()).unwrap());
    }
    (benign, attack)
}

#[test]
fn scaling_detector_separates_for_every_attack_algorithm() {
    let profile = DatasetProfile::tiny();
    for attack_algo in [ScaleAlgorithm::Nearest, ScaleAlgorithm::Bilinear] {
        let generator = SampleGenerator::new(profile.clone(), attack_algo);
        for metric in [MetricKind::Mse, MetricKind::Ssim] {
            let detector =
                ScalingDetector::new(profile.target_size, ScaleAlgorithm::Bilinear, metric);
            let (benign, attack) = scores(&detector, &generator, 0);
            let search = search_whitebox(&benign, &attack, metric.direction()).unwrap();
            assert!(
                search.train_accuracy >= 0.9,
                "scaling/{metric} vs {attack_algo} attacks: accuracy {}",
                search.train_accuracy
            );
        }
    }
}

#[test]
fn filtering_detector_separates_for_every_metric() {
    let profile = DatasetProfile::tiny();
    let generator = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    for metric in [MetricKind::Mse, MetricKind::Ssim] {
        let detector = FilteringDetector::new(metric);
        let (benign, attack) = scores(&detector, &generator, 0);
        let search = search_whitebox(&benign, &attack, metric.direction()).unwrap();
        assert!(
            search.train_accuracy >= 0.9,
            "filtering/{metric}: accuracy {}",
            search.train_accuracy
        );
    }
}

#[test]
fn steganalysis_universal_threshold_works_without_calibration() {
    let profile = DatasetProfile::tiny();
    let generator = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    let detector = SteganalysisDetector::for_target(profile.target_size);
    let threshold = SteganalysisDetector::universal_threshold();
    let mut correct = 0;
    for i in 0..N {
        let benign_score = detector.score(&generator.benign(i)).unwrap();
        let attack_score = detector.score(&generator.attack_image(i).unwrap()).unwrap();
        correct += usize::from(!threshold.is_attack(benign_score));
        correct += usize::from(threshold.is_attack(attack_score));
    }
    assert!(
        correct as f64 >= 2.0 * N as f64 * 0.85,
        "CSP_T = 2 only classified {correct}/{} correctly",
        2 * N
    );
}

#[test]
fn blackbox_percentile_calibration_detects_unseen_attacks() {
    // Calibrate on benign only; the attacker uses nearest-neighbour, which
    // the calibration never saw. SSIM is the metric here: the synthetic
    // corpus draws its high-frequency content amplitude from a wide range,
    // which gives benign round-trip *MSE* a heavy tail (a 2% percentile on
    // a handful of samples then sits on a single outlier), while SSIM is
    // normalised by local variance and keeps the benign tail compact.
    let profile = DatasetProfile::tiny();
    let benign_gen = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    let detector =
        ScalingDetector::new(profile.target_size, ScaleAlgorithm::Bilinear, MetricKind::Ssim);
    let benign_scores: Vec<f64> =
        (100..100 + 2 * N).map(|i| detector.score(&benign_gen.benign(i)).unwrap()).collect();
    let threshold = percentile_blackbox(&benign_scores, 2.0, MetricKind::Ssim.direction()).unwrap();

    let attacker = SampleGenerator::new(profile, ScaleAlgorithm::Nearest);
    let mut caught = 0;
    for i in 0..N {
        let attack = attacker.attack_image(i).unwrap();
        caught += usize::from(threshold.is_attack(detector.score(&attack).unwrap()));
    }
    assert!(caught as f64 >= N as f64 * 0.85, "caught only {caught}/{N}");
}

#[test]
fn full_ensemble_catches_attacks_and_passes_benign() {
    let profile = DatasetProfile::tiny();
    let generator = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    let scaling =
        ScalingDetector::new(profile.target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let filtering = FilteringDetector::new(MetricKind::Ssim);

    let (b_s, a_s) = scores(&scaling, &generator, 50);
    let (b_f, a_f) = scores(&filtering, &generator, 50);
    let ensemble = Ensemble::new()
        .with_member(
            scaling,
            search_whitebox(&b_s, &a_s, Direction::AboveIsAttack).unwrap().threshold,
        )
        .with_member(
            filtering,
            search_whitebox(&b_f, &a_f, Direction::BelowIsAttack).unwrap().threshold,
        )
        .with_member(
            SteganalysisDetector::for_target(profile.target_size),
            SteganalysisDetector::universal_threshold(),
        );

    let mut errors = 0;
    for i in 0..N {
        errors += usize::from(ensemble.is_attack(&generator.benign(i)).unwrap());
        errors += usize::from(!ensemble.is_attack(&generator.attack_image(i).unwrap()).unwrap());
    }
    assert!(errors <= 1, "{errors} ensemble errors over {} decisions", 2 * N);
}

#[test]
fn crafted_attacks_satisfy_both_paper_criteria() {
    let profile = DatasetProfile::tiny();
    for algo in [ScaleAlgorithm::Nearest, ScaleAlgorithm::Bilinear] {
        let generator = SampleGenerator::new(profile.clone(), algo);
        for i in 0..4u64 {
            let v = verify_attack(
                &generator.benign(i),
                &generator.attack_image(i).unwrap(),
                &generator.target(i),
                &generator.scaler(i),
                &VerifyConfig::default(),
            )
            .unwrap();
            assert!(v.is_successful(), "{algo} attack {i} failed: {v:?}");
        }
    }
}

#[test]
fn rgb_corpus_is_detected_end_to_end() {
    let profile = DatasetProfile::tiny_rgb();
    let generator = SampleGenerator::new(profile.clone(), ScaleAlgorithm::Bilinear);
    let scaling =
        ScalingDetector::new(profile.target_size, ScaleAlgorithm::Bilinear, MetricKind::Mse);
    let stego = SteganalysisDetector::for_target(profile.target_size);
    let mut correct = 0usize;
    let trials = 4u64;
    for i in 0..trials {
        let benign = generator.benign(i);
        let attack = generator.attack_image(i).unwrap();
        assert_eq!(benign.channel_count(), 3, "profile must generate RGB");
        let b = scaling.score(&benign).unwrap();
        let a = scaling.score(&attack).unwrap();
        correct += usize::from(a > b * 3.0);
        let cb = stego.score(&benign).unwrap();
        let ca = stego.score(&attack).unwrap();
        correct += usize::from(ca > cb);
    }
    assert!(
        correct >= (2 * trials as usize) - 1,
        "only {correct}/{} RGB checks passed",
        2 * trials
    );
}
